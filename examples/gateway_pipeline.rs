//! The Fig. 5a experiment in miniature: PXGW forwarding throughput and
//! conversion yield across core counts, for the DPDK-GRO baseline, PX,
//! and PX with header-only DMA.
//!
//! The trace is real packets (800 TCP flows, bursty arrivals), the RSS
//! sharding is a real Toeplitz hash, and the merge engines are the real
//! PXGW code; only CPU cycles and the memory bus are modelled (see
//! px-sim::calib for the calibration).
//!
//! Run with: `cargo run --release --example gateway_pipeline`

use packet_express::core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, WorkloadKind};

fn main() {
    println!("── PXGW datapath: throughput / conversion yield ──────────");
    println!("  system          | cores | throughput  |  CY   | bound");
    println!("  ----------------+-------+-------------+-------+------");
    for (label, variant) in [
        ("baseline-GRO", SystemVariant::BaselineGro),
        ("PX", SystemVariant::Px),
        ("PX+header-only", SystemVariant::PxHeaderOnly),
    ] {
        for cores in [1usize, 2, 4, 8] {
            let mut cfg = PipelineConfig::fig5(variant, WorkloadKind::Tcp, cores);
            cfg.trace_pkts = 60_000;
            let rep = run_pipeline(cfg);
            println!(
                "  {:15} | {:5} | {:8.2} Gbps | {:4.1}% | {}",
                label,
                cores,
                rep.throughput_bps / 1e9,
                100.0 * rep.conversion_yield,
                if rep.membus_bound_bps < rep.cpu_bound_bps {
                    "mem"
                } else {
                    "cpu"
                },
            );
        }
    }
    println!("\npaper @8 cores: baseline 167 Gbps/76% · PX 1.09 Tbps/93% · PX+hdr 1.45 Tbps/94%");
}
