//! Path-MTU discovery shoot-out on a path with an ICMP blackhole.
//!
//! A 5-hop WAN path narrows from 9000 B to 1000 B, and (as is depressingly
//! common on the real Internet) its routers are configured to suppress
//! ICMP. Three probers try to find the path MTU:
//!
//! * classic RFC 1191 PMTUD — needs ICMP, gets nothing, fails;
//! * RFC 4821 PLPMTUD (Scamper-style) — succeeds, but pays a timeout for
//!   every probe size that silently vanishes;
//! * F-PMTUD — one DF-clear probe, routers fragment it, the daemon
//!   reports the fragment sizes: done in a single RTT.
//!
//! Run with: `cargo run --release --example pmtud_discovery`

use packet_express::pmtud::classic::{ClassicConfig, ClassicOutcome, ClassicProber};
use packet_express::pmtud::fpmtud::{FpmtudDaemon, FpmtudProber, ProbeOutcome, ProberConfig};
use packet_express::pmtud::plpmtud::{PlpmtudConfig, PlpmtudProber};
use packet_express::pmtud::topology::{build_path, true_pmtu, Hop, DAEMON_ADDR, PROBER_ADDR};
use packet_express::sim::Nanos;

fn hops() -> Vec<Hop> {
    vec![
        Hop::new(9000, 2_000),
        Hop::new(4000, 8_000),
        Hop::new(1000, 12_000), // the bottleneck
        Hop::new(1500, 8_000),
        Hop::new(1500, 2_000),
    ]
}

fn main() {
    let path = hops();
    println!("── PMTU discovery through an ICMP blackhole ──────────────");
    println!(
        "path MTUs: {:?}  (true PMTU = {} B), all routers blackholed\n",
        path.iter().map(|h| h.mtu).collect::<Vec<_>>(),
        true_pmtu(&path)
    );

    // 1. Classic PMTUD.
    let prober = ClassicProber::new(ClassicConfig {
        addr: PROBER_ADDR,
        dst: DAEMON_ADDR,
        initial_mtu: 9000,
        timeout: Nanos::from_millis(800),
        max_tries_per_size: 3,
    });
    let (mut net, p, _) = build_path(1, prober, FpmtudDaemon::new(DAEMON_ADDR), &path, true);
    net.run_until(Nanos::from_secs(60));
    match net.node_ref::<ClassicProber>(p).outcome.clone().unwrap() {
        ClassicOutcome::Blackholed { probes_sent, stuck_at } => println!(
            "classic PMTUD : FAILED — {probes_sent} probes vanished, stuck believing PMTU={stuck_at}"
        ),
        ClassicOutcome::Discovered { pmtu, elapsed, .. } => {
            println!("classic PMTUD : {pmtu} B in {elapsed} (no blackhole?)")
        }
    }

    // 2. PLPMTUD.
    let prober = PlpmtudProber::new(PlpmtudConfig::scamper(PROBER_ADDR, DAEMON_ADDR, 9000));
    let (mut net, p, _) = build_path(2, prober, FpmtudDaemon::new(DAEMON_ADDR), &path, true);
    net.run_until(Nanos::from_secs(600));
    let pl = net.node_ref::<PlpmtudProber>(p).outcome.clone().unwrap();
    println!(
        "PLPMTUD       : {} B in {} ({} probes, {} timeouts)",
        pl.pmtu, pl.elapsed, pl.probes_sent, pl.timeouts
    );

    // 3. F-PMTUD.
    let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, DAEMON_ADDR, 9000));
    let (mut net, p, _) = build_path(3, prober, FpmtudDaemon::new(DAEMON_ADDR), &path, true);
    net.run_until(Nanos::from_secs(10));
    match net.node_ref::<FpmtudProber>(p).outcome.clone().unwrap() {
        ProbeOutcome::Discovered {
            pmtu,
            elapsed,
            fragment_sizes,
            probes_sent,
        } => {
            println!(
                "F-PMTUD       : {pmtu} B in {elapsed} ({probes_sent} probe; daemon saw {} fragments: {:?})",
                fragment_sizes.len(),
                fragment_sizes
            );
            println!(
                "\nF-PMTUD was {:.0}x faster than PLPMTUD — and immune to the blackhole\nthat defeated classic PMTUD entirely.",
                pl.elapsed.0 as f64 / elapsed.0 as f64
            );
        }
        other => println!("F-PMTUD      : unexpected outcome {other:?}"),
    }
}
