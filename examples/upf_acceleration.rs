//! Fig. 1a live: how much faster does a 5G UPF run with jumbo frames?
//!
//! The UPF datapath (GTP-U decap, PDR/FAR/QER lookups, counters) never
//! touches payload bytes, so its single-core throughput scales almost
//! linearly with packet size — the paper's strongest middlebox argument
//! for larger MTUs.
//!
//! Run with: `cargo run --release --example upf_acceleration`

use packet_express::upf::upf_throughput_bps;

fn main() {
    println!("── 5G UPF single-core throughput vs MTU (800 sessions) ───");
    println!("  MTU (B) | throughput | speedup");
    println!("  --------+------------+--------");
    let base = upf_throughput_bps(1500, 800, 60_000);
    for mtu in [1500usize, 2500, 4500, 6000, 7500, 9000] {
        let tp = upf_throughput_bps(mtu, 800, 60_000);
        println!("  {:7} | {:7.1} Gbps | {:.2}x", mtu, tp / 1e9, tp / base);
    }
    println!("\npaper: 208 Gbps at 9000 B — 5.6x over the legacy MTU (Fig. 1a)");
}
