//! Quickstart: a legacy client downloads from / uploads to a server
//! inside a 9 KB b-network through a PXGW.
//!
//! ```text
//! external host (MTU 1500) ── PXGW ── internal host (MTU 9000)
//! ```
//!
//! Watch the gateway merge 1500 B segments into jumbos on the way in,
//! split jumbos on the way out, and rewrite the MSS during the
//! handshake — all transparently: the byte stream is verified intact.
//!
//! Run with: `cargo run --release --example quickstart`

use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::sim::link::LinkConfig;
use packet_express::sim::network::Network;
use packet_express::sim::node::PortId;
use packet_express::sim::Nanos;
use packet_express::tcp::conn::ConnConfig;
use packet_express::tcp::host::{Host, HostConfig};
use std::net::Ipv4Addr;

const EXT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const INT: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

fn main() {
    let mut net = Network::new(7);

    // The three nodes: legacy host, gateway, b-network host.
    let ext = net.add_node(Host::new(HostConfig::new(EXT, 1500)));
    let gw = net.add_node(PxGateway::new(GatewayConfig::default()));
    let int = net.add_node(Host::new(HostConfig::new(INT, 9000)));

    net.connect(
        (ext, PortId(0)),
        (gw, EXTERNAL_PORT),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 1500),
    );
    net.connect(
        (gw, INTERNAL_PORT),
        (int, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 9000),
    );

    // The external server offers a 4 MB object; the internal client
    // fetches it (downlink = merge direction), then pushes 2 MB back
    // (uplink = split direction).
    let download = 4_000_000u64;
    let upload = 2_000_000u64;
    net.node_mut::<Host>(ext).listen(
        80,
        ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(download),
    );
    net.node_mut::<Host>(int).connect_at(
        0,
        ConnConfig::new((INT, 40000), (EXT, 80), 9000).sending(upload),
        Some(Nanos::from_secs(30).0),
    );

    net.run_until(Nanos::from_secs(10));

    let client = net.node_ref::<Host>(int);
    let server = net.node_ref::<Host>(ext);
    let gwn = net.node_ref::<PxGateway>(gw);
    let c = &client.tcp_stats()[0];
    let s = &server.tcp_stats()[0];

    println!("── PacketExpress quickstart ──────────────────────────────");
    println!(
        "client received   : {} / {} bytes (intact: {})",
        c.bytes_received,
        download,
        c.integrity_errors == 0
    );
    println!(
        "server received   : {} / {} bytes (intact: {})",
        s.bytes_received,
        upload,
        s.integrity_errors == 0
    );
    println!();
    println!(
        "MSS negotiation   : client sees peer MSS {} (server advertised 1460;",
        c.peer_mss
    );
    println!("                    PXGW rewrote it → jumbo segments inside the b-network)");
    println!();
    println!(
        "gateway merge     : {} eMTU data segments in → {} packets out",
        gwn.merge.stats.data_segs_in,
        gwn.merge.stats.out_sizes.packets()
    );
    println!(
        "conversion yield  : {:.1}% of forwarded packets are iMTU-sized",
        100.0 * gwn.merge.stats.conversion_yield(&gwn.merge.cfg)
    );
    println!(
        "gateway split     : {} jumbo packets cut into {} wire segments",
        gwn.split.stats.split, gwn.split.stats.segments_out
    );
    println!("MSS rewrites      : {}", gwn.mss_rewrites);

    assert_eq!(c.bytes_received, download);
    assert_eq!(s.bytes_received, upload);
    assert_eq!(c.integrity_errors + s.integrity_errors, 0);
    println!("\nOK — translation was transparent in both directions.");
}
