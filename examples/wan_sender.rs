//! The §5.2 scenario: upgrade *only the sender's network* to a 9 KB iMTU
//! and watch a WAN TCP flow speed up ≈2.5× — with the receiver still on
//! a legacy 1500 B network.
//!
//! The mechanism is congestion-control arithmetic, not bandwidth: the
//! sender's cwnd grows in 9 KB (MSS) units per RTT while losses still
//! strike per 1500 B wire packet, so the Mathis steady state improves by
//! √(9000/1500) ≈ 2.45.
//!
//! Run with: `cargo run --release --example wan_sender`

use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::sim::link::LinkConfig;
use packet_express::sim::netem::Netem;
use packet_express::sim::network::Network;
use packet_express::sim::node::PortId;
use packet_express::sim::Nanos;
use packet_express::tcp::conn::ConnConfig;
use packet_express::tcp::host::{Host, HostConfig};
use std::net::Ipv4Addr;

const SENDER: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
const RECEIVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 2);

/// Runs one configuration and returns the receiver-side goodput in bps.
fn run(imtu: usize, secs: u64) -> (f64, usize) {
    let duration = Nanos::from_secs(secs);
    let mut net = Network::new(11);
    let snd = net.add_node(Host::new(HostConfig::new(SENDER, imtu)));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        imtu,
        emtu: 1500,
        steer: None,
        ..Default::default()
    }));
    let rcv = net.add_node(Host::new(HostConfig::new(RECEIVER, 1500)));
    net.connect(
        (snd, PortId(0)),
        (gw, INTERNAL_PORT),
        LinkConfig::new(100_000_000_000, Nanos::from_micros(20), imtu),
    );
    // The WAN: 10 ms one-way delay, 0.01% random loss (tc-netem style),
    // netem's default 1000-packet router buffer.
    net.connect(
        (gw, EXTERNAL_PORT),
        (rcv, PortId(0)),
        LinkConfig::new(100_000_000_000, Nanos::ZERO, 1500)
            .with_netem(Netem::paper_wan())
            .with_queue(1000 * 1500),
    );
    net.node_mut::<Host>(rcv)
        .listen(5201, ConnConfig::new((RECEIVER, 5201), (SENDER, 0), 1500));
    net.node_mut::<Host>(snd).connect_at(
        0,
        ConnConfig::new((SENDER, 40000), (RECEIVER, 5201), imtu).sending(u64::MAX),
        Some(duration.0),
    );
    net.run_until(duration + Nanos::from_secs(1));
    let r = net.node_ref::<Host>(rcv).tcp_stats()[0];
    assert_eq!(r.integrity_errors, 0);
    let mss = net.node_ref::<Host>(snd).tcp_stats()[0].effective_mss;
    (r.bytes_received as f64 * 8.0 / secs as f64, mss)
}

fn main() {
    let secs = 20;
    println!("── §5.2: sender-in-b-network over a lossy WAN ────────────");
    println!("WAN profile: 10 ms delay, 0.01% loss (the paper's netem setup)\n");

    let (legacy, mss_l) = run(1500, secs);
    println!(
        "legacy sender  (iMTU 1500, MSS {mss_l:5}): {:8.1} Mbps",
        legacy / 1e6
    );

    let (jumbo, mss_j) = run(9000, secs);
    println!(
        "b-net sender   (iMTU 9000, MSS {mss_j:5}): {:8.1} Mbps",
        jumbo / 1e6
    );

    println!(
        "\ngain from upgrading ONLY the sender network: {:.2}x",
        jumbo / legacy
    );
    println!("paper: 2.5x    Mathis prediction: sqrt(9000/1500) = 2.45x");
}
