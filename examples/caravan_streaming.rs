//! PX-caravan: a QUIC-like UDP media stream crossing into a b-network.
//!
//! UDP datagrams cannot be merged transparently — the receiver
//! application depends on datagram boundaries. PX-caravan tunnels whole
//! datagrams inside one jumbo outer packet instead; the (modified)
//! receiver stack unbundles them, so the application sees exactly the
//! datagrams the sender emitted, while every switch and NIC in the
//! b-network handled 6× fewer packets.
//!
//! Run with: `cargo run --release --example caravan_streaming`

use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::sim::link::LinkConfig;
use packet_express::sim::network::Network;
use packet_express::sim::node::PortId;
use packet_express::sim::Nanos;
use packet_express::tcp::host::{Host, HostConfig, UdpFlowCfg};
use packet_express::tcp::udp::UdpSocket;
use std::net::Ipv4Addr;

const STREAMER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7); // legacy CDN edge
const VIEWER: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 9); // inside the b-network

fn main() {
    let mut net = Network::new(21);
    let cdn = net.add_node(Host::new(HostConfig::new(STREAMER, 1500)));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        ..Default::default()
    }));
    let mut viewer_cfg = HostConfig::new(VIEWER, 9000);
    viewer_cfg.caravan_rx = true; // the paper's modified receiver stack
    let viewer = net.add_node(Host::new(viewer_cfg));

    net.connect(
        (cdn, PortId(0)),
        (gw, EXTERNAL_PORT),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(200), 1500),
    );
    net.connect(
        (gw, INTERNAL_PORT),
        (viewer, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 9000),
    );

    // A 300 Mbps "8K video" stream of 1172-byte datagrams (a QUIC-like
    // payload size), for two seconds.
    net.node_mut::<Host>(viewer)
        .udp_bind(UdpSocket::bind(4433).recording());
    net.node_mut::<Host>(cdn).add_udp_flow(UdpFlowCfg {
        local_port: 7000,
        dst: VIEWER,
        dst_port: 4433,
        rate_bps: 300_000_000,
        payload: 1172,
        start_ns: 0,
        stop_ns: Nanos::from_secs(2).0,
    });

    net.run_until(Nanos::from_secs(3));

    let gwn = net.node_ref::<PxGateway>(gw);
    let sock = net.node_ref::<Host>(viewer).udp_socket(4433).unwrap();

    println!("── PX-caravan streaming ──────────────────────────────────");
    println!(
        "datagrams sent      : {}",
        net.node_ref::<Host>(cdn)
            .udp_socket(7000)
            .unwrap()
            .stats
            .sent
    );
    println!("caravans built      : {}", gwn.caravan.stats.caravans_out);
    println!("datagrams bundled   : {}", gwn.caravan.stats.bundled);
    println!(
        "bundles unbundled   : {} (at the viewer's UDP_GRO path)",
        sock.stats.bundles
    );
    println!("datagrams delivered : {}", sock.stats.datagrams);
    println!("malformed           : {}", sock.stats.malformed);
    let intact = sock.received.iter().all(|p| p.len() == 1172);
    println!("boundaries intact   : {intact}");
    println!(
        "packets on b-net wire: {} (vs {} legacy) → {:.1}x fewer",
        gwn.caravan.stats.caravans_out + gwn.caravan.stats.passthrough,
        gwn.caravan.stats.pkts_in,
        gwn.caravan.stats.pkts_in as f64
            / (gwn.caravan.stats.caravans_out + gwn.caravan.stats.passthrough).max(1) as f64
    );
    assert!(intact && sock.stats.malformed == 0);
    println!("\nOK — every datagram arrived individually, boundaries preserved.");
}
