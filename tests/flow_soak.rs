//! The flow-scale headline gate: a deterministic soak that streams the
//! `px-workload::internet` traffic model — mice/elephant mix, bursty
//! on/off sources, identity churn — through the engine datapath at
//! 100 k live flows (1 M with `PX_SOAK_FULL=1`) and holds four hard
//! properties simultaneously:
//!
//! 1. **Bounded state** — per-core flow-state arenas never exceed their
//!    configured byte budget, sampled throughout every phase;
//! 2. **Zero steady-state allocation** — once the live population is
//!    warm and frozen, a prebuilt measurement window drives every core
//!    through the full classifier + merge hot path without a single
//!    `alloc`/`realloc` (counting `#[global_allocator]`);
//! 3. **Elephant-byte yield** — the fraction of elephant-flow payload
//!    bytes delivered inside iMTU-sized packets stays ≥ 0.85 despite
//!    per-flow steering heads and burst-tail runts;
//! 4. **Core-count invariance** — the union of per-flow output digests
//!    (packet boundaries included, via FNV over length-prefixed
//!    payloads) is bit-identical across 1/2/4/8-core shardings of the
//!    same packet stream.
//!
//! The trace is never materialised: each run re-streams the generator
//! from the same seed, so the soak's memory high-water mark is the
//! engine state under test plus one window of prebuilt batches.
//!
//! Phases per run:
//!   fill   — churn off, pumped until every live identity has emitted:
//!            the classifier tracks the whole ring (the live-flow
//!            headline) and every flow has warm digest state;
//!   churn  — identity turnover: completed flows are replaced by fresh
//!            5-tuples, exercising admission under a full table;
//!   window — churn off + warm-only emission, every batch prebuilt:
//!            the measured zero-allocation region.
//!
//! Everything lives in ONE `#[test]` so no concurrent test thread can
//! perturb the allocation counter.

use packet_express::core::engine::{CoreDriver, FlowDigest};
use packet_express::core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use packet_express::core::SteerConfig;
use packet_express::wire::{FlowKey, RssHasher};
use packet_express::workload::internet::{is_elephant, InternetConfig, InternetModel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only extra work is a
// relaxed atomic increment, which cannot violate any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr` was produced by `System.alloc` above with the same
    // layout, so handing it back to `System.dealloc` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same provenance argument as `dealloc`; `System.realloc`
    // upholds the GlobalAlloc contract for the returned pointer.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Soak scale: CI-sized by default, the full million behind an env
/// gate (the CI `flow-soak` job runs the default; nightly/local runs
/// export `PX_SOAK_FULL=1`).
fn soak_flows() -> usize {
    if std::env::var("PX_SOAK_FULL").is_ok_and(|v| v == "1") {
        1_000_000
    } else {
        100_000
    }
}

/// One timestamped-packet batch bound for a core's driver.
type Batch = Vec<(u64, Vec<u8>)>;

const SEED: u64 = 0x50AC_0001;
const BATCH_PKTS: usize = 512;
/// Deterministic inter-arrival: 10 ns/packet (100 Mpps offered).
const INTER_ARRIVAL_NS: u64 = 10;
/// Churn-phase length in packets, as a multiple of the flow count.
const CHURN_PKTS_PER_FLOW: usize = 2;
/// Frozen zero-allocation measurement window, packets.
const WINDOW_PKTS: usize = 50_000;

/// Generous per-entry bound for the classifier's flow-counter slots
/// (slot + hash-map + expiry-heap shares); the real figure is smaller,
/// the budget just has to be *hard*.
const STEER_ENTRY_BYTES: usize = 192;
/// Headroom for the merge engine's pending-aggregate table + heap.
const MERGE_STATE_BYTES: usize = 32 << 20;

fn soak_model(n_flows: usize) -> InternetModel {
    InternetModel::new(InternetConfig {
        // Long on/off bursts (~96 packets ≈ two 64 KB TSO trains): the
        // steering head-start and burst-tail runts then cost a small
        // fraction of each elephant's bytes, which is what makes the
        // ≥ 0.85 byte-yield gate reachable in one soak pass.
        mean_burst: 96,
        burst_cap: 192,
        ..InternetConfig::sized(n_flows, SEED)
    })
}

fn soak_pipe(n_flows: usize, cores: usize) -> (PipelineConfig, usize) {
    let steer_budget = (2 * n_flows * STEER_ENTRY_BYTES).max(32 << 20);
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
    pipe.n_flows = n_flows;
    pipe.offered_pps = 1e9 / INTER_ARRIVAL_NS as f64;
    // Short hold: at 100 Mpps the per-flow inter-burst gap is ~ the
    // full ring cycle (milliseconds), so 20 µs is plenty for
    // intra-burst merging while keeping the concurrent-aggregate
    // ceiling (and thus the pool) small.
    pipe.hold_ns = 20_000;
    pipe.steer = Some(SteerConfig {
        table_capacity: 2 * n_flows,
        memory_budget: Some(steer_budget),
        ..SteerConfig::default()
    });
    pipe.pool_bufs = 1024;
    (pipe, steer_budget + MERGE_STATE_BYTES)
}

/// One sharded run at `cores`.
struct RunResult {
    digests: BTreeMap<FlowKey, FlowDigest>,
    arena_peak: usize,
    pkts_in: u64,
    flows_live: u64,
    steered_mice: u64,
    window_allocs: u64,
}

/// Streams `pkts` packets from the model into the sharded drivers,
/// sampling (and gating) arena occupancy as it goes.
#[allow(clippy::too_many_arguments)]
fn pump(
    model: &mut InternetModel,
    drivers: &mut [CoreDriver],
    rss: &RssHasher,
    open: &mut [Batch],
    idx: &mut u64,
    arena_peak: &mut usize,
    budget: usize,
    pkts: usize,
) {
    let cores = drivers.len();
    for _ in 0..pkts {
        let (key, pkt) = model.next_pkt();
        let core = rss.queue_for(&key, cores);
        open[core].push((*idx * INTER_ARRIVAL_NS, pkt));
        *idx += 1;
        if open[core].len() == BATCH_PKTS {
            let batch = std::mem::replace(&mut open[core], Vec::with_capacity(BATCH_PKTS));
            drivers[core].run_batch(batch);
            if *idx % (64 * BATCH_PKTS as u64) < BATCH_PKTS as u64 {
                let arena = drivers[core].arena_bytes();
                *arena_peak = (*arena_peak).max(arena);
                assert!(
                    arena <= budget,
                    "core {core} arena {arena} B exceeds budget {budget} B"
                );
            }
        }
    }
}

fn run_soak(n_flows: usize, cores: usize) -> RunResult {
    let (pipe, budget) = soak_pipe(n_flows, cores);
    let mut drivers: Vec<CoreDriver> = (0..cores).map(|c| CoreDriver::new(&pipe, c)).collect();
    let rss = RssHasher::symmetric();
    let mut model = soak_model(n_flows);

    let mut open: Vec<Batch> = vec![Vec::with_capacity(BATCH_PKTS); cores];
    let mut idx: u64 = 0;
    let mut arena_peak = 0usize;

    // ---- fill: churn off; pump in ring-sized slices until every live
    // identity has emitted (bounded — one round-robin cycle visits
    // every slot, and a cycle is at most burst_cap × n_flows packets).
    model.set_churn(false);
    let mut fill_guard = 0usize;
    while model.visited_flows() < n_flows {
        pump(
            &mut model,
            &mut drivers,
            &rss,
            &mut open,
            &mut idx,
            &mut arena_peak,
            budget,
            n_flows,
        );
        fill_guard += 1;
        assert!(fill_guard <= 200, "fill phase failed to cover the ring");
    }

    // ---- churn: identity turnover under a warm, full classifier.
    model.set_churn(true);
    pump(
        &mut model,
        &mut drivers,
        &rss,
        &mut open,
        &mut idx,
        &mut arena_peak,
        budget,
        CHURN_PKTS_PER_FLOW * n_flows,
    );
    assert!(model.flows_completed > 0, "churn retired no flows");
    assert!(
        model.flows_started > n_flows as u64,
        "churn admitted no replacements"
    );

    // ---- window: freeze the population to warmed identities, flush
    // the partial batches, prebuild the measured batches (allocations
    // happen HERE), then measure the drivers alone.
    model.set_churn(false);
    model.set_warm_only(true);
    for (core, batch) in open.iter_mut().enumerate() {
        if !batch.is_empty() {
            drivers[core].run_batch(std::mem::take(batch));
        }
    }
    let mut window: Vec<(usize, Batch)> = Vec::new();
    let mut wopen: Vec<Batch> = vec![Vec::with_capacity(BATCH_PKTS); cores];
    for _ in 0..WINDOW_PKTS {
        let (key, pkt) = model.next_pkt();
        let core = rss.queue_for(&key, cores);
        wopen[core].push((idx * INTER_ARRIVAL_NS, pkt));
        idx += 1;
        if wopen[core].len() == BATCH_PKTS {
            window.push((
                core,
                std::mem::replace(&mut wopen[core], Vec::with_capacity(BATCH_PKTS)),
            ));
        }
    }
    for (core, batch) in wopen.into_iter().enumerate() {
        if !batch.is_empty() {
            window.push((core, batch));
        }
    }

    let before = allocs();
    for (core, batch) in window {
        drivers[core].run_batch(batch);
    }
    let window_allocs = allocs() - before;

    // Post-window sample: the budget held to the very end.
    for d in &drivers {
        let arena = d.arena_bytes();
        arena_peak = arena_peak.max(arena);
        assert!(arena <= budget, "final arena {arena} B exceeds {budget} B");
    }

    let total_pkts = model.pkts_emitted;
    assert_eq!(model.flows_live(), n_flows, "the generator ring shrank");
    assert_eq!(
        model.pkts_emitted,
        model.completed_pkts + model.live_progress_pkts(),
        "generator conservation broke"
    );

    // Drain and fold: every held aggregate flushes, every pool buffer
    // comes home (finish debug-asserts pool_outstanding == 0).
    let mut digests: BTreeMap<FlowKey, FlowDigest> = BTreeMap::new();
    let (mut pkts_in, mut flows_live, mut steered_mice) = (0u64, 0u64, 0u64);
    for d in &mut drivers {
        d.finish();
        let c = d.counters();
        pkts_in += c.pkts_in;
        flows_live += c.flows_live;
        steered_mice += c.steered_mice_pkts;
        for (k, v) in d.digests() {
            let prev = digests.insert(*k, *v);
            assert!(prev.is_none(), "flow {k:?} appeared on two cores");
        }
    }
    assert_eq!(pkts_in, total_pkts, "engine lost or invented packets");

    // Payload conservation end to end: every generated payload byte is
    // accounted to exactly one flow digest (merging moves bytes between
    // packets, never across flows, and the drain rescues every tail).
    let digest_bytes: u64 = digests.values().map(|d| d.bytes).sum();
    assert_eq!(
        digest_bytes,
        total_pkts * 1460,
        "payload bytes in != payload bytes digested"
    );

    RunResult {
        digests,
        arena_peak,
        pkts_in,
        flows_live,
        steered_mice,
        window_allocs,
    }
}

#[test]
fn million_flow_soak_holds_budget_yield_and_determinism() {
    let n_flows = soak_flows();
    let mut baseline: Option<RunResult> = None;

    for &cores in &[1usize, 2, 4, 8] {
        let r = run_soak(n_flows, cores);

        // Gate 2: zero allocations per packet in the frozen window —
        // classifier hits, merge appends, pool recycling, digest
        // updates all run on preallocated state.
        assert_eq!(
            r.window_allocs, 0,
            "{cores}-core frozen window allocated ({} allocs / {WINDOW_PKTS} pkts)",
            r.window_allocs
        );

        // The soak exercised what it claims: state was bounded but
        // non-trivial, the classifier tracked the whole ring, and
        // steering really hairpinned mice past the merge path.
        assert!(r.arena_peak > 0, "arena never sampled");
        assert!(
            r.flows_live >= n_flows as u64,
            "live-flow gauge {} < ring size {n_flows}",
            r.flows_live
        );
        assert!(r.steered_mice > 0, "no mice were steered");
        assert_eq!(
            r.pkts_in,
            baseline.as_ref().map_or(r.pkts_in, |b| b.pkts_in)
        );

        // Gate 3: elephant-byte yield — measured per run on the union
        // digests (identical across core counts by gate 4).
        let (mut ebytes, mut ejumbo) = (0u64, 0u64);
        for (k, d) in &r.digests {
            if is_elephant(k) {
                ebytes += d.bytes;
                ejumbo += d.jumbo_bytes;
            }
        }
        let yield_ = ejumbo as f64 / ebytes as f64;
        assert!(
            yield_ >= 0.85,
            "{cores}-core elephant byte yield {yield_:.4} < 0.85 ({ejumbo}/{ebytes})"
        );
        // Sanity on the split: elephants dominate bytes, mice exist.
        let mice_flows = r.digests.keys().filter(|k| !is_elephant(k)).count();
        assert!(mice_flows > n_flows / 2, "mice under-represented");

        // Gate 4: bit-identical digests across core counts. FNV folds
        // length-prefixed payloads, so a single boundary difference —
        // one aggregate cut short, one eviction reordering a flush —
        // breaks equality.
        match &baseline {
            None => baseline = Some(r),
            Some(b) => assert_eq!(
                b.digests, r.digests,
                "digest union diverged between 1 and {cores} cores"
            ),
        }
    }
}
