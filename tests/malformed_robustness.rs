//! Adversarial robustness: the R1 panic-freedom invariant checked
//! dynamically. `px-analyze` proves the hot path contains no panicking
//! construct *syntactically*; this suite drives the same engines with
//! truncated, bit-flipped, and purely random packets and asserts they
//! (a) never panic and (b) account for every swallowed packet in a
//! `dropped_*` counter where the engine contract promises it.
//!
//! Four proptest blocks × 300 cases = 1200 adversarial inputs per run.

use packet_express::core::caravan_gw::{CaravanConfig, CaravanEngine};
use packet_express::core::merge::{MergeConfig, MergeEngine};
use packet_express::core::split::SplitEngine;
use packet_express::obs::ObsConfig;
use packet_express::wire::ipv4::{Ipv4Repr, CARAVAN_TOS};
use packet_express::wire::pool::VecSink;
use packet_express::wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use packet_express::wire::{IpProtocol, UdpRepr};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Sink-based split collected into `Vec`s — replaces the removed
/// `SplitEngine::push`/`push_to` compatibility wrappers for tests that
/// assert on whole output packets.
fn split_vec(eng: &mut SplitEngine, pkt: &[u8], mtu: usize) -> Vec<Vec<u8>> {
    let mut sink = VecSink::new();
    eng.push_to_into(pkt, mtu, &mut sink);
    sink.into_pkts()
}

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn tcp_packet(port: u16, seq: u32, payload_len: usize, ident: u16) -> Vec<u8> {
    let payload = vec![0xA5u8; payload_len];
    let repr = TcpRepr {
        src_port: port,
        dst_port: 80,
        seq: SeqNum(seq),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 8192,
        options: vec![],
    };
    let seg = repr.build_segment(SRC, DST, &payload);
    let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len());
    ip.ident = ident;
    ip.build_packet(&seg).expect("fits")
}

fn udp_packet(port: u16, payload_len: usize, ident: u16, tos: u8) -> Vec<u8> {
    let payload = vec![0x5Au8; payload_len];
    let dg = UdpRepr {
        src_port: port,
        dst_port: 9000,
    }
    .build_datagram(SRC, DST, &payload)
    .expect("fits");
    let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
    ip.ident = ident;
    ip.tos = tos;
    ip.build_packet(&dg).expect("fits")
}

/// Each flip word encodes a byte position (high bits) and a bit index
/// (low 3 bits) — the vendored proptest shim has no tuple strategies.
fn flip_bits(pkt: &mut [u8], flips: &[u32]) {
    for &word in flips {
        if !pkt.is_empty() {
            let i = (word >> 3) as usize % pkt.len();
            pkt[i] ^= 1 << (word & 7);
        }
    }
}

/// Drives one mangled packet through all three engines, fresh instances
/// each time so a poisoned flow table cannot mask a later panic. The
/// flight recorder is armed on every engine; if a panic does slip
/// through, the last 64 events per engine are printed before the panic
/// is re-raised — the post-mortem the recorder exists for.
fn run_all_engines(pkt: &[u8]) {
    let obs = ObsConfig::default();
    let mut merge = MergeEngine::new(MergeConfig::default());
    merge.enable_obs(obs);
    let mut split = SplitEngine::new(1500);
    split.enable_obs(obs);
    let mut caravan = CaravanEngine::new(CaravanConfig::default());
    caravan.enable_obs(obs);

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut out = merge.push(0, pkt.to_vec());
        let deadline = merge.next_deadline().unwrap_or(u64::MAX);
        out.extend(merge.poll(deadline));
        out.extend(merge.flush_all());

        out.extend(split_vec(&mut split, pkt, 1500));
        out.extend(split_vec(&mut split, pkt, 576));

        out.extend(caravan.push_inbound(0, pkt.to_vec()));
        out.extend(caravan.push_outbound(pkt.to_vec()));
        out.extend(caravan.flush_all());
        drop(out);
    }));
    if let Err(payload) = result {
        eprintln!("--- engine panicked on a mangled packet; flight recorder timelines follow ---");
        eprintln!("merge (last 64 events):\n{}", merge.obs.render_recent(64));
        eprintln!("split (last 64 events):\n{}", split.obs.render_recent(64));
        eprintln!(
            "caravan (last 64 events):\n{}",
            caravan.obs.render_recent(64)
        );
        std::panic::resume_unwind(payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Valid packets truncated at every possible point: no engine panics.
    #[test]
    fn truncated_packets_never_panic(
        port in 1024u16..60000,
        seq in any::<u32>(),
        len in 0usize..3000,
        ident in any::<u16>(),
        cut in 0usize..3100,
        tcp in any::<bool>(),
    ) {
        let pkt = if tcp {
            tcp_packet(port, seq, len, ident)
        } else {
            udp_packet(port, len, ident, 0)
        };
        let cut = cut.min(pkt.len());
        run_all_engines(&pkt[..cut]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Valid packets with arbitrary bit flips — corrupted lengths,
    /// protocols, header sizes, checksums: no engine panics.
    #[test]
    fn bitflipped_packets_never_panic(
        port in 1024u16..60000,
        len in 0usize..3000,
        ident in any::<u16>(),
        tcp in any::<bool>(),
        flips in proptest::collection::vec(any::<u32>(), 1..16),
    ) {
        let mut pkt = if tcp {
            tcp_packet(port, 1, len, ident)
        } else {
            udp_packet(port, len, ident, CARAVAN_TOS)
        };
        flip_bits(&mut pkt, &flips);
        run_all_engines(&pkt);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Pure noise, including the empty packet: no engine panics.
    #[test]
    fn random_bytes_never_panic(
        pkt in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        run_all_engines(&pkt);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The split engine's accounting contract: every input either
    /// produces output or increments exactly one dropped counter.
    #[test]
    fn split_accounts_for_every_swallowed_packet(
        len in 1501usize..9000,
        ident in any::<u16>(),
        tcp in any::<bool>(),
        flips in proptest::collection::vec(any::<u32>(), 0..8),
        cut_tail in 0usize..40,
    ) {
        let mut pkt = if tcp {
            tcp_packet(40000, 7, len, ident)
        } else {
            udp_packet(40000, len, ident, 0)
        };
        flip_bits(&mut pkt, &flips);
        let keep = pkt.len().saturating_sub(cut_tail);
        pkt.truncate(keep.max(1));

        let mut split = SplitEngine::new(1500);
        let before_drops = split.stats.dropped_df + split.stats.dropped_malformed;
        let out = split_vec(&mut split, &pkt, 1500);
        let after_drops = split.stats.dropped_df + split.stats.dropped_malformed;
        if out.is_empty() {
            prop_assert_eq!(after_drops, before_drops + 1,
                "a swallowed packet must increment exactly one dropped counter");
        } else {
            prop_assert_eq!(after_drops, before_drops,
                "a packet that produced output must not also count as dropped");
        }
    }
}

/// Deterministic spot-check that corrupted caravan bundles land in
/// `dropped_malformed` rather than vanishing (or panicking).
#[test]
fn caravan_counts_corrupt_bundles() {
    // Build a real bundle by pushing datagrams inbound and flushing.
    let mut gw = CaravanEngine::new(CaravanConfig {
        require_consecutive_ip_id: false,
        ..CaravanConfig::default()
    });
    for i in 0..4u16 {
        let out = gw.push_inbound(0, udp_packet(5000, 400, i, 0));
        assert!(out.is_empty(), "datagrams should be held for bundling");
    }
    let bundles = gw.flush_all();
    assert_eq!(bundles.len(), 1, "four datagrams bundle into one jumbo");
    let bundle = &bundles[0];

    // Slash the bundle's length fields: the outbound unbundler must
    // either recover inner datagrams or account for the loss.
    let mut rx = CaravanEngine::new(CaravanConfig::default());
    let mut corrupt = bundle.clone();
    corrupt.truncate(bundle.len() / 2);
    let out = rx.push_outbound(corrupt);
    assert!(
        !out.is_empty() || rx.stats.dropped_malformed > 0,
        "corrupt bundle neither produced output nor counted as dropped"
    );

    // The intact bundle still unbundles into the original four.
    let mut rx2 = CaravanEngine::new(CaravanConfig::default());
    let out = rx2.push_outbound(bundle.clone());
    assert_eq!(out.len(), 4);
    assert_eq!(rx2.stats.dropped_malformed, 0);
}
