//! Property-based tests (proptest) on the system's core invariants:
//!
//! * IPv4 fragment ∘ reassemble ≡ identity, for arbitrary payloads and
//!   arbitrary MTU ladders;
//! * PXGW merge ∘ split ≡ identity on the TCP byte stream;
//! * caravan bundle ∘ unbundle ≡ identity on datagram sequences;
//! * incremental checksum update ≡ full recomputation;
//! * Toeplitz RSS keeps both directions of a flow on one queue
//!   (symmetric key);
//! * fragmentation never emits oversize or misaligned fragments.

use packet_express::core::caravan_gw::{CaravanConfig, CaravanEngine};
use packet_express::core::merge::{MergeConfig, MergeEngine};
use packet_express::core::split::SplitEngine;
use packet_express::sim::nic;
use packet_express::wire::caravan::{split_bundle, CaravanBuilder, MAX_INNER};
use packet_express::wire::checksum;
use packet_express::wire::frag::{fragment_along_path, Reassembler, ReassemblyResult};
use packet_express::wire::ipv4::{Ipv4Packet, Ipv4Repr, CARAVAN_TOS};
use packet_express::wire::tcp::{SeqNum, TcpFlags, TcpRepr, TcpSegment};
use packet_express::wire::{FlowKey, IpProtocol, RssHasher, UdpRepr};

/// Sink-based split collected into `Vec`s — replaces the removed
/// `SplitEngine::push` compatibility wrapper for round-trip assertions.
fn split_vec(eng: &mut SplitEngine, pkt: &[u8]) -> Vec<Vec<u8>> {
    let mut sink = VecSink::new();
    eng.push_into(pkt, &mut sink);
    sink.into_pkts()
}
use proptest::prelude::*;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fragmenting down an arbitrary ladder of MTUs and reassembling
    /// recovers the original packet exactly.
    #[test]
    fn fragment_reassemble_identity(
        payload in proptest::collection::vec(any::<u8>(), 1..20_000),
        mtus in proptest::collection::vec(100usize..9000, 1..4),
        ident in any::<u16>(),
    ) {
        let mut repr = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, payload.len());
        repr.ident = ident;
        let pkt = repr.build_packet(&payload).unwrap();
        let frags = fragment_along_path(&pkt, &mtus).unwrap();
        // Every fragment respects the narrowest MTU seen so far and is
        // 8-byte aligned.
        let min_mtu = *mtus.iter().min().unwrap();
        for f in &frags {
            prop_assert!(f.len() <= min_mtu.max(28));
            let v = Ipv4Packet::new_checked(&f[..]).unwrap();
            prop_assert!(v.verify_checksum());
            prop_assert_eq!(v.frag_offset() % 8, 0);
        }
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            if let ReassemblyResult::Complete { packet, .. } = r.push(f, 0).unwrap() {
                out = Some(packet);
            }
        }
        let out = if frags.len() == 1 { frags[0].clone() } else { out.expect("reassembles") };
        prop_assert_eq!(out, pkt);
    }

    /// Coalescing contiguous TCP segments and TSO-splitting the result
    /// preserves the byte stream exactly, for arbitrary chunkings.
    #[test]
    fn merge_split_identity(
        chunks in proptest::collection::vec(1usize..2000, 1..12),
        base_seq in any::<u32>(),
        out_mtu in 600usize..1500,
    ) {
        let total: usize = chunks.iter().sum();
        let mut stream = vec![0u8; total];
        for (i, b) in stream.iter_mut().enumerate() {
            *b = ((i as u64 * 31 + 7) % 251) as u8;
        }
        // Build segments along the chunk boundaries.
        let mut pkts = Vec::new();
        let mut off = 0usize;
        for &c in &chunks {
            let repr = TcpRepr {
                src_port: 5000,
                dst_port: 80,
                seq: SeqNum(base_seq.wrapping_add(off as u32)),
                ack: SeqNum(1),
                flags: TcpFlags::ACK,
                window: 1024,
                options: vec![],
            };
            let seg = repr.build_segment(SRC, DST, &stream[off..off + c]);
            pkts.push(Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len()).build_packet(&seg).unwrap());
            off += c;
        }
        // Merge as far as the engine will (64 KB cap like LRO).
        let mut merged: Vec<Vec<u8>> = Vec::new();
        for p in pkts {
            match merged.last() {
                Some(last) => match nic::try_coalesce(last, &p, 65000) {
                    Some(m) => *merged.last_mut().unwrap() = m,
                    None => merged.push(p),
                },
                None => merged.push(p),
            }
        }
        // Split back to wire size and re-read the stream.
        let mut rebuilt = Vec::with_capacity(total);
        for m in merged {
            for w in nic::tso_split(&m, out_mtu).unwrap() {
                let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
                prop_assert!(w.len() <= out_mtu);
                prop_assert!(ip.verify_checksum());
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                prop_assert!(tcp.verify_checksum(SRC, DST));
                rebuilt.extend_from_slice(tcp.payload());
            }
        }
        prop_assert_eq!(rebuilt, stream);
    }

    /// The PXGW engines themselves: merge∘split over a full engine pass
    /// preserves stream bytes and order.
    #[test]
    fn gateway_engines_identity(
        n_segs in 1usize..20,
        seg_len in 100usize..1460,
    ) {
        let mut merge = MergeEngine::new(MergeConfig::default());
        let mut split = SplitEngine::new(1500);
        let mut stream = Vec::new();
        let mut out_pkts = Vec::new();
        for i in 0..n_segs {
            let mut payload = vec![0u8; seg_len];
            for (j, b) in payload.iter_mut().enumerate() {
                *b = (((i * seg_len + j) as u64 * 17 + 3) % 251) as u8;
            }
            stream.extend_from_slice(&payload);
            let repr = TcpRepr {
                src_port: 6000,
                dst_port: 80,
                seq: SeqNum((i * seg_len) as u32),
                ack: SeqNum(1),
                flags: TcpFlags::ACK,
                window: 1024,
                options: vec![],
            };
            let seg = repr.build_segment(SRC, DST, &payload);
            let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len()).build_packet(&seg).unwrap();
            out_pkts.extend(merge.push((i as u64) * 1000, pkt));
        }
        out_pkts.extend(merge.flush_all());
        let mut rebuilt = Vec::new();
        for p in out_pkts {
            for w in split_vec(&mut split, &p) {
                let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                rebuilt.extend_from_slice(tcp.payload());
            }
        }
        prop_assert_eq!(rebuilt, stream);
    }

    /// Caravan bundle/unbundle preserves every datagram and their order.
    #[test]
    fn caravan_identity(
        lens in proptest::collection::vec(0usize..1400, 1..16),
    ) {
        let mut datagrams = Vec::new();
        for (i, &l) in lens.iter().enumerate() {
            let payload: Vec<u8> = (0..l).map(|j| ((i * 7 + j) % 256) as u8).collect();
            datagrams.push(
                UdpRepr { src_port: 5000, dst_port: 4433 }
                    .build_datagram(SRC, DST, &payload)
                    .unwrap(),
            );
        }
        // Bundle greedily into caravans.
        let mut bundles = Vec::new();
        let mut b = CaravanBuilder::new(8972);
        for d in &datagrams {
            if !b.fits(d) {
                bundles.push(b.finish());
                b = CaravanBuilder::new(8972);
            }
            b.push(d).unwrap();
        }
        if !b.is_empty() {
            bundles.push(b.finish());
        }
        let mut restored = Vec::new();
        for bundle in &bundles {
            for d in split_bundle(bundle).unwrap() {
                restored.push(d.to_vec());
            }
        }
        prop_assert_eq!(restored, datagrams);
    }

    /// The u64-wide ones'-complement sum equals the byte-at-a-time u16
    /// oracle for arbitrary buffers, odd lengths and jumbo sizes
    /// included (lengths up to the 9216-byte super-jumbo frame).
    #[test]
    fn wide_checksum_matches_scalar_oracle(
        data in proptest::collection::vec(any::<u8>(), 0..9217),
    ) {
        prop_assert_eq!(
            checksum::ones_complement_sum(&data),
            checksum::ones_complement_sum_scalar(&data),
        );
    }

    /// Splitting a buffer at an arbitrary point and combining the
    /// partial sums — with the odd-offset byte swap — equals summing the
    /// whole buffer: the invariant the merge engine's cached per-segment
    /// payload sums rely on.
    #[test]
    fn partial_sum_combine_matches_whole(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        cut in any::<u16>(),
    ) {
        let pos = usize::from(cut) % (data.len() + 1);
        let head = checksum::ones_complement_sum(&data[..pos]);
        let tail = checksum::ones_complement_sum(&data[pos..]);
        prop_assert_eq!(
            checksum::combine_at_offset(head, tail, pos % 2 == 1),
            checksum::ones_complement_sum(&data),
        );
    }

    /// Aggregates emitted through the merge engine's cached-partial-sum
    /// fast path carry IPv4 and TCP checksums identical to a
    /// from-scratch recomputation over the merged bytes — odd segment
    /// lengths included.
    #[test]
    fn merged_checksums_match_full_recompute(
        seg_lens in proptest::collection::vec(1usize..1460, 2..12),
    ) {
        let mut merge = MergeEngine::new(MergeConfig {
            imtu: 9000,
            emtu: 1500,
            hold_ns: 100_000,
            table_capacity: 64,
        });
        let mut out = Vec::new();
        let mut seq = 0u32;
        for (i, &len) in seg_lens.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|j| ((i * 31 + j * 7) % 251) as u8).collect();
            let repr = TcpRepr {
                src_port: 8000,
                dst_port: 80,
                seq: SeqNum(seq),
                ack: SeqNum(1),
                flags: TcpFlags::ACK,
                window: 1024,
                options: vec![],
            };
            let seg = repr.build_segment(SRC, DST, &payload);
            let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
                .build_packet(&seg)
                .unwrap();
            seq = seq.wrapping_add(len as u32);
            out.extend(merge.push((i as u64) * 1000, pkt));
        }
        out.extend(merge.flush_all());
        prop_assert!(!out.is_empty());
        for p in &out {
            let ip = Ipv4Packet::new_checked(&p[..]).unwrap();
            prop_assert!(ip.verify_checksum());
            let tcp_bytes = ip.payload();
            // Full recomputation with the scalar oracle: zero the stored
            // checksum, sum pseudo-header + segment, compare fields.
            let stored = u16::from_be_bytes([tcp_bytes[16], tcp_bytes[17]]);
            let mut cleared = tcp_bytes.to_vec();
            cleared[16] = 0;
            cleared[17] = 0;
            let expect = !checksum::combine(
                checksum::pseudo_header_sum(ip.src(), ip.dst(), 6, cleared.len() as u16),
                checksum::ones_complement_sum_scalar(&cleared),
            );
            prop_assert_eq!(stored, expect);
        }
    }

    /// RFC 1624 incremental checksum update matches full recomputation
    /// for arbitrary 16-bit word rewrites.
    #[test]
    fn incremental_checksum_equivalence(
        mut data in proptest::collection::vec(any::<u8>(), 4..256),
        word_idx in 0usize..100,
        new_word in any::<u16>(),
    ) {
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let idx = (word_idx % (data.len() / 2)) * 2;
        let old_ck = checksum::checksum(&data);
        let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        let updated = checksum::incremental_update(old_ck, old_word, new_word);
        prop_assert_eq!(updated, checksum::checksum(&data));
    }

    /// With the symmetric RSS key, both directions of any flow map to
    /// the same queue for any queue count.
    #[test]
    fn symmetric_rss_is_bidirectional(
        a in any::<u32>(),
        b in any::<u32>(),
        pa in any::<u16>(),
        pb in any::<u16>(),
        queues in 1usize..64,
    ) {
        let h = RssHasher::symmetric();
        let k = FlowKey::tcp(Ipv4Addr::from(a), pa, Ipv4Addr::from(b), pb);
        prop_assert_eq!(h.queue_for(&k, queues), h.queue_for(&k.reversed(), queues));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A full merge→split pass over a *randomized multi-flow mix*
    /// preserves each flow's exact TCP byte stream: wire packets carry
    /// valid IPv4/TCP checksums, per-flow sequence numbers are gapless,
    /// ACKs are preserved, and the reassembled payload is identical.
    #[test]
    fn multiflow_merge_split_stream_identity(
        interleave in proptest::collection::vec(0usize..4, 4..48),
        seg_lens in proptest::collection::vec(64usize..1460, 4..48),
        base_seq in any::<u32>(),
    ) {
        const N_FLOWS: usize = 4;
        let base = |f: usize| base_seq.wrapping_add((f as u32) * 0x0300_0000);
        let mut merge = MergeEngine::new(MergeConfig {
            imtu: 9000,
            emtu: 1500,
            hold_ns: 100_000,
            table_capacity: 64,
        });
        let mut split = SplitEngine::new(1500);
        let mut sent: Vec<Vec<u8>> = vec![Vec::new(); N_FLOWS];
        let mut next_seq: Vec<u32> = (0..N_FLOWS).map(base).collect();
        let mut merged = Vec::new();
        for (i, &f) in interleave.iter().enumerate() {
            let len = seg_lens[i % seg_lens.len()];
            let payload: Vec<u8> = (0..len)
                .map(|j| (((f * 131 + sent[f].len() + j) as u64 * 13 + 5) % 251) as u8)
                .collect();
            let repr = TcpRepr {
                src_port: 7000 + f as u16,
                dst_port: 80,
                seq: SeqNum(next_seq[f]),
                ack: SeqNum(1),
                flags: TcpFlags::ACK,
                window: 1024,
                options: vec![],
            };
            let seg = repr.build_segment(SRC, DST, &payload);
            let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
                .build_packet(&seg)
                .unwrap();
            next_seq[f] = next_seq[f].wrapping_add(len as u32);
            sent[f].extend_from_slice(&payload);
            merged.extend(merge.push((i as u64) * 1000, pkt));
        }
        merged.extend(merge.flush_all());
        let mut rebuilt: Vec<Vec<u8>> = vec![Vec::new(); N_FLOWS];
        let mut expect_seq: Vec<u32> = (0..N_FLOWS).map(base).collect();
        for m in merged {
            for w in split_vec(&mut split, &m) {
                let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
                prop_assert!(w.len() <= 1500);
                prop_assert!(ip.verify_checksum());
                let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
                prop_assert!(tcp.verify_checksum(SRC, DST));
                prop_assert_eq!(tcp.ack().0, 1, "ACK must survive merge/split");
                let f = usize::from(tcp.src_port()) - 7000;
                // Gapless per-flow sequence space: each wire segment
                // starts exactly where the previous one ended.
                prop_assert_eq!(tcp.seq().0, expect_seq[f]);
                expect_seq[f] = expect_seq[f].wrapping_add(tcp.payload().len() as u32);
                rebuilt[f].extend_from_slice(tcp.payload());
            }
        }
        for f in 0..N_FLOWS {
            prop_assert_eq!(&rebuilt[f], &sent[f], "flow {} stream", f);
        }
    }

    /// The caravan *engine* (pack) followed by bundle walking (unpack)
    /// preserves datagram count, order, and boundaries for randomized
    /// datagram sizes — passthrough singletons included.
    #[test]
    fn caravan_engine_pack_unpack_boundaries(
        lens in proptest::collection::vec(0usize..1300, 1..40),
    ) {
        let mut eng = CaravanEngine::new(CaravanConfig {
            imtu: 9000,
            hold_ns: 10_000,
            table_capacity: 1024,
            require_consecutive_ip_id: true,
            probe_port: 9999,
        });
        let mut sent = Vec::new();
        let mut outputs = Vec::new();
        for (i, &l) in lens.iter().enumerate() {
            let payload: Vec<u8> = (0..l).map(|j| ((i * 19 + j * 7) % 256) as u8).collect();
            let dg = UdpRepr { src_port: 5000, dst_port: 4433 }
                .build_datagram(SRC, DST, &payload)
                .unwrap();
            sent.push(dg.clone());
            let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
            ip.ident = 100u16.wrapping_add(i as u16);
            let pkt = ip.build_packet(&dg).unwrap();
            outputs.extend(eng.push_inbound((i as u64) * 500, pkt));
        }
        outputs.extend(eng.flush_all());
        let mut restored: Vec<Vec<u8>> = Vec::new();
        for out in &outputs {
            let ip = Ipv4Packet::new_checked(&out[..]).unwrap();
            prop_assert!(ip.verify_checksum());
            prop_assert!(out.len() <= 9000);
            if ip.tos() == CARAVAN_TOS {
                for inner in split_bundle(&ip.payload()[8..]).unwrap() {
                    restored.push(inner.to_vec());
                }
            } else {
                restored.push(ip.payload().to_vec());
            }
        }
        prop_assert_eq!(restored, sent);
    }

    /// Corrupted caravan bytes never panic the parser: off-boundary
    /// truncations are rejected with `Err`, boundary truncations yield a
    /// valid prefix, and arbitrary bit-flips either fail cleanly or
    /// still account for every byte.
    #[test]
    fn caravan_corruption_never_panics(
        lens in proptest::collection::vec(0usize..600, 1..10),
        cut in any::<u16>(),
        flip_byte in any::<u16>(),
        flip_bit in 0u32..8,
    ) {
        let mut b = CaravanBuilder::new(1 << 16);
        let mut boundaries = vec![0usize];
        for (i, &l) in lens.iter().enumerate() {
            let payload: Vec<u8> = (0..l).map(|j| ((i + j) % 256) as u8).collect();
            let dg = UdpRepr { src_port: 6000, dst_port: 4433 }
                .build_datagram(SRC, DST, &payload)
                .unwrap();
            b.push(&dg).unwrap();
            boundaries.push(b.len());
        }
        let bundle = b.finish();
        prop_assert!(!bundle.is_empty());

        // Truncation at an arbitrary point.
        let pos = usize::from(cut) % bundle.len();
        match split_bundle(&bundle[..pos]) {
            Ok(prefix) => {
                prop_assert!(boundaries.contains(&pos),
                    "cut {} inside a datagram must not parse", pos);
                let idx = boundaries.iter().position(|&x| x == pos).unwrap();
                prop_assert_eq!(prefix.len(), idx);
            }
            Err(_) => prop_assert!(!boundaries.contains(&pos)),
        }

        // A single bit-flip anywhere: clean Ok or clean Err, and any Ok
        // result still partitions the buffer exactly.
        let mut flipped = bundle.clone();
        let fi = usize::from(flip_byte) % flipped.len();
        flipped[fi] ^= 1u8 << flip_bit;
        if let Ok(inner) = split_bundle(&flipped) {
            let covered: usize = inner.iter().map(|d| d.len()).sum();
            prop_assert_eq!(covered, flipped.len());
            prop_assert!(inner.len() <= MAX_INNER);
        }
    }
}

/// Exhaustive complement to `wide_checksum_matches_scalar_oracle`:
/// *every* length from 0 through 9216 bytes (odd tails, every residue of
/// the 8-byte wide words) over patterned non-repeating data.
#[test]
fn wide_checksum_matches_scalar_at_every_length() {
    let data: Vec<u8> = (0..9216u32)
        .map(|i| (i.wrapping_mul(167) >> 3) as u8)
        .collect();
    for len in 0..=data.len() {
        assert_eq!(
            checksum::ones_complement_sum(&data[..len]),
            checksum::ones_complement_sum_scalar(&data[..len]),
            "length {len}"
        );
    }
}

// --- PR 7: single-core speed machinery -------------------------------
//
// The SIMD checksum kernels, the scatter-gather split path, and the
// pooled view lifecycle all claim bit-exactness with their simple
// predecessors. Prove it.

use packet_express::wire::pool::{BufPool, PacketSink, SgPacket, SgSource, VecSink};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every checksum kernel agrees with the RFC 1071 scalar oracle on
    /// random content at a random (possibly unaligned) offset.
    #[test]
    fn checksum_kernels_match_scalar_on_random_data(
        data in proptest::collection::vec(any::<u8>(), 0..9216),
        offset in 0usize..64,
    ) {
        let start = offset.min(data.len());
        let slice = &data[start..];
        let oracle = checksum::ones_complement_sum_scalar(slice);
        for k in checksum::Kernel::ALL {
            prop_assert_eq!(
                checksum::ones_complement_sum_with(k, slice),
                oracle,
                "kernel {} at offset {} len {}", k.name(), start, slice.len()
            );
        }
    }

    /// The scatter-gather TSO splitter and the copying splitter are the
    /// same function: byte-identical wire packets, identical counters,
    /// for arbitrary payload sizes and path MTUs.
    #[test]
    fn sg_split_flatten_matches_legacy_split(
        payload_len in 1usize..9000,
        mtu in 576usize..1600,
        seed in any::<u64>(),
    ) {
        let payload: Vec<u8> = (0..payload_len)
            .map(|i| (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64) >> 33) as u8)
            .collect();
        let repr = TcpRepr {
            src_port: 6000,
            dst_port: 80,
            seq: SeqNum(42),
            ack: SeqNum(1),
            flags: TcpFlags::ACK,
            window: 1024,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, &payload);
        let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap();

        let mut sg_engine = SplitEngine::new(1500);
        let mut flat_engine = SplitEngine::new(1500);
        flat_engine.set_sg(false);
        let mut sg_sink = VecSink::new();
        let mut flat_sink = VecSink::new();
        sg_engine.push_to_into(&pkt, mtu, &mut sg_sink);
        flat_engine.push_to_into(&pkt, mtu, &mut flat_sink);

        prop_assert_eq!(&sg_sink.pkts, &flat_sink.pkts);
        prop_assert_eq!(sg_engine.stats.split, flat_engine.stats.split);
        prop_assert_eq!(sg_engine.stats.segments_out, flat_engine.stats.segments_out);
        prop_assert_eq!(sg_engine.stats.dropped_df, flat_engine.stats.dropped_df);
        prop_assert_eq!(sg_engine.stats.dropped_malformed, flat_engine.stats.dropped_malformed);
        // Every wire packet re-verifies both checksums after reassembly
        // from scattered segments.
        for w in &sg_sink.pkts {
            prop_assert!(w.len() <= mtu.max(pkt.len().min(mtu)));
            let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
            prop_assert!(ip.verify_checksum());
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            prop_assert!(tcp.verify_checksum(SRC, DST));
        }
        // The SG engine recycles every pooled header buffer (the sink
        // hands each one back after its single copy). The flat path's
        // VecSink consumes buffers into Vecs by contract, so only the
        // SG side is required to balance.
        let sp = sg_engine.pool_stats();
        prop_assert_eq!(sp.gets, sp.puts + sp.dropped);
    }

    /// Pooled jumbo lifecycle: views registered against an `SgSource`
    /// all drop back to zero, the flattened views reproduce the jumbo
    /// byte-for-byte, and the jumbo itself recycles into the pool
    /// exactly once — no leak, no double-put.
    #[test]
    fn sg_views_recycle_the_jumbo_exactly_once(
        len in 1usize..9216,
        n_views in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut pool = BufPool::for_mtu(9216, 64);
        let mut jumbo = pool.get();
        for i in 0..len {
            jumbo.extend_from_slice(&[
                (seed.wrapping_mul(2862933555777941757).wrapping_add(i as u64) >> 29) as u8,
            ]);
        }
        let src = SgSource::new(jumbo);
        let mut sink = VecSink::new();

        // Carve the jumbo into n contiguous views and emit each through
        // the single-copy sink, recycling every header buffer.
        for i in 0..n_views {
            let a = (i * len) / n_views;
            let b = ((i + 1) * len) / n_views;
            let view = SgPacket::new(pool.get(), &src.bytes()[a..b], src.rc());
            prop_assert_eq!(src.views(), 1, "one live view at a time");
            if let Some(h) = sink.push_sg(view) {
                pool.put(h);
            }
        }
        prop_assert_eq!(src.views(), 0, "all views dropped");

        let flat: Vec<u8> = sink.pkts.concat();
        prop_assert_eq!(&flat[..], src.bytes());

        // The jumbo goes back exactly once: puts rise by one, and the
        // pool balances to zero outstanding buffers.
        let puts_before = pool.stats.puts;
        pool.put(src.into_buf());
        prop_assert_eq!(pool.stats.puts, puts_before + 1);
        prop_assert_eq!(pool.outstanding(), 0);
        prop_assert_eq!(
            pool.stats.gets,
            pool.stats.puts + pool.stats.dropped,
            "every get matched by exactly one put"
        );
    }
}

/// Exhaustive kernel equivalence: *every* kernel × *every* length
/// 0..=9216 (at a rolling unaligned offset) × *every* offset 0..=63 (at
/// representative lengths spanning the SIMD width boundaries), over
/// patterned non-repeating data. Combined with the random-content
/// property above, this pins every SIMD tail/alignment case to the
/// scalar oracle.
#[test]
fn every_kernel_matches_scalar_at_every_length_and_offset() {
    let data: Vec<u8> = (0..9216 + 64u32)
        .map(|i| (i.wrapping_mul(197) >> 2) as u8)
        .collect();
    // Sweep all lengths; the offset rolls through every 64-byte residue.
    for len in 0..=9216usize {
        let off = len % 64;
        let slice = &data[off..off + len];
        let oracle = checksum::ones_complement_sum_scalar(slice);
        for k in checksum::Kernel::ALL {
            assert_eq!(
                checksum::ones_complement_sum_with(k, slice),
                oracle,
                "kernel {} len {len} offset {off}",
                k.name()
            );
        }
    }
    // Sweep all offsets at lengths bracketing each kernel's stride.
    for off in 0..=63usize {
        for len in [
            0usize, 1, 2, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65, 512, 1500, 9216,
        ] {
            let slice = &data[off..off + len];
            let oracle = checksum::ones_complement_sum_scalar(slice);
            for k in checksum::Kernel::ALL {
                assert_eq!(
                    checksum::ones_complement_sum_with(k, slice),
                    oracle,
                    "kernel {} len {len} offset {off}",
                    k.name()
                );
            }
        }
    }
}
