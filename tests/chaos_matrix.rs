//! The chaos matrix — the robustness contract of the PXGW datapath,
//! proven over seeded fault schedules rather than hand-picked cases.
//!
//! Every seed names one complete fault schedule ([`FaultSpec::chaos`]):
//! ingress drop/duplicate/reorder/corrupt/truncate rates, stateless
//! pool-dry and flow-table-deny verdicts, and a worker panic/stall
//! cadence. For each seed the engine runs at 1, 2, 4, and 8 cores and
//! must satisfy, with the faults live:
//!
//! * **zero panics** — injected worker panics are caught and healed by
//!   the in-place restart path; nothing unwinds out of the run;
//! * **zero leaked pool buffers** — `Worker::finish` debug-asserts
//!   `pool_outstanding() == 0` after the drain, so any degrade or
//!   restart path that forgets a buffer fails these (dev-profile) runs;
//! * **per-flow byte-stream identity across core counts** — the
//!   *content* each flow receives is a pure function of (seed, trace):
//!   aggregation boundaries may move when restarts rescue-flush held
//!   aggregates early, but the reassembled byte streams may not.
//!
//! The cross-core comparison therefore uses a boundary-insensitive
//! digest of the captured output: TCP packets are spread into per-flow
//! sequence-space byte maps (a jumbo frame and the eMTU segments it
//! merged write the identical bytes), UDP caravan bundles are split
//! back into their inner datagrams and hashed as an order-insensitive
//! multiset (a datagram contributes the same item whether it rode in a
//! bundle or passed through), and anything unparsable lands in a raw
//! bucket. Identical digests across 1/2/4/8 cores mean every receiver
//! would reassemble the identical streams.
//!
//! Seed count: `CHAOS_SEEDS` (default 16 for the in-tree run; CI runs
//! 500, the full matrix is `CHAOS_SEEDS=10000 cargo test --test
//! chaos_matrix`).

use packet_express::core::engine::{
    run_engine, run_engine_on_trace, EngineConfig, EngineMode, EngineReport,
};
use packet_express::core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use packet_express::core::{FlowTableConfig, SteerConfig};
use packet_express::faults::FaultSpec;
use packet_express::wire::caravan::split_bundle;
use packet_express::wire::ipv4::CARAVAN_TOS;
use packet_express::wire::FlowKey;
use packet_express::workload::internet::{InternetConfig, InternetModel};
use std::collections::BTreeMap;

const TRACE_PKTS: u64 = 2_000;
const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn seed_count() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

fn chaos_run(workload: WorkloadKind, cores: usize, seed: u64) -> EngineReport {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
    // Trace seed fixed per chaos seed and independent of the core
    // count, so every core count processes the identical faulted trace.
    pipe.seed = 0xC4A0_5000 ^ seed;
    pipe.trace_pkts = TRACE_PKTS as usize;
    pipe.n_flows = 32;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
    cfg.faults = FaultSpec::chaos(seed);
    cfg.capture_output = true;
    run_engine(cfg)
}

/// splitmix64 — decorrelates the FNV item hashes so the multiset sum
/// can't be fooled by related items cancelling.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Boundary-insensitive summary of a delivered packet stream.
///
/// Two streams get equal digests iff every flow's reassembled bytes are
/// equal — regardless of how those bytes were cut into packets, how
/// datagrams were grouped into caravans, or the order packets of
/// *different* flows interleaved.
#[derive(Default)]
struct StreamDigest {
    /// Per-TCP-flow sequence-space byte maps. BTreeMaps so iteration
    /// (and thus the finalized hash) is canonical.
    tcp: BTreeMap<(u32, u32, u16, u16), BTreeMap<u32, u8>>,
    /// Order-insensitive multiset accumulator over UDP datagrams
    /// (wrapping sum of mixed per-item hashes: duplicates add twice,
    /// so multiplicity counts, but order cannot).
    udp_sum: u64,
    udp_count: u64,
    /// Unparsable packets, as a raw-bytes multiset.
    raw_sum: u64,
    raw_count: u64,
}

impl StreamDigest {
    fn add_raw(&mut self, pkt: &[u8]) {
        self.raw_sum = self.raw_sum.wrapping_add(mix(fnv(FNV_OFFSET, pkt)));
        self.raw_count += 1;
    }

    fn add_udp_item(&mut self, src: u32, dst: u32, sport: u16, dport: u16, payload: &[u8]) {
        let mut h = FNV_OFFSET;
        h = fnv(h, &src.to_be_bytes());
        h = fnv(h, &dst.to_be_bytes());
        h = fnv(h, &sport.to_be_bytes());
        h = fnv(h, &dport.to_be_bytes());
        h = fnv(h, &(payload.len() as u32).to_be_bytes());
        h = fnv(h, payload);
        self.udp_sum = self.udp_sum.wrapping_add(mix(h));
        self.udp_count += 1;
    }

    fn add_packet(&mut self, pkt: &[u8]) {
        let Some(()) = self.try_add_parsed(pkt) else {
            self.add_raw(pkt);
            return;
        };
    }

    fn try_add_parsed(&mut self, pkt: &[u8]) -> Option<()> {
        if pkt.len() < 20 || pkt[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(pkt[0] & 0xf) * 4;
        let total = usize::from(u16::from_be_bytes([pkt[2], pkt[3]])).min(pkt.len());
        if ihl < 20 || total < ihl {
            return None;
        }
        let src = u32::from_be_bytes(pkt.get(12..16)?.try_into().ok()?);
        let dst = u32::from_be_bytes(pkt.get(16..20)?.try_into().ok()?);
        let l4 = pkt.get(ihl..total)?;
        match pkt[9] {
            6 => {
                // TCP: spread the payload over the flow's seq space.
                if l4.len() < 20 {
                    return None;
                }
                let sport = u16::from_be_bytes([l4[0], l4[1]]);
                let dport = u16::from_be_bytes([l4[2], l4[3]]);
                let seq = u32::from_be_bytes([l4[4], l4[5], l4[6], l4[7]]);
                let off = usize::from(l4[12] >> 4) * 4;
                let payload = l4.get(off..)?;
                let map = self.tcp.entry((src, dst, sport, dport)).or_default();
                for (i, &b) in payload.iter().enumerate() {
                    map.insert(seq.wrapping_add(i as u32), b);
                }
                Some(())
            }
            17 => {
                let payload = l4.get(8..)?;
                if pkt[1] == CARAVAN_TOS {
                    // A caravan: digest the inner datagrams, not the
                    // bundle framing, so bundling layout is invisible.
                    for dg in split_bundle(payload).ok()? {
                        if dg.len() < 8 {
                            return None;
                        }
                        let sport = u16::from_be_bytes([dg[0], dg[1]]);
                        let dport = u16::from_be_bytes([dg[2], dg[3]]);
                        self.add_udp_item(src, dst, sport, dport, &dg[8..]);
                    }
                } else {
                    let sport = u16::from_be_bytes([l4[0], l4[1]]);
                    let dport = u16::from_be_bytes([l4[2], l4[3]]);
                    self.add_udp_item(src, dst, sport, dport, payload);
                }
                Some(())
            }
            _ => None,
        }
    }

    /// Canonical fingerprint: fold the TCP maps in key order, then the
    /// two multiset accumulators.
    fn finalize(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for ((src, dst, sport, dport), map) in &self.tcp {
            h = fnv(h, &src.to_be_bytes());
            h = fnv(h, &dst.to_be_bytes());
            h = fnv(h, &sport.to_be_bytes());
            h = fnv(h, &dport.to_be_bytes());
            for (&seq, &b) in map {
                h = fnv(h, &seq.to_be_bytes());
                h = fnv(h, &[b]);
            }
        }
        for word in [
            self.udp_sum,
            self.udp_count,
            self.raw_sum,
            self.raw_count,
            self.tcp.len() as u64,
        ] {
            h = fnv(h, &word.to_be_bytes());
        }
        h
    }
}

fn digest_of(report: &EngineReport) -> u64 {
    let mut d = StreamDigest::default();
    for pkt in &report.captured_output {
        d.add_packet(pkt);
    }
    d.finalize()
}

/// Input-side conservation: the engine must account for every packet
/// the faulted trace contains — no more, no fewer.
fn assert_conservation(r: &EngineReport, seed: u64, cores: usize) {
    assert_conservation_of(r, TRACE_PKTS, seed, cores);
}

/// Same contract, parameterised over the trace length so externally
/// generated traces (the internet-churn dimension) share the gate.
fn assert_conservation_of(r: &EngineReport, trace_pkts: u64, seed: u64, cores: usize) {
    let f = &r.ingress_faults;
    assert_eq!(
        r.totals.pkts_in,
        trace_pkts - f.dropped + f.duplicated,
        "seed {seed} cores {cores}: ingress accounting broken ({f:?})"
    );
    // Output-side: every emitted packet was captured (the digest sees
    // the complete delivered stream), and the only emissions missing
    // from the per-flow digests are unparsable passthroughs — packets
    // an ingress corruption or truncation mangled and the gateway
    // forwarded as-is for the endpoint to judge. A duplicate of a
    // mangled packet can add one more, hence the duplicated term.
    assert_eq!(
        r.captured_output.len() as u64,
        r.totals.pkts_out,
        "seed {seed} cores {cores}: emitted packets escaped capture"
    );
    let digest_pkts: u64 = r.flow_digests.values().map(|d| d.pkts).sum();
    assert!(
        digest_pkts <= r.totals.pkts_out
            && r.totals.pkts_out - digest_pkts <= f.corrupted + f.truncated + f.duplicated,
        "seed {seed} cores {cores}: digest gap {} vs faults {f:?}",
        r.totals.pkts_out - digest_pkts
    );
}

/// The matrix itself. For every seed × workload: run all core counts,
/// demand identical boundary-insensitive stream digests, and demand
/// clean conservation at each point. Any injected panic that escaped
/// the restart path, any leaked pool buffer (debug_assert in the
/// drain), or any byte-stream divergence fails the run.
#[test]
fn chaos_matrix_streams_identical_across_core_counts() {
    let seeds = seed_count();
    let mut restarts_seen = 0u64;
    let mut ingress_faults_seen = 0u64;
    let mut degraded_seen = 0u64;
    for seed in 0..seeds {
        for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
            let mut reference: Option<(u64, u64)> = None;
            for cores in CORE_COUNTS {
                let r = chaos_run(workload, cores, seed);
                assert_conservation(&r, seed, cores);
                restarts_seen += r.totals.worker_restarts;
                ingress_faults_seen += r.ingress_faults.total();
                degraded_seen += r.totals.degraded_pkts;
                let digest = digest_of(&r);
                match reference {
                    None => reference = Some((digest, r.totals.bytes_out)),
                    Some((want, _)) => assert_eq!(
                        digest, want,
                        "seed {seed} {workload:?}: stream digest diverged at {cores} cores \
                         (faults {:?}, restarts {})",
                        r.ingress_faults, r.totals.worker_restarts
                    ),
                }
            }
        }
    }
    // The matrix must actually exercise the machinery it certifies:
    // across the seed sweep, ingress faults fired, workers died and
    // were restarted, and resource faults forced degraded forwarding.
    assert!(ingress_faults_seen > 0, "no ingress faults fired");
    assert!(restarts_seen > 0, "no worker restarts exercised");
    assert!(degraded_seen > 0, "no degraded forwarding exercised");
}

/// The churn dimension: the same fault schedules, but over traffic
/// from the internet model instead of the uniform trace generator —
/// a 100k-flow ring with Zipf elephants, mice, and flow churn, fed
/// through deliberately under-provisioned tables so both eviction
/// paths (idle mice from probation, pressure evictions with rescue
/// flush) fire *while* workers are being killed and buffers corrupted.
/// Conservation, digest parity across core counts, and the pool-drain
/// leak asserts are exactly the gates the plain matrix enforces.
const CHURN_TRACE_PKTS: usize = 4_000;
const CHURN_FLOWS: usize = 100_000;

fn churn_trace(seed: u64) -> Vec<(FlowKey, Vec<u8>)> {
    let mut model = InternetModel::new(InternetConfig::sized(CHURN_FLOWS, 0xC4A0_6000 ^ seed));
    model.generate_trace(CHURN_TRACE_PKTS)
}

fn churn_run(cores: usize, seed: u64, trace: Vec<(FlowKey, Vec<u8>)>) -> EngineReport {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
    // Tables far smaller than the flow population: the classifier must
    // recycle entries (idle-mouse preference) and the merge table must
    // rescue-flush pending aggregates under pressure, mid-fault.
    pipe.steer = Some(SteerConfig {
        table_capacity: 256,
        ..SteerConfig::default()
    });
    pipe.flow_table = Some(FlowTableConfig::with_capacity(16));
    let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
    cfg.faults = FaultSpec::chaos(seed);
    cfg.capture_output = true;
    run_engine_on_trace(cfg, trace)
}

#[test]
fn chaos_matrix_survives_internet_churn() {
    let seeds = seed_count().min(4);
    let mut ingress_faults_seen = 0u64;
    let mut idle_evictions = 0u64;
    let mut pressure_evictions = 0u64;
    let mut steered_mice = 0u64;
    for seed in 0..seeds {
        let trace = churn_trace(seed);
        let mut reference: Option<u64> = None;
        for cores in CORE_COUNTS {
            let r = churn_run(cores, seed, trace.clone());
            assert_conservation_of(&r, CHURN_TRACE_PKTS as u64, seed, cores);
            ingress_faults_seen += r.ingress_faults.total();
            idle_evictions += r.totals.flows_evicted_idle;
            pressure_evictions += r.totals.flows_evicted_pressure;
            steered_mice += r.totals.steered_mice_pkts;
            let digest = digest_of(&r);
            match reference {
                None => reference = Some(digest),
                Some(want) => assert_eq!(
                    digest, want,
                    "seed {seed}: churn stream digest diverged at {cores} cores \
                     (faults {:?}, evictions idle {} / pressure {})",
                    r.ingress_faults, r.totals.flows_evicted_idle, r.totals.flows_evicted_pressure
                ),
            }
        }
    }
    // The dimension must actually exercise what it claims to: faults
    // fired, the classifier recycled idle mice, the merge table hit
    // pressure and rescue-flushed, and mice hairpinned past merging.
    assert!(ingress_faults_seen > 0, "no ingress faults fired");
    assert!(
        idle_evictions > 0,
        "classifier never recycled an idle mouse"
    );
    assert!(pressure_evictions > 0, "merge table never hit pressure");
    assert!(steered_mice > 0, "no mice hairpinned past the merge path");
}

/// One schedule, replayed: the entire report — captured packets
/// included, byte for byte — must be identical run over run. This is
/// the reproducibility half of the contract: a failing seed from the
/// 10k matrix can be handed to a debugger and will fail the same way.
#[test]
fn chaos_run_replays_bit_identically() {
    for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
        let a = chaos_run(workload, 4, 7);
        let b = chaos_run(workload, 4, 7);
        assert_eq!(a.captured_output, b.captured_output);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.flow_digests, b.flow_digests);
        assert_eq!(a.ingress_faults, b.ingress_faults);
    }
}

/// Faults off, capture on: the digest machinery itself is
/// boundary-insensitive on a clean run (jumbo merges at 1 core vs 8
/// cores regroup the same bytes), so a matrix failure implicates the
/// datapath, not the test harness.
#[test]
fn clean_runs_digest_identically_across_core_counts() {
    for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
        let digests: Vec<u64> = CORE_COUNTS
            .iter()
            .map(|&cores| {
                let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
                pipe.seed = 0xC4A0_5000;
                pipe.trace_pkts = TRACE_PKTS as usize;
                pipe.n_flows = 32;
                let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
                cfg.capture_output = true;
                digest_of(&run_engine(cfg))
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{workload:?}: clean-run digests diverged: {digests:?}"
        );
    }
}
