//! §4.2 "Explicit iMTU advertisement": two adjacent b-networks exchange
//! iMTU adverts through their PXGWs and then forward jumbo traffic across
//! the border *untranslated* — extending the large-MTU path segment.

use packet_express::core::advert::BorderPolicy;
use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::sim::link::LinkConfig;
use packet_express::sim::network::Network;
use packet_express::sim::node::{NodeId, PortId};
use packet_express::sim::Nanos;
use packet_express::tcp::conn::ConnConfig;
use packet_express::tcp::host::{Host, HostConfig};
use std::net::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1); // b-network 1
const B: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1); // b-network 2

/// host A (9000) — gw1 — [border link] — gw2 — host B (9000).
fn peering_topo(asn: bool, border_mtu: usize) -> (Network, NodeId, NodeId, NodeId, NodeId) {
    let mut net = Network::new(31);
    let host_a = net.add_node(Host::new(HostConfig::new(A, 9000)));
    let gw_cfg = |asn_v: Option<u32>| GatewayConfig {
        steer: None,
        asn: asn_v,
        advert_interval_ns: 100_000_000, // fast refresh for the test
        ..Default::default()
    };
    let gw1 = net.add_node(PxGateway::new(gw_cfg(asn.then_some(64512))));
    let gw2 = net.add_node(PxGateway::new(gw_cfg(asn.then_some(64513))));
    let host_b = net.add_node(Host::new(HostConfig::new(B, 9000)));
    net.connect(
        (host_a, PortId(0)),
        (gw1, INTERNAL_PORT),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(20), 9000),
    );
    net.connect(
        (gw1, EXTERNAL_PORT),
        (gw2, EXTERNAL_PORT),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(500), border_mtu),
    );
    net.connect(
        (gw2, INTERNAL_PORT),
        (host_b, PortId(0)),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(20), 9000),
    );
    (net, host_a, gw1, gw2, host_b)
}

fn run_transfer(net: &mut Network, host_a: NodeId, host_b: NodeId, total: u64) {
    net.node_mut::<Host>(host_b)
        .listen(80, ConnConfig::new((B, 80), (A, 0), 9000));
    net.node_mut::<Host>(host_a).connect_at(
        1_000_000, // after the first adverts
        ConnConfig::new((A, 40000), (B, 80), 9000).sending(total),
        Some(Nanos::from_secs(20).0),
    );
    net.run_until(Nanos::from_secs(10));
}

#[test]
fn adverts_establish_passthrough_and_jumbos_cross_untouched() {
    let (mut net, host_a, gw1, gw2, host_b) = peering_topo(true, 9000);
    run_transfer(&mut net, host_a, host_b, 3_000_000);
    // Both gateways learned each other.
    let now = net.now().0;
    let g1 = net.node_ref::<PxGateway>(gw1);
    let g2 = net.node_ref::<PxGateway>(gw2);
    assert_eq!(g1.neighbor_asn, Some(64513));
    assert_eq!(g2.neighbor_asn, Some(64512));
    assert!(matches!(
        g1.border_policy(now),
        BorderPolicy::PassThrough { up_to: 9000 }
    ));
    // Jumbo segments crossed the border without splitting.
    assert!(g1.passthrough_out > 0, "jumbos crossed untranslated");
    assert_eq!(g1.split.stats.split, 0, "nothing was split at gw1");
    // And delivery is intact.
    let st = &net.node_ref::<Host>(host_b).tcp_stats()[0];
    assert_eq!(st.bytes_received, 3_000_000);
    assert_eq!(st.integrity_errors, 0);
    // MSS negotiation never needed rewriting: both ends are jumbo.
    assert_eq!(st.effective_mss, 8960);
}

#[test]
fn without_adverts_the_border_translates() {
    let (mut net, host_a, gw1, _gw2, host_b) = peering_topo(false, 1500);
    run_transfer(&mut net, host_a, host_b, 2_000_000);
    let g1 = net.node_ref::<PxGateway>(gw1);
    assert_eq!(g1.neighbor_asn, None);
    assert!(matches!(
        g1.border_policy(net.now().0),
        BorderPolicy::Translate
    ));
    assert_eq!(g1.passthrough_out, 0);
    assert!(g1.split.stats.split > 0, "jumbos were split for the border");
    let st = &net.node_ref::<Host>(host_b).tcp_stats()[0];
    assert_eq!(st.bytes_received, 2_000_000);
    assert_eq!(st.integrity_errors, 0);
}

/// A smaller-iMTU neighbour caps the pass-through size: 4000-byte jumbo
/// frames cross, 9000-byte ones are split.
#[test]
fn passthrough_respects_the_smaller_imtu() {
    let mut net = Network::new(33);
    let host_a = net.add_node(Host::new(HostConfig::new(A, 9000)));
    let gw1 = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        asn: Some(64512),
        advert_interval_ns: 100_000_000,
        ..Default::default()
    }));
    // Neighbour runs a 4000 B iMTU.
    let gw2 = net.add_node(PxGateway::new(GatewayConfig {
        imtu: 4000,
        steer: None,
        asn: Some(64513),
        advert_interval_ns: 100_000_000,
        ..Default::default()
    }));
    let host_b = net.add_node(Host::new(HostConfig::new(B, 4000)));
    net.connect(
        (host_a, PortId(0)),
        (gw1, INTERNAL_PORT),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(20), 9000),
    );
    net.connect(
        (gw1, EXTERNAL_PORT),
        (gw2, EXTERNAL_PORT),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(500), 9000),
    );
    net.connect(
        (gw2, INTERNAL_PORT),
        (host_b, PortId(0)),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(20), 4000),
    );
    run_transfer(&mut net, host_a, host_b, 2_000_000);
    let now = net.now().0;
    let g1 = net.node_ref::<PxGateway>(gw1);
    assert!(
        matches!(
            g1.border_policy(now),
            BorderPolicy::PassThrough { up_to: 4000 }
        ),
        "policy capped at the neighbour's iMTU"
    );
    let st = &net.node_ref::<Host>(host_b).tcp_stats()[0];
    assert_eq!(st.bytes_received, 2_000_000);
    assert_eq!(st.integrity_errors, 0);
}
