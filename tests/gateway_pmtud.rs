//! The PXGW-resident F-PMTUD client (§4.2 end-to-end mechanism): the
//! gateway probes external destinations and splits to the *discovered*
//! path MTU instead of the configured eMTU.

use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::sim::link::LinkConfig;
use packet_express::sim::network::Network;
use packet_express::sim::node::{NodeId, PortId};
use packet_express::sim::router::Router;
use packet_express::sim::Nanos;
use packet_express::tcp::conn::ConnConfig;
use packet_express::tcp::host::{Host, HostConfig};
use std::net::Ipv4Addr;

const BHOST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
const GW_ADDR: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
const EXT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 5);

/// b-host (9000) — gw — router — external host, where the router's
/// egress towards the external host has `narrow_mtu`.
fn topo(narrow_mtu: usize, ext_host_mtu: usize, pmtud: bool) -> (Network, NodeId, NodeId, NodeId) {
    let mut net = Network::new(55);
    let bhost = net.add_node(Host::new(HostConfig::new(BHOST, 9000)));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        pmtud_addr: pmtud.then_some(GW_ADDR),
        ..Default::default()
    }));
    let mut router = Router::new(Ipv4Addr::new(192, 0, 2, 254), vec![9000, narrow_mtu]);
    router.add_route(Ipv4Addr::new(10, 1, 0, 0), 16, PortId(0));
    router.add_route(Ipv4Addr::new(192, 0, 2, 0), 24, PortId(0));
    router.add_route(Ipv4Addr::new(198, 51, 100, 0), 24, PortId(1));
    let rt = net.add_node(router);
    let mut ext_cfg = HostConfig::new(EXT, ext_host_mtu);
    ext_cfg.fpmtud_daemon = true; // the paper's "daemon on the destination"
    let ext = net.add_node(Host::new(ext_cfg));
    net.connect(
        (bhost, PortId(0)),
        (gw, INTERNAL_PORT),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(20), 9000),
    );
    net.connect(
        (gw, EXTERNAL_PORT),
        (rt, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(100), 9000),
    );
    net.connect(
        (rt, PortId(1)),
        (ext, PortId(0)),
        LinkConfig::new(
            10_000_000_000,
            Nanos::from_micros(100),
            narrow_mtu.max(ext_host_mtu),
        ),
    );
    (net, bhost, gw, ext)
}

fn upload(net: &mut Network, bhost: NodeId, ext: NodeId, total: u64, ext_mtu: usize) {
    net.node_mut::<Host>(ext)
        .listen(80, ConnConfig::new((EXT, 80), (BHOST, 0), ext_mtu));
    net.node_mut::<Host>(bhost).connect_at(
        0,
        ConnConfig::new((BHOST, 40000), (EXT, 80), 9000).sending(total),
        Some(Nanos::from_secs(25).0),
    );
    net.run_until(Nanos::from_secs(25));
}

/// A 1400 B hop hides behind the gateway's 1500 B assumption. Without
/// PMTUD the gateway's DF segments die at the router; with the resident
/// F-PMTUD client it learns the real PMTU and the transfer completes.
#[test]
fn pmtud_client_rescues_a_narrow_path() {
    // Without PMTUD: broken (the paper's §3 failure mode — the ICMP goes
    // to the *sender*, which cannot act on the gateway's behalf).
    let (mut net, bhost, _gw, ext) = topo(1400, 1500, false);
    upload(&mut net, bhost, ext, 300_000, 1500);
    let without = net.node_ref::<Host>(ext).tcp_stats()[0].bytes_received;
    assert!(
        without < 300_000,
        "static eMTU across a 1400B hop should strand the transfer ({without})"
    );
    assert!(
        net.stats().pkts_dropped_df > 0,
        "router dropped DF segments"
    );

    // With PMTUD: the gateway probes, learns ~1396, splits to it.
    let (mut net, bhost, gw, ext) = topo(1400, 1500, true);
    upload(&mut net, bhost, ext, 300_000, 1500);
    let st = net.node_ref::<Host>(ext).tcp_stats()[0];
    assert_eq!(st.bytes_received, 300_000, "PMTUD-aware split completes");
    assert_eq!(st.integrity_errors, 0);
    let g = net.node_ref::<PxGateway>(gw);
    let client = g.pmtud.as_ref().unwrap();
    assert_eq!(client.probes_sent, 1);
    let learned = client.pmtu_for(EXT).expect("report came back");
    assert!(learned <= 1400 && learned > 1360, "learned {learned}");
    assert!(
        net.node_ref::<Host>(ext).fpmtud_reports >= 1,
        "host daemon served"
    );
}

/// The opposite direction: the whole external path turns out to be
/// jumbo-capable, so the gateway stops splitting entirely — extending
/// the large-MTU segment end-to-end with zero configuration.
#[test]
fn pmtud_client_discovers_a_jumbo_path() {
    let (mut net, bhost, gw, ext) = topo(9000, 9000, true);
    upload(&mut net, bhost, ext, 2_000_000, 9000);
    let st = net.node_ref::<Host>(ext).tcp_stats()[0];
    assert_eq!(st.bytes_received, 2_000_000);
    assert_eq!(st.integrity_errors, 0);
    let g = net.node_ref::<PxGateway>(gw);
    assert_eq!(g.pmtud.as_ref().unwrap().pmtu_for(EXT), Some(9000));
    // Almost nothing needed splitting once the jumbo PMTU was learned
    // (only the pre-report transient).
    let split = g.split.stats.split;
    assert!(split <= 3, "jumbo path should flow unsplit, split={split}");
    // And the receiver really saw jumbo segments: its MSS was 8948
    // (9000-capable) and the gateway raised nothing above it.
    assert_eq!(st.effective_mss, 8960);
}
