//! Adversarial churn proptests for the PXGW flow table.
//!
//! A reference "clock model" — the naive structure the optimised slab /
//! intrusive-LRU / lazy-heap implementation replaced — is driven in
//! lockstep with the real table through arbitrary interleavings of
//! inserts, lookups, protects, removes, deadline expiries, and time
//! advances. Three properties are enforced at every step:
//!
//! 1. **Bounded occupancy** — the table never exceeds its configured
//!    capacity, whatever the interleaving.
//! 2. **No silent loss** — every value (standing in for unflushed merge
//!    state) that enters the table leaves it exactly once, through a
//!    return path the caller can rescue-flush: the eviction return of
//!    `insert`, `remove`, `pop_expired`, or the final `drain`.
//! 3. **Model equivalence** — eviction victims, segment membership, LRU
//!    order, expiry order, and the idle/pressure counters all match the
//!    clock-model reference.

use packet_express::core::{FlowTable, FlowTableConfig};
use packet_express::wire::FlowKey;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Small capacity against a larger key universe: most inserts during a
/// run happen at capacity, so eviction logic is exercised constantly.
const CAPACITY: usize = 8;
const KEYS: u16 = 24;

fn key(i: u16) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
        40_000 + i,
        Ipv4Addr::new(10, 99, 0, 1),
        5201,
    )
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert key `k`; when `armed`, with a deadline `delay` ticks out.
    Insert { k: u16, armed: bool, delay: u16 },
    /// `get_mut` (an LRU touch on hit).
    Get { k: u16 },
    /// Promote to the protected segment.
    Protect { k: u16 },
    /// Explicit removal.
    Remove { k: u16 },
    /// Drain one expired entry at the current clock.
    PopExpired,
    /// Advance the clock.
    Advance { dt: u16 },
}

/// Decodes one generated tuple into an operation. The selector field
/// weights the mix: inserts dominate (they drive churn), lookups are
/// frequent, and structural ops (protect / remove / expiry / time) each
/// get a steady share.
fn decode(sel: u8, k: u16, delay: u16, dt: u16) -> Op {
    match sel {
        0..=3 => Op::Insert {
            k,
            armed: sel.is_multiple_of(2),
            delay,
        },
        4..=6 => Op::Get { k },
        7 => Op::Protect { k },
        8 => Op::Remove { k },
        9..=10 => Op::PopExpired,
        _ => Op::Advance { dt },
    }
}

/// The naive reference: a flat map plus a logical touch clock. Recency
/// is a per-entry counter bumped from a global clock on every touching
/// operation, so recency ties are impossible and the eviction victim is
/// always unique.
#[derive(Debug, Clone, Copy)]
struct ModelEntry {
    token: u64,
    deadline: Option<u64>,
    protected: bool,
    touched: u64,
}

#[derive(Default)]
struct Model {
    entries: HashMap<u16, ModelEntry>,
    clock: u64,
    evicted_idle: u64,
    evicted_pressure: u64,
}

impl Model {
    fn bump(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// The eviction victim the segmented LRU must pick: the least
    /// recently touched probation entry, or — only when no probation
    /// entry exists — the least recently touched protected one.
    fn victim(&self) -> u16 {
        let seg = |protected: bool| {
            self.entries
                .iter()
                .filter(move |(_, e)| e.protected == protected)
                .min_by_key(|(_, e)| e.touched)
                .map(|(&k, _)| k)
        };
        seg(false)
            .or_else(|| seg(true))
            .expect("victim in non-empty table")
    }

    /// Mirrors `FlowTable::insert_with_deadline`; returns the rescue
    /// return the real table must produce.
    fn insert(&mut self, k: u16, token: u64, deadline: Option<u64>) -> Option<(u16, u64)> {
        let touched = self.bump();
        if let Some(e) = self.entries.get_mut(&k) {
            let rescued_nothing = None;
            *e = ModelEntry {
                token,
                deadline,
                protected: e.protected,
                touched,
            };
            return rescued_nothing;
        }
        let evicted = if self.entries.len() >= CAPACITY {
            let v = self.victim();
            let e = self.entries.remove(&v).expect("victim is live");
            if e.protected {
                self.evicted_pressure += 1;
            } else {
                self.evicted_idle += 1;
            }
            Some((v, e.token))
        } else {
            None
        };
        self.entries.insert(
            k,
            ModelEntry {
                token,
                deadline,
                protected: false,
                touched,
            },
        );
        evicted
    }

    /// The key(s) holding the minimum armed deadline `<= now`. Deadline
    /// ties are possible (two arms can land on the same tick), and the
    /// real table breaks them by slot index — an implementation detail —
    /// so expiry checks accept any minimal candidate and then sync.
    fn expirable(&self, now: u64) -> Vec<u16> {
        let due = self
            .entries
            .values()
            .filter_map(|e| e.deadline)
            .filter(|&d| d <= now)
            .min();
        match due {
            None => Vec::new(),
            Some(min) => self
                .entries
                .iter()
                .filter(|(_, e)| e.deadline == Some(min))
                .map(|(&k, _)| k)
                .collect(),
        }
    }

    /// Eviction order the segmented LRU must report: probation entries
    /// oldest-first, then protected entries oldest-first.
    fn lru_order(&self) -> Vec<FlowKey> {
        let seg = |protected: bool| {
            let mut v: Vec<(u64, u16)> = self
                .entries
                .iter()
                .filter(|(_, e)| e.protected == protected)
                .map(|(&k, e)| (e.touched, k))
                .collect();
            v.sort_unstable();
            v.into_iter().map(|(_, k)| key(k))
        };
        seg(false).chain(seg(true)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Drive table and clock model through an adversarial interleaving
    /// and demand step-by-step equivalence plus end-to-end conservation
    /// of every stored value.
    #[test]
    fn flow_table_survives_adversarial_churn(
        raw in proptest::collection::vec((0u8..13, 0..KEYS, 1..64u16, 1..48u16), 1..300),
    ) {
        let mut table: FlowTable<u64> = FlowTable::with_config(FlowTableConfig::with_capacity(CAPACITY));
        let mut model = Model::default();
        let mut now = 0u64;
        let mut next_token = 0u64;
        let mut issued = 0u64;
        // Every token that left the table through a rescuable path.
        let mut returned: Vec<u64> = Vec::new();
        // Tokens the *caller* overwrote via insert-replace — the one
        // legitimate way state leaves without a rescue return.
        let mut clobbered: Vec<u64> = Vec::new();

        for (sel, k, delay, dt) in raw {
            match decode(sel, k, delay, dt) {
                Op::Insert { k, armed, delay } => {
                    let token = next_token;
                    next_token += 1;
                    issued += 1;
                    if let Some(old) = model.entries.get(&k) {
                        clobbered.push(old.token);
                    }
                    let deadline = armed.then(|| now + u64::from(delay));
                    let want = model.insert(k, token, deadline);
                    let got = match deadline {
                        Some(d) => table.insert_with_deadline(key(k), token, d),
                        None => table.insert(key(k), token),
                    };
                    let want_k = want.map(|(vk, v)| (key(vk), v));
                    prop_assert_eq!(got, want_k, "eviction mismatch on insert of {}", k);
                    if let Some((_, v)) = want {
                        returned.push(v);
                    }
                }
                Op::Get { k } => {
                    let want = model.entries.get(&k).map(|e| e.token);
                    if want.is_some() {
                        // A hit is an LRU touch in both worlds.
                        let t = model.bump();
                        model.entries.get_mut(&k).expect("hit").touched = t;
                    }
                    prop_assert_eq!(table.get_mut(&key(k)).copied(), want);
                }
                Op::Protect { k } => {
                    let want = model.entries.contains_key(&k);
                    if model.entries.get(&k).is_some_and(|e| !e.protected) {
                        // Promotion re-links at the MRU end of the
                        // protected segment.
                        let t = model.bump();
                        let e = model.entries.get_mut(&k).expect("checked above");
                        e.protected = true;
                        e.touched = t;
                    }
                    prop_assert_eq!(table.protect(&key(k)), want);
                }
                Op::Remove { k } => {
                    let want = model.entries.remove(&k).map(|e| e.token);
                    prop_assert_eq!(table.remove(&key(k)), want);
                    if let Some(v) = want {
                        returned.push(v);
                    }
                }
                Op::PopExpired => {
                    let candidates = model.expirable(now);
                    match table.pop_expired(now) {
                        None => prop_assert!(
                            candidates.is_empty(),
                            "table says nothing expired at {} but model has {:?}",
                            now, candidates
                        ),
                        Some((fk, v)) => {
                            let k = candidates
                                .iter()
                                .copied()
                                .find(|&c| key(c) == fk);
                            prop_assert!(
                                k.is_some(),
                                "popped {:?} not among minimal-deadline candidates {:?}",
                                fk, candidates
                            );
                            let k = k.expect("checked above");
                            let e = model.entries.remove(&k).expect("candidate is live");
                            prop_assert_eq!(v, e.token);
                            returned.push(v);
                        }
                    }
                }
                Op::Advance { dt } => now += u64::from(dt),
            }

            // Invariants that must hold after *every* operation.
            prop_assert!(table.len() <= CAPACITY, "capacity exceeded: {}", table.len());
            prop_assert_eq!(table.len(), model.entries.len());
            prop_assert_eq!(table.evicted_idle, model.evicted_idle);
            prop_assert_eq!(table.evicted_pressure, model.evicted_pressure);
            prop_assert_eq!(table.lru_order(), model.lru_order());
        }

        // Conservation: drain what remains; every issued token must have
        // left the table exactly once — via an eviction return, an
        // explicit remove, an expiry pop, or this final drain. Nothing
        // is silently dropped, nothing is duplicated.
        for (fk, v) in table.drain() {
            let k = (0..KEYS).find(|&i| key(i) == fk).expect("key from our universe");
            let e = model.entries.remove(&k).expect("drained entry is live in model");
            prop_assert_eq!(v, e.token);
            returned.push(v);
        }
        prop_assert!(model.entries.is_empty(), "model retained {:?}", model.entries.keys());
        returned.extend_from_slice(&clobbered);
        returned.sort_unstable();
        let unique = returned.windows(2).all(|w| w[0] != w[1]);
        prop_assert!(unique, "a value left the table twice");
        prop_assert_eq!(returned.len() as u64, issued, "values lost without a rescue path");
    }
}
