//! Pins the engine's deterministic-mode output digests to the exact
//! values the pre-optimization datapath produced, so hot-path rework
//! (pooling, cached checksums, sink emit) is provably bit-identical on
//! the wire: any change to merge/split/caravan output bytes, packet
//! boundaries, or per-flow ordering shifts the folded FNV and fails
//! here.

use packet_express::core::engine::{run_engine, EngineConfig, EngineMode};
use packet_express::core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};

/// Folds a full engine report (per-flow digests + byte/packet totals)
/// into one order-independent-of-nothing FNV-1a value: flows are walked
/// in `BTreeMap` key order, so the fold is deterministic.
fn fold_report(workload: WorkloadKind, cores: usize) -> u64 {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
    pipe.seed = 0xDE7E_3311;
    pipe.trace_pkts = 10_000;
    pipe.n_flows = 128;
    let report = run_engine(EngineConfig::new(pipe, EngineMode::Deterministic));

    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (key, d) in &report.flow_digests {
        mix(u64::from(key.src_port));
        mix(u64::from(key.dst_port));
        mix(d.pkts);
        mix(d.bytes);
        mix(d.fnv);
    }
    mix(report.totals.pkts_out);
    mix(report.totals.bytes_out);
    mix(report.totals.pkts_out_inband);
    mix(report.totals.jumbo_out_inband);
    h
}

#[test]
fn deterministic_digests_match_pinned_values() {
    for (workload, expect) in [(WorkloadKind::Tcp, PIN_TCP), (WorkloadKind::Udp, PIN_UDP)] {
        for cores in [1usize, 2, 4, 8] {
            let got = fold_report(workload, cores);
            assert_eq!(
                got, expect,
                "{workload:?} @{cores} cores: folded digest {got:#018x}, pinned {expect:#018x}"
            );
        }
    }
}

// Captured from the pre-pool/pre-cached-checksum engine at seed
// 0xDE7E_3311 (10 000 pkts, 128 flows); see tests/engine_equivalence.rs
// for the cross-core identity these extend.
const PIN_TCP: u64 = 0xf187_35b8_f66b_5373;
const PIN_UDP: u64 = 0xefd2_7660_fff2_e70d;
