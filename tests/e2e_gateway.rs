//! Cross-crate end-to-end tests: hosts + gateway + routers + impairments,
//! asserting the property the whole system stands on — *translation is
//! transparent*: byte streams and datagram boundaries survive any mix of
//! merging, splitting, MSS rewriting, loss, and reordering.

use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::core::steer::SteerConfig;
use packet_express::sim::link::LinkConfig;
use packet_express::sim::netem::Netem;
use packet_express::sim::network::Network;
use packet_express::sim::node::{NodeId, PortId};
use packet_express::sim::Nanos;
use packet_express::tcp::conn::{CcAlgo, ConnConfig};
use packet_express::tcp::host::{Host, HostConfig, UdpFlowCfg};
use packet_express::tcp::udp::UdpSocket;
use std::net::Ipv4Addr;

const EXT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const INT: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

fn topo(seed: u64, cfg: GatewayConfig, wan: Netem) -> (Network, NodeId, NodeId, NodeId) {
    let mut net = Network::new(seed);
    let ext = net.add_node(Host::new(HostConfig::new(EXT, 1500)));
    let gw = net.add_node(PxGateway::new(cfg));
    let mut int_cfg = HostConfig::new(INT, 9000);
    int_cfg.caravan_rx = true;
    let int = net.add_node(Host::new(int_cfg));
    net.connect(
        (ext, PortId(0)),
        (gw, EXTERNAL_PORT),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(100), 1500)
            .with_netem(wan)
            .with_queue(1000 * 1500),
    );
    net.connect(
        (gw, INTERNAL_PORT),
        (int, PortId(0)),
        LinkConfig::new(40_000_000_000, Nanos::from_micros(20), 9000),
    );
    (net, ext, gw, int)
}

/// Bidirectional bulk TCP through the gateway over a lossy external
/// link: everything delivered, nothing corrupted, in both directions.
#[test]
fn lossy_bidirectional_tcp_is_transparent() {
    let wan = Netem::delay_loss(Nanos::from_millis(2), 5e-4);
    let (mut net, ext, gw, int) = topo(
        5,
        GatewayConfig {
            steer: None,
            ..Default::default()
        },
        wan,
    );
    let down = 2_000_000u64;
    let up = 1_500_000u64;
    net.node_mut::<Host>(ext)
        .listen(80, ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(down));
    net.node_mut::<Host>(int).connect_at(
        0,
        ConnConfig::new((INT, 40000), (EXT, 80), 9000).sending(up),
        Some(Nanos::from_secs(30).0),
    );
    net.run_until(Nanos::from_secs(30));
    let c = net.node_ref::<Host>(int).tcp_stats()[0];
    let s = net.node_ref::<Host>(ext).tcp_stats()[0];
    assert_eq!(c.bytes_received, down);
    assert_eq!(s.bytes_received, up);
    assert_eq!(c.integrity_errors + s.integrity_errors, 0);
    // The gateway genuinely worked both sides.
    let g = net.node_ref::<PxGateway>(gw);
    assert!(g.merge.stats.data_segs_in > 0);
    assert!(g.split.stats.split > 0);
}

/// Many concurrent flows with steering enabled: mice hairpin, elephants
/// merge, every stream stays intact.
#[test]
fn mixed_flows_with_steering_stay_intact() {
    let cfg = GatewayConfig {
        steer: Some(SteerConfig {
            elephant_pkts: 8,
            ..Default::default()
        }),
        ..Default::default()
    };
    let (mut net, ext, gw, int) = topo(6, cfg, Netem::none());
    // 3 bulk downloads + 5 tiny requests.
    for i in 0..3u16 {
        net.node_mut::<Host>(ext).listen(
            80 + i,
            ConnConfig::new((EXT, 80 + i), (INT, 0), 1500).sending(1_000_000),
        );
        net.node_mut::<Host>(int).connect_at(
            (i as u64) * 2_000_000,
            ConnConfig::new((INT, 40000 + i), (EXT, 80 + i), 9000),
            Some(Nanos::from_secs(20).0),
        );
    }
    for i in 0..5u16 {
        net.node_mut::<Host>(ext).listen(
            90 + i,
            ConnConfig::new((EXT, 90 + i), (INT, 0), 1500).sending(4_000),
        );
        net.node_mut::<Host>(int).connect_at(
            1_000_000 + (i as u64) * 3_000_000,
            ConnConfig::new((INT, 41000 + i), (EXT, 90 + i), 9000),
            Some(Nanos::from_secs(20).0),
        );
    }
    net.run_until(Nanos::from_secs(15));
    let int_host = net.node_ref::<Host>(int);
    let stats = int_host.tcp_stats();
    assert_eq!(stats.len(), 8);
    let total: u64 = stats.iter().map(|s| s.bytes_received).sum();
    assert_eq!(total, 3 * 1_000_000 + 5 * 4_000);
    assert_eq!(stats.iter().map(|s| s.integrity_errors).sum::<u64>(), 0);
    let g = net.node_ref::<PxGateway>(gw);
    assert!(g.hairpinned > 0, "mice were hairpinned");
    assert!(g.merge.stats.data_segs_in > 0, "elephants were merged");
}

/// UDP caravans under loss: every datagram that survives the WAN arrives
/// exactly once, with its boundary intact, despite bundling/unbundling.
#[test]
fn caravan_boundaries_survive_loss() {
    let wan = Netem::delay_loss(Nanos::from_millis(1), 2e-3);
    let (mut net, ext, gw, int) = topo(
        7,
        GatewayConfig {
            steer: None,
            ..Default::default()
        },
        wan,
    );
    net.node_mut::<Host>(int)
        .udp_bind(UdpSocket::bind(4433).recording());
    net.node_mut::<Host>(ext).add_udp_flow(UdpFlowCfg {
        local_port: 7000,
        dst: INT,
        dst_port: 4433,
        rate_bps: 200_000_000,
        payload: 1172,
        start_ns: 0,
        stop_ns: Nanos::from_millis(500).0,
    });
    net.run_until(Nanos::from_secs(2));
    let sent = net
        .node_ref::<Host>(ext)
        .udp_socket(7000)
        .unwrap()
        .stats
        .sent;
    let sock = net.node_ref::<Host>(int).udp_socket(4433).unwrap();
    assert!(sock.stats.datagrams > 0);
    assert!(sock.stats.datagrams <= sent);
    // Loss is per external wire packet, before bundling: delivery rate
    // stays near the raw survival rate.
    let rate = sock.stats.datagrams as f64 / sent as f64;
    assert!(rate > 0.98, "delivery rate {rate}");
    assert_eq!(sock.stats.malformed, 0);
    assert!(sock.received.iter().all(|p| p.len() == 1172));
    assert!(net.node_ref::<PxGateway>(gw).caravan.stats.caravans_out > 0);
}

/// CUBIC also works through the gateway (ablation of the cc algorithm).
#[test]
fn cubic_flows_through_gateway() {
    let (mut net, ext, _gw, int) = topo(
        8,
        GatewayConfig {
            steer: None,
            ..Default::default()
        },
        Netem::none(),
    );
    let mut server_cfg = ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(1_000_000);
    server_cfg.cc = CcAlgo::Cubic;
    net.node_mut::<Host>(ext).listen(80, server_cfg);
    let mut client_cfg = ConnConfig::new((INT, 40000), (EXT, 80), 9000);
    client_cfg.cc = CcAlgo::Cubic;
    net.node_mut::<Host>(int)
        .connect_at(0, client_cfg, Some(Nanos::from_secs(10).0));
    net.run_until(Nanos::from_secs(10));
    let c = net.node_ref::<Host>(int).tcp_stats()[0];
    assert_eq!(c.bytes_received, 1_000_000);
    assert_eq!(c.integrity_errors, 0);
}

/// The well-known-port constants of px-core and px-pmtud must agree, or
/// gateways would bundle F-PMTUD probes.
#[test]
fn fpmtud_port_constants_agree() {
    assert_eq!(
        packet_express::core::gateway::FPMTUD_PORT,
        packet_express::pmtud::FPMTUD_PORT
    );
}

/// §3's interference claim, measured: a mouse flow completes faster when
/// steering hairpins it past the merge engine's hold timer.
#[test]
fn steering_improves_mouse_completion_time() {
    let run = |steer: Option<SteerConfig>| {
        let cfg = GatewayConfig {
            steer,
            hold_ns: 500_000, // pronounced hold to make the effect visible
            ..Default::default()
        };
        let (mut net, ext, _gw, int) = topo(9, cfg, Netem::none());
        // A long-running elephant download keeps the merge engine busy.
        net.node_mut::<Host>(ext).listen(
            80,
            ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(u64::MAX),
        );
        net.node_mut::<Host>(int).connect_at(
            0,
            ConnConfig::new((INT, 40000), (EXT, 80), 9000),
            Some(Nanos::from_secs(9).0),
        );
        // The mouse: an 8 KB response starting at t = 2 s.
        net.node_mut::<Host>(ext).listen(
            81,
            ConnConfig::new((EXT, 81), (INT, 0), 1500).sending(8_000),
        );
        net.node_mut::<Host>(int).connect_at(
            Nanos::from_secs(2).0,
            ConnConfig::new((INT, 41000), (EXT, 81), 9000),
            Some(Nanos::from_secs(9).0),
        );
        net.run_until(Nanos::from_secs(10));
        let stats = net.node_ref::<Host>(int).tcp_stats();
        let mouse = stats.iter().find(|s| s.local_port == 41000).unwrap();
        assert_eq!(mouse.bytes_received, 8_000);
        // Completion proxy: retransmit-free byte delivery is equal, so we
        // compare how much hold latency the mouse absorbed through the
        // gateway using the elephant-busy window; measure via the merge
        // engine instead: with steering the mouse never entered it.
        mouse.bytes_received
    };
    let _ = run(None);
    let _ = run(Some(SteerConfig {
        elephant_pkts: 64,
        ..Default::default()
    }));
    // Structural assertions live in the unit tests; here we only assert
    // both configurations deliver the mouse fully (the latency comparison
    // is exercised by `mouse_latency_measured` below).
}

/// Direct latency measurement: time-to-last-byte of the mouse flow, with
/// and without steering, under a heavy elephant and a long hold timer.
#[test]
fn mouse_latency_measured() {
    let time_to_done = |steer: Option<SteerConfig>| -> u64 {
        let cfg = GatewayConfig {
            steer,
            hold_ns: 2_000_000,
            ..Default::default()
        };
        let (mut net, ext, _gw, int) = topo(10, cfg, Netem::none());
        net.node_mut::<Host>(ext).listen(
            81,
            ConnConfig::new((EXT, 81), (INT, 0), 1500).sending(64_000),
        );
        net.node_mut::<Host>(int).connect_at(
            0,
            ConnConfig::new((INT, 41000), (EXT, 81), 9000),
            Some(Nanos::from_secs(9).0),
        );
        // Sample the receive counter in fine steps; record completion.
        let mut done_at = 0u64;
        for step in 1..=4000u64 {
            net.run_until(Nanos(step * 1_000_000));
            let got = net.node_ref::<Host>(int).tcp_stats()[0].bytes_received;
            if got >= 64_000 {
                done_at = step;
                break;
            }
        }
        assert!(done_at > 0, "mouse must complete");
        done_at
    };
    let without = time_to_done(None);
    let with = time_to_done(Some(SteerConfig {
        elephant_pkts: 1_000_000,
        ..Default::default()
    }));
    // With steering (flow never promoted: pure hairpin), the mouse avoids
    // the 2 ms hold per partial aggregate and finishes no later.
    assert!(
        with <= without,
        "steered mouse finished at {with} ms vs {without} ms unsteered"
    );
}
