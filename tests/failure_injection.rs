//! Failure-injection tests: the system under resource pressure and
//! corruption — flow-table eviction at the gateway, seeded wire faults
//! from the px-faults [`FaultPlan`], reassembly expiry.
//!
//! The wire corruptor here is the *same* fault applier the engine-level
//! chaos matrix uses: a [`FaultSpec`] names the schedule, a
//! [`FaultPlan`] draws it deterministically. No ad-hoc RNG — a failing
//! seed reproduces bit-for-bit.

use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
use packet_express::faults::{FaultPlan, FaultSpec};
use packet_express::sim::link::LinkConfig;
use packet_express::sim::network::Network;
use packet_express::sim::node::{Ctx, Node, PortId};
use packet_express::sim::Nanos;
use packet_express::tcp::conn::ConnConfig;
use packet_express::tcp::host::{Host, HostConfig};
use packet_express::wire::PacketBuf;
use std::any::Any;
use std::net::Ipv4Addr;

const EXT: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const INT: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

/// A two-port repeater that runs every forwarded packet through a
/// seeded [`FaultPlan`] — drop, duplicate, corrupt, truncate at the
/// spec's rates, with the plan's own accounting. (Reorder is
/// meaningless packet-at-a-time on an in-order link, so specs here
/// leave it zero.)
struct FaultyWire {
    plan: FaultPlan,
}

impl FaultyWire {
    fn new(spec: FaultSpec) -> Self {
        FaultyWire {
            plan: FaultPlan::new(spec),
        }
    }
}

impl Node for FaultyWire {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf) {
        for bytes in self.plan.apply_ingress(vec![pkt.as_slice().to_vec()]) {
            ctx.send(PortId(1 - port.0), PacketBuf::from_payload(&bytes));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Under severe flow-table pressure (capacity 4, 12 concurrent flows),
/// the gateway evicts constantly but never loses or corrupts a byte.
#[test]
fn gateway_flow_table_pressure_is_lossless() {
    let mut net = Network::new(17);
    let ext = net.add_node(Host::new(HostConfig::new(EXT, 1500)));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        table_capacity: 4,
        ..Default::default()
    }));
    let int = net.add_node(Host::new(HostConfig::new(INT, 9000)));
    net.connect(
        (ext, PortId(0)),
        (gw, EXTERNAL_PORT),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(100), 1500),
    );
    net.connect(
        (gw, INTERNAL_PORT),
        (int, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(20), 9000),
    );
    let per_flow = 400_000u64;
    for i in 0..12u16 {
        net.node_mut::<Host>(ext).listen(
            80 + i,
            ConnConfig::new((EXT, 80 + i), (INT, 0), 1500).sending(per_flow),
        );
        net.node_mut::<Host>(int).connect_at(
            (i as u64) * 100_000,
            ConnConfig::new((INT, 40000 + i), (EXT, 80 + i), 9000),
            Some(Nanos::from_secs(20).0),
        );
    }
    net.run_until(Nanos::from_secs(15));
    let stats = net.node_ref::<Host>(int).tcp_stats();
    assert_eq!(stats.len(), 12);
    for st in &stats {
        assert_eq!(st.bytes_received, per_flow, "port {}", st.local_port);
        assert_eq!(st.integrity_errors, 0);
    }
    let g = net.node_ref::<PxGateway>(gw);
    assert!(g.merge.stats.flush_evict > 0, "pressure must evict");
    // Yield suffers under pressure — that is the expected trade-off.
    let y = g.merge.stats.conversion_yield(&g.merge.cfg);
    assert!(y < 0.9, "tiny table cannot sustain high yield ({y})");
}

/// Bit-flips on the wire are caught by checksums; TCP retransmits and
/// the application stream stays byte-perfect.
#[test]
fn bit_flips_never_corrupt_the_stream() {
    let mut net = Network::new(19);
    let a = net.add_node(Host::new(HostConfig::new(EXT, 1500)));
    let flipper = net.add_node(FaultyWire::new(FaultSpec {
        enabled: true,
        seed: 19,
        corrupt_ppm: 20_000,
        ..FaultSpec::off()
    }));
    let b = net.add_node(Host::new(HostConfig::new(INT, 1500)));
    net.connect(
        (a, PortId(0)),
        (flipper, PortId(0)),
        LinkConfig::new(1_000_000_000, Nanos::from_micros(200), 1500),
    );
    net.connect(
        (flipper, PortId(1)),
        (b, PortId(0)),
        LinkConfig::new(1_000_000_000, Nanos::from_micros(200), 1500),
    );
    let total = 500_000u64;
    net.node_mut::<Host>(b)
        .listen(80, ConnConfig::new((INT, 80), (EXT, 0), 1500));
    net.node_mut::<Host>(a).connect_at(
        0,
        ConnConfig::new((EXT, 40000), (INT, 80), 1500).sending(total),
        Some(Nanos::from_secs(60).0),
    );
    net.run_until(Nanos::from_secs(60));
    let flipped = net.node_ref::<FaultyWire>(flipper).plan.stats.corrupted;
    assert!(flipped > 0, "corruption must actually have happened");
    let st = &net.node_ref::<Host>(b).tcp_stats()[0];
    assert_eq!(st.bytes_received, total);
    assert_eq!(st.integrity_errors, 0, "checksums caught every flip");
    // Corrupted segments were discarded somewhere (host or parse).
    assert!(
        net.stats().get("host_tcp_bad_checksum") > 0
            || net.node_ref::<Host>(a).tcp_stats()[0].retransmits > 0
    );
}

/// The paper's transparency claim under *combined* stress: loss,
/// duplication, and corruption on the wire (one FaultPlan schedule)
/// plus a translating gateway — the stream must still arrive intact.
#[test]
fn combined_stress_through_gateway() {
    let mut net = Network::new(23);
    let ext = net.add_node(Host::new(HostConfig::new(EXT, 1500)));
    let flipper = net.add_node(FaultyWire::new(FaultSpec {
        enabled: true,
        seed: 23,
        corrupt_ppm: 5_000,
        drop_ppm: 10_000,
        dup_ppm: 10_000,
        ..FaultSpec::off()
    }));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        ..Default::default()
    }));
    let int = net.add_node(Host::new(HostConfig::new(INT, 9000)));
    net.connect(
        (ext, PortId(0)),
        (flipper, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(100), 1500).with_netem(
            packet_express::sim::netem::Netem::delay_loss(Nanos::from_millis(1), 1e-3),
        ),
    );
    net.connect(
        (flipper, PortId(1)),
        (gw, EXTERNAL_PORT),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(10), 1500),
    );
    net.connect(
        (gw, INTERNAL_PORT),
        (int, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(20), 9000),
    );
    let total = 1_000_000u64;
    net.node_mut::<Host>(ext).listen(
        80,
        ConnConfig::new((EXT, 80), (INT, 0), 1500).sending(total),
    );
    net.node_mut::<Host>(int).connect_at(
        0,
        ConnConfig::new((INT, 40000), (EXT, 80), 9000),
        Some(Nanos::from_secs(40).0),
    );
    net.run_until(Nanos::from_secs(40));
    let st = &net.node_ref::<Host>(int).tcp_stats()[0];
    assert_eq!(st.bytes_received, total);
    assert_eq!(st.integrity_errors, 0);
    let wire = &net.node_ref::<FaultyWire>(flipper).plan.stats;
    assert!(
        wire.corrupted > 0 && wire.dropped > 0 && wire.duplicated > 0,
        "the combined schedule must actually fire: {wire:?}"
    );
}
