//! The threaded engine's determinism contract, proven end to end:
//!
//! * Deterministic mode produces **bit-identical per-flow output byte
//!   streams and counter totals for a fixed seed across core counts**
//!   (1, 2, 4, 8) — RSS pins each flow to one core and hold-timer polls
//!   happen at trace timestamps, so scheduling cannot leak into output;
//! * Parallel mode (real OS threads, bounded channels) produces the
//!   same content as Deterministic mode;
//! * the engine's steady-state conversion-yield accounting matches the
//!   legacy modeled pipeline exactly, packet for packet.

use packet_express::core::engine::{run_engine, EngineConfig, EngineMode};
use packet_express::core::pipeline::{run_pipeline, PipelineConfig, SystemVariant, WorkloadKind};

/// A fixed-seed config whose seed does NOT depend on the core count
/// (unlike `PipelineConfig::fig5`, which varies the seed per sweep
/// point), so runs at different core counts see the identical trace.
fn pinned(workload: WorkloadKind, cores: usize) -> PipelineConfig {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, workload, cores);
    pipe.seed = 0xDE7E_3311;
    pipe.trace_pkts = 10_000;
    pipe.n_flows = 128;
    pipe
}

fn engine(
    workload: WorkloadKind,
    cores: usize,
    mode: EngineMode,
) -> packet_express::core::engine::EngineReport {
    run_engine(EngineConfig::new(pinned(workload, cores), mode))
}

/// Digest-equality assertion with a flight-recorder post-mortem: on
/// mismatch, both runs' per-core event timelines are printed so the
/// diverging core and packet are identifiable without a rerun.
fn assert_digests_match(
    a: &packet_express::core::engine::EngineReport,
    b: &packet_express::core::engine::EngineReport,
    context: &str,
) {
    if a.flow_digests != b.flow_digests {
        eprintln!("--- digest mismatch ({context}); flight recorder timelines follow ---");
        eprintln!("run A:\n{}", a.obs.dump_recent(64));
        eprintln!("run B:\n{}", b.obs.dump_recent(64));
        panic!("{context}: per-flow digests diverged (timelines above)");
    }
}

#[test]
fn deterministic_output_is_identical_across_core_counts() {
    for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
        let reference = engine(workload, 1, EngineMode::Deterministic);
        assert!(!reference.flow_digests.is_empty());
        for cores in [2usize, 4, 8] {
            let run = engine(workload, cores, EngineMode::Deterministic);
            assert_digests_match(
                &reference,
                &run,
                &format!("{workload:?} @{cores} cores vs 1 core"),
            );
            // Totals match field by field; `batches` legitimately varies
            // with sharding, so it is compared separately below.
            assert_eq!(reference.totals.pkts_in, run.totals.pkts_in);
            assert_eq!(reference.totals.bytes_in, run.totals.bytes_in);
            assert_eq!(reference.totals.pkts_out, run.totals.pkts_out);
            assert_eq!(reference.totals.bytes_out, run.totals.bytes_out);
            assert_eq!(reference.totals.pkts_out_inband, run.totals.pkts_out_inband);
            assert_eq!(
                reference.totals.jumbo_out_inband,
                run.totals.jumbo_out_inband
            );
            assert_eq!(run.per_core.len(), cores);
        }
    }
}

#[test]
fn parallel_threads_match_deterministic_content() {
    for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
        for cores in [2usize, 8] {
            let det = engine(workload, cores, EngineMode::Deterministic);
            let par = engine(workload, cores, EngineMode::Parallel);
            assert_digests_match(
                &det,
                &par,
                &format!("{workload:?} @{cores} deterministic vs parallel"),
            );
            assert_eq!(
                det.totals, par.totals,
                "{workload:?} @{cores}: counters diverged"
            );
            assert!(par.wall_ns > 0);
            assert!(par.throughput_bps > 0.0);
        }
    }
}

#[test]
fn parallel_runs_are_repeatable() {
    let a = engine(WorkloadKind::Tcp, 4, EngineMode::Parallel);
    let b = engine(WorkloadKind::Tcp, 4, EngineMode::Parallel);
    assert_eq!(a.flow_digests, b.flow_digests);
    assert_eq!(a.totals, b.totals);
}

#[test]
fn engine_yield_accounting_matches_legacy_pipeline() {
    for workload in [WorkloadKind::Tcp, WorkloadKind::Udp] {
        for cores in [1usize, 4] {
            let pipe = pinned(workload, cores);
            let model = run_pipeline(pipe);
            let real = run_engine(EngineConfig::new(pipe, EngineMode::Deterministic));
            assert_eq!(
                model.pkts_out, real.totals.pkts_out_inband,
                "{workload:?} @{cores}: steady-state output packet counts"
            );
            assert_eq!(model.pkts_in, real.totals.pkts_in);
            assert!(
                (model.conversion_yield - real.conversion_yield).abs() < 1e-12,
                "{workload:?} @{cores}: yield {} vs {}",
                model.conversion_yield,
                real.conversion_yield
            );
        }
    }
}
