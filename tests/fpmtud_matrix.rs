//! F-PMTUD correctness matrix over randomized multi-hop topologies:
//! for every topology × {ICMP working, ICMP blackholed}, the one-RTT
//! fragmentation-based answer must equal the true minimum link MTU
//! (within IPv4 fragment rounding), and where ICMP is unsuppressed it
//! must agree with what classic RFC 1191 PMTUD converges to.

use packet_express::pmtud::classic::{ClassicConfig, ClassicOutcome, ClassicProber};
use packet_express::pmtud::fpmtud::{FpmtudDaemon, FpmtudProber, ProbeOutcome, ProberConfig};
use packet_express::pmtud::topology::{
    build_path, path_delay, true_pmtu, Hop, DAEMON_ADDR, PROBER_ADDR,
};
use packet_express::sim::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run_fpmtud(hops: &[Hop], blackhole: bool, seed: u64) -> ProbeOutcome {
    let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, DAEMON_ADDR, hops[0].mtu));
    let (mut net, p, _) = build_path(
        seed,
        prober,
        FpmtudDaemon::new(DAEMON_ADDR),
        hops,
        blackhole,
    );
    net.run_until(Nanos::from_secs(20));
    net.node_ref::<FpmtudProber>(p)
        .outcome
        .clone()
        .expect("prober finished")
}

fn run_classic(hops: &[Hop], blackhole: bool, seed: u64) -> ClassicOutcome {
    let prober = ClassicProber::new(ClassicConfig {
        addr: PROBER_ADDR,
        dst: DAEMON_ADDR,
        initial_mtu: hops[0].mtu,
        timeout: Nanos::from_millis(500),
        max_tries_per_size: 2,
    });
    let (mut net, p, _) = build_path(
        seed,
        prober,
        FpmtudDaemon::new(DAEMON_ADDR),
        hops,
        blackhole,
    );
    net.run_until(Nanos::from_secs(60));
    net.node_ref::<ClassicProber>(p)
        .outcome
        .clone()
        .expect("prober finished")
}

/// A random topology: jumbo access hop, then 1–5 random narrower hops.
/// At least one hop is guaranteed below the probe size so discovery has
/// something to find (and classic PMTUD genuinely needs ICMP).
fn random_hops(rng: &mut SmallRng) -> Vec<Hop> {
    let mtus = [576usize, 1000, 1280, 1500, 2000, 4000];
    let n = rng.gen_range(2..=6);
    let mut hops = vec![Hop::new(9000, 100)];
    for _ in 1..n {
        hops.push(Hop::new(
            mtus[rng.gen_range(0..mtus.len())],
            rng.gen_range(20..3000),
        ));
    }
    hops
}

/// The matrix: randomized topologies × blackhole on/off. F-PMTUD must
/// always land on the true min-link MTU within fragment rounding (its
/// answer is the largest 8-byte-aligned payload cut the narrowest
/// router made, so it can sit up to one fragment-rounding step below
/// the link MTU), blackhole or not.
#[test]
fn fpmtud_equals_true_min_link_mtu_across_matrix() {
    let mut rng = SmallRng::seed_from_u64(0x3A7A);
    for case in 0..15u64 {
        let hops = random_hops(&mut rng);
        let truth = true_pmtu(&hops);
        for blackhole in [false, true] {
            match run_fpmtud(&hops, blackhole, 0x100 + case) {
                ProbeOutcome::Discovered {
                    pmtu, probes_sent, ..
                } => {
                    assert!(
                        pmtu <= truth && pmtu + 28 > truth - 8,
                        "case {case} blackhole={blackhole}: pmtu {pmtu} vs truth {truth} \
                         (hops {:?})",
                        hops.iter().map(|h| h.mtu).collect::<Vec<_>>()
                    );
                    assert!(probes_sent >= 1);
                }
                other => panic!("case {case} blackhole={blackhole}: {other:?}"),
            }
        }
    }
}

/// Where ICMP is unsuppressed, classic PMTUD converges to the exact
/// min-link MTU and F-PMTUD agrees within fragment rounding; with a
/// blackhole, classic fails while F-PMTUD's answer is unchanged.
#[test]
fn fpmtud_agrees_with_classic_when_icmp_works() {
    let mut rng = SmallRng::seed_from_u64(0xC1A5);
    for case in 0..8u64 {
        let hops = random_hops(&mut rng);
        let truth = true_pmtu(&hops);
        let f_open = match run_fpmtud(&hops, false, 0x200 + case) {
            ProbeOutcome::Discovered { pmtu, .. } => pmtu,
            other => panic!("case {case}: f-pmtud {other:?}"),
        };
        let f_dark = match run_fpmtud(&hops, true, 0x300 + case) {
            ProbeOutcome::Discovered { pmtu, .. } => pmtu,
            other => panic!("case {case}: f-pmtud/blackhole {other:?}"),
        };
        assert_eq!(
            f_open, f_dark,
            "case {case}: F-PMTUD must not depend on ICMP"
        );
        match run_classic(&hops, false, 0x400 + case) {
            ClassicOutcome::Discovered { pmtu, .. } => {
                assert_eq!(pmtu, truth, "case {case}: classic is exact with ICMP");
                assert!(
                    f_open <= pmtu && f_open + 28 > pmtu - 8,
                    "case {case}: f {} vs classic {}",
                    f_open,
                    pmtu
                );
            }
            other => panic!("case {case}: classic {other:?}"),
        }
        assert!(
            matches!(
                run_classic(&hops, true, 0x500 + case),
                ClassicOutcome::Blackholed { .. }
            ),
            "case {case}: classic must blackhole without ICMP"
        );
    }
}

/// A destination that answers nothing (probes addressed past the
/// daemon, which ignores them) exhausts its retries on the
/// deterministic doubling schedule — 2 s, 4 s, 8 s — and then clamps
/// to the configured fallback (the eMTU) instead of staying unknown.
#[test]
fn unanswered_probes_back_off_then_clamp_to_emtu_fallback() {
    use std::net::Ipv4Addr;
    let hops = [Hop::new(9000, 100), Hop::new(1500, 100)];
    let dark = Ipv4Addr::new(203, 0, 113, 99); // nobody answers here
    let mut cfg = ProberConfig::new(PROBER_ADDR, dark, hops[0].mtu);
    cfg.fallback_pmtu = 1500;
    let prober = FpmtudProber::new(cfg);
    let (mut net, p, _) = build_path(9, prober, FpmtudDaemon::new(DAEMON_ADDR), &hops, false);
    // Doubling schedule: retries at 2 s and 6 s, final timeout at
    // 14 s. A flat 2 s schedule would give up at 6 s — at 7 s the
    // doubling prober must still be waiting on its third (8 s) timer.
    net.run_until(Nanos::from_secs(7));
    assert!(
        net.node_ref::<FpmtudProber>(p).outcome.is_none(),
        "still backing off at 7 s"
    );
    net.run_until(Nanos::from_secs(15));
    match net
        .node_ref::<FpmtudProber>(p)
        .outcome
        .clone()
        .expect("resolved by 15 s")
    {
        ProbeOutcome::BlackholedToFallback { pmtu, probes_sent } => {
            assert_eq!(pmtu, 1500, "clamped to the static eMTU");
            assert_eq!(probes_sent, 3);
        }
        other => panic!("{other:?}"),
    }
    // Without a fallback the same schedule ends in a plain timeout.
    let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, dark, hops[0].mtu));
    let (mut net, p, _) = build_path(10, prober, FpmtudDaemon::new(DAEMON_ADDR), &hops, false);
    net.run_until(Nanos::from_secs(15));
    assert_eq!(
        net.node_ref::<FpmtudProber>(p).outcome.clone(),
        Some(ProbeOutcome::TimedOut { probes_sent: 3 })
    );
}

/// The "F" in F-PMTUD: discovery completes in about one round trip —
/// a single probe whose elapsed time is on the order of the path RTT,
/// not the many-RTT binary search classic PMTUD performs.
#[test]
fn fpmtud_is_one_round_trip() {
    let hops = [
        Hop::new(9000, 2000),
        Hop::new(1500, 4000),
        Hop::new(1000, 2000),
        Hop::new(1500, 1000),
    ];
    let rtt = Nanos(2 * path_delay(&hops).0);
    match run_fpmtud(&hops, false, 77) {
        ProbeOutcome::Discovered {
            probes_sent,
            elapsed,
            ..
        } => {
            assert_eq!(probes_sent, 1, "no retries on a clean path");
            // One RTT plus serialization/fragmentation overheads; far
            // below even two RTTs.
            assert!(
                elapsed < Nanos(2 * rtt.0),
                "elapsed {elapsed:?} vs rtt {rtt:?}"
            );
        }
        other => panic!("{other:?}"),
    }
}
