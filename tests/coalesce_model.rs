//! Model-based proptests for the ordered-coalescing primitives
//! (`px-core::coalesce`) — the adversarial heart of the merge engine.
//!
//! Two independent formulations are held in lockstep:
//!
//! * [`reference_classify`] re-derives every verdict **byte by byte**
//!   from first principles (walk each segment byte, decide whether its
//!   stream position is below the base, attested, or new), with none of
//!   the offset arithmetic the production `classify` uses. Agreement
//!   over arbitrary held/segment geometries — including sequence-space
//!   wrap — pins the arithmetic.
//! * A stateful run drives a growing aggregate through a segment
//!   stream (legit pattern bytes and attacker-inverted bytes at
//!   arbitrary offsets) and checks the production fold (classify +
//!   append-trimmed-tail) against a naive byte-vector reconstruction:
//!   identical accepted bytes, identical per-verdict counts. No byte
//!   ever enters the aggregate that the reference did not also attest.
//!
//! The stash model checks `SegStash` drain order against a sorted
//! reference: lowest rel first, arrival order on ties (the
//! injection-ordering guarantee the attack matrix relies on), with the
//! total and per-flow caps enforced.

use packet_express::core::coalesce::{classify, OverlapVerdict, SegStash, StashedSeg};
use packet_express::wire::{FlowKey, PacketBuf};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// The byte-level reference: walk every segment byte, classify its
/// stream position, then map the per-byte facts to a verdict.
fn reference_classify(held: &[u8], base: u32, seq: u32, seg: &[u8]) -> OverlapVerdict {
    if seg.is_empty() {
        return OverlapVerdict::Duplicate;
    }
    let held_len = held.len() as i64;
    let rel = i64::from(seq.wrapping_sub(base) as i32);
    if rel > held_len {
        return OverlapVerdict::Future;
    }
    if rel == held_len {
        return OverlapVerdict::Append { trim: 0 };
    }
    let mut any_below = false;
    let mut any_new = false;
    let mut mismatch = false;
    for (i, &b) in seg.iter().enumerate() {
        let p = rel + i as i64;
        if p < 0 {
            any_below = true;
        } else if p < held_len {
            mismatch |= held[p as usize] != b;
        } else {
            any_new = true;
        }
    }
    if any_below && !any_new && !mismatch && rel + seg.len() as i64 <= 0 {
        return OverlapVerdict::Below;
    }
    if mismatch {
        return OverlapVerdict::Inconsistent;
    }
    if any_below {
        return OverlapVerdict::Evasion;
    }
    if any_new {
        return OverlapVerdict::Append {
            trim: (held_len - rel) as usize,
        }
    }
    OverlapVerdict::Duplicate
}

/// The legitimate stream byte at logical position `pos`.
fn pattern(pos: i64) -> u8 {
    let x = (pos as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((x >> 32) ^ x) as u8
}

proptest! {
    /// The production classifier agrees with the byte-level reference
    /// over arbitrary geometry, content, and sequence-space position.
    #[test]
    fn classify_matches_byte_level_reference(
        base in any::<u32>(),
        held_len in 1usize..64,
        rel_u in 0u32..160,
        seg_len in 1usize..64,
        evil_sel in 0usize..65,
    ) {
        let rel = i64::from(rel_u) - 80;
        let evil_at = (evil_sel < 64).then_some(evil_sel);
        let held: Vec<u8> = (0..held_len as i64).map(pattern).collect();
        let seq = base.wrapping_add(rel as u32);
        let mut seg: Vec<u8> = (rel..rel + seg_len as i64).map(pattern).collect();
        if let Some(i) = evil_at {
            // One attacker-controlled byte somewhere in the segment.
            let i = i % seg_len;
            seg[i] = !seg[i];
        }
        let got = classify(&held, base, seq, &seg);
        let want = reference_classify(&held, base, seq, &seg);
        prop_assert_eq!(got, want,
            "held_len {} rel {} seg_len {} evil {:?}", held_len, rel, seg_len, evil_at);
    }

    /// Sequence numbers near the wrap point classify exactly like the
    /// same geometry far from it.
    #[test]
    fn classify_is_wrap_invariant(
        held_len in 1usize..48,
        rel_u in 0u32..120,
        seg_len in 1usize..48,
        wrap_slide in 0u32..96,
    ) {
        let rel = i64::from(rel_u) - 60;
        let held: Vec<u8> = (0..held_len as i64).map(pattern).collect();
        let seg: Vec<u8> = (rel..rel + seg_len as i64).map(pattern).collect();
        let far = 1_000_000u32;
        let near = u32::MAX - wrap_slide; // held range straddles the wrap
        let a = classify(&held, far, far.wrapping_add(rel as u32), &seg);
        let b = classify(&held, near, near.wrapping_add(rel as u32), &seg);
        prop_assert_eq!(a, b);
    }

    /// A growing aggregate folded through the production classifier
    /// matches a naive reconstruction: identical accepted byte vector,
    /// identical verdict counts, and not one attacker byte attested.
    #[test]
    fn aggregate_fold_matches_reference(
        base in any::<u32>(),
        ops in proptest::collection::vec(
            (0u32..96, 1usize..24, any::<bool>()), 1..64),
    ) {
        // Both sides start from the same 8-byte seed segment.
        let mut held: Vec<u8> = (0..8).map(pattern).collect();
        let mut reference: Vec<u8> = held.clone();
        let mut counts = [0u64; 6];
        let idx = |v: &OverlapVerdict| match v {
            OverlapVerdict::Append { .. } => 0,
            OverlapVerdict::Duplicate => 1,
            OverlapVerdict::Inconsistent => 2,
            OverlapVerdict::Evasion => 3,
            OverlapVerdict::Below => 4,
            OverlapVerdict::Future => 5,
        };
        let mut ref_counts = [0u64; 6];
        for (rel, len, evil) in ops {
            let rel = i64::from(rel);
            let seq = base.wrapping_add(rel as u32);
            // An attacker fabricating bytes *beyond* everything attested
            // is undetectable by overlap comparison (nothing to compare
            // against) — the real generator only replays already-sent
            // ranges. Mirror that: evil segments must overlap held data.
            let evil = evil && rel < held.len() as i64;
            let seg: Vec<u8> = (rel..rel + len as i64)
                .map(|p| if evil { !pattern(p) } else { pattern(p) })
                .collect();

            let prev_len = held.len();
            let got = classify(&held, base, seq, &seg);
            counts[idx(&got)] += 1;
            if let OverlapVerdict::Append { trim } = got {
                held.extend_from_slice(&seg[trim..]);
            }
            // Attested bytes are immutable: no verdict may rewrite them.
            prop_assert_eq!(&held[..prev_len], &reference[..prev_len]);

            let want = reference_classify(&reference, base, seq, &seg);
            ref_counts[idx(&want)] += 1;
            if let OverlapVerdict::Append { trim } = want {
                reference.extend_from_slice(&seg[trim..]);
            }

            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(&held, &reference, "accepted byte maps diverged");
        prop_assert_eq!(counts, ref_counts, "verdict counts diverged");
        // The integrity invariant itself: every attested byte is the
        // legitimate pattern byte for its position.
        for (p, &b) in held.iter().enumerate() {
            prop_assert_eq!(b, pattern(p as i64), "attacker byte attested at {}", p);
        }
    }
}

fn flow(i: u16) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, (i & 0xff) as u8),
        40_000 + i,
        Ipv4Addr::new(10, 99, 0, 1),
        5201,
    )
}

fn stashed(f: u16, seq: u32, tag: u8) -> StashedSeg {
    let mut buf = PacketBuf::with_headroom(0);
    buf.extend_from_slice(&[0u8; 40]);
    buf.extend_from_slice(&[tag]);
    StashedSeg {
        key: flow(f),
        seq,
        psh: false,
        ip_hlen: 20,
        tcp_hlen: 20,
        payload_sum: 0,
        buf,
    }
}

const STASH_CAP: usize = 8;
const STASH_PER_FLOW: usize = 3;

proptest! {
    /// `SegStash` drains exactly like a reference sorted by
    /// `(rel, arrival order)`, per flow, under arbitrary interleavings
    /// of inserts and drains — and never exceeds its caps.
    #[test]
    fn stash_drains_like_a_sorted_reference(
        ops in proptest::collection::vec(
            (0u8..4, 0u16..3, 0u32..16), 1..64),
    ) {
        let mut st = SegStash::new(STASH_CAP, STASH_PER_FLOW);
        // Reference: per entry (flow, seq, stamp, tag), kept unsorted;
        // drains pick min by (rel, stamp).
        let mut model: Vec<(u16, u32, u64, u8)> = Vec::new();
        let mut stamp = 0u64;
        let mut tag = 0u8;
        let base = 0u32;
        for (sel, f, seq) in ops {
            match sel {
                0 | 1 => {
                    tag = tag.wrapping_add(1);
                    let accepted = st.insert(stashed(f, seq, tag)).is_ok();
                    let total = model.len();
                    let per = model.iter().filter(|e| e.0 == f).count();
                    let model_accepts = total < STASH_CAP && per < STASH_PER_FLOW;
                    prop_assert_eq!(accepted, model_accepts);
                    if accepted {
                        model.push((f, seq, stamp, tag));
                        stamp += 1;
                    }
                }
                2 => {
                    // take_min == take everything in (rel, stamp) order.
                    let got = st.take_min(&flow(f), base);
                    let want = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.0 == f)
                        .min_by_key(|(_, e)| (i64::from(e.1.wrapping_sub(base) as i32), e.2))
                        .map(|(i, _)| i);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(i)) => {
                            let e = model.remove(i);
                            prop_assert_eq!(g.seq, e.1);
                            prop_assert_eq!(g.payload(), &[e.3][..], "tie broken out of arrival order");
                        }
                        (g, w) => prop_assert!(false, "drain mismatch: {:?} vs {:?}", g.map(|s| s.seq), w),
                    }
                }
                _ => {
                    // take_actionable with the edge at `seq`.
                    let edge = base.wrapping_add(seq);
                    let got = st.take_actionable(&flow(f), base, edge);
                    let lim = i64::from(edge.wrapping_sub(base) as i32);
                    let want = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| {
                            e.0 == f && i64::from(e.1.wrapping_sub(base) as i32) <= lim
                        })
                        .min_by_key(|(_, e)| (i64::from(e.1.wrapping_sub(base) as i32), e.2))
                        .map(|(i, _)| i);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(i)) => {
                            let e = model.remove(i);
                            prop_assert_eq!(g.seq, e.1);
                            prop_assert_eq!(g.payload(), &[e.3][..]);
                        }
                        (g, w) => prop_assert!(false, "actionable mismatch: {:?} vs {:?}", g.map(|s| s.seq), w),
                    }
                }
            }
            prop_assert!(st.len() <= STASH_CAP);
            prop_assert_eq!(st.len(), model.len());
        }
    }
}
