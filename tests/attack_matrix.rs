//! The attack matrix — the adversarial-robustness contract of the PXGW
//! datapath, proven over seeded attack schedules (DESIGN.md §17).
//!
//! Where `chaos_matrix` models an *unreliable* network, this matrix
//! models a *hostile* one: an on-path injector replaying TCP ranges
//! with altered bytes, overlapping-segment smuggling, malformed caravan
//! bundles with over- and under-claiming length fields, and an off-path
//! spoofer forging F-PMTUD shrink reports. Every attack schedule is a
//! pure function of its seed ([`px_faults::attack`]), so each one
//! replays bit-identically at 1, 2, 4, and 8 cores. Per seed × core
//! count the gates are:
//!
//! * **zero panics, zero leaked pool buffers** — the dev-profile drain
//!   asserts fire on any engine that forgets a buffer mid-attack;
//! * **zero injected bytes** — the first-writer-wins per-flow byte map
//!   of the emitted stream (what a correct TCP receiver reassembles:
//!   below-window data never overwrites delivered bytes) must equal the
//!   attacker-free oracle exactly. Attacker bytes may never surface
//!   inside an attested aggregate, and may never be the first write at
//!   any stream position;
//! * **typed accounting** — injections surface as
//!   `dropped_inconsistent_overlap`, never as silent stream damage;
//! * **digest parity** — the byte-map fingerprint is identical across
//!   all core counts.
//!
//! Seed count: `ATTACK_SEEDS` (default 10 in-tree; CI runs 200).

use packet_express::core::engine::{
    run_engine_on_trace, EngineConfig, EngineMode, EngineReport,
};
use packet_express::core::caravan_gw::{CaravanConfig, CaravanEngine};
use packet_express::core::pipeline::{PipelineConfig, SystemVariant, WorkloadKind};
use packet_express::faults::attack::{
    self, SpoofReport, TcpAttackTrace, SEG_PAYLOAD,
};
use packet_express::pmtud::{GuardConfig, PmtudGuard, ReportVerdict};
use packet_express::wire::ipv4::{Ipv4Packet, Ipv4Repr, CARAVAN_TOS};
use packet_express::wire::tcp::TcpSegment;
use packet_express::wire::pool::PacketSink;
use packet_express::wire::{FlowKey, IpProtocol, PacketBuf, UdpRepr};
use std::collections::BTreeMap;

/// A sink that copies each emission and hands the buffer back for
/// recycling, so `pool_outstanding()` measures true leaks rather than
/// buffers the sink consumed.
struct RecycleSink(Vec<Vec<u8>>);

impl PacketSink for RecycleSink {
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
        self.0.push(buf.as_slice().to_vec());
        Some(buf)
    }
}

const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const FLOWS: usize = 6;
const SEGS_PER_FLOW: usize = 12;

fn seed_count() -> u64 {
    std::env::var("ATTACK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

fn attacked_run(trace: Vec<(FlowKey, Vec<u8>)>, cores: usize, seed: u64) -> EngineReport {
    let mut pipe = PipelineConfig::fig5(SystemVariant::Px, WorkloadKind::Tcp, cores);
    pipe.seed = 0xA77A_C4ED ^ seed;
    pipe.n_flows = FLOWS;
    let mut cfg = EngineConfig::new(pipe, EngineMode::Deterministic);
    cfg.capture_output = true;
    run_engine_on_trace(cfg, trace)
}

/// First-writer-wins per-flow sequence-space byte maps of the emitted
/// stream — the receiver's view. A flow lives on exactly one core and
/// capture preserves per-core emission order, so "first" is
/// well-defined; a below-window retransmission (which a receiver
/// discards) cannot overwrite bytes delivered before it.
fn receiver_maps(report: &EngineReport) -> BTreeMap<(u16, u16), BTreeMap<u32, u8>> {
    let mut maps: BTreeMap<(u16, u16), BTreeMap<u32, u8>> = BTreeMap::new();
    for pkt in &report.captured_output {
        let Ok(ip) = Ipv4Packet::new_checked(&pkt[..]) else {
            panic!("unparsable emitted packet");
        };
        assert_eq!(ip.protocol(), IpProtocol::Tcp, "TCP-only trace");
        let seg = TcpSegment::new_checked(ip.payload()).expect("emitted TCP parses");
        assert!(
            seg.verify_checksum(ip.src(), ip.dst()),
            "emitted packet has a bad TCP checksum"
        );
        let seq = seg.seq().0;
        let payload = seg.payload();
        let map = maps.entry((seg.src_port(), seg.dst_port())).or_default();
        for (i, &b) in payload.iter().enumerate() {
            map.entry(seq.wrapping_add(i as u32)).or_insert(b);
        }
    }
    maps
}

/// The attacker-free oracle: every flow's full pattern, keyed like
/// [`receiver_maps`].
fn oracle_maps(trace: &TcpAttackTrace, seed: u64) -> BTreeMap<(u16, u16), BTreeMap<u32, u8>> {
    let mut maps = BTreeMap::new();
    for f in 0..FLOWS {
        let key = trace.flow_key(seed, f);
        let isn = trace.flow_isn(seed, f);
        let mut map = BTreeMap::new();
        for off in 0..(trace.segs_per_flow * SEG_PAYLOAD) as u64 {
            map.insert(isn.wrapping_add(off as u32), trace.oracle_byte(seed, f, off));
        }
        maps.insert((key.src_port, key.dst_port), map);
    }
    maps
}

/// FNV-1a over the canonical map iteration — the cross-core digest.
fn fingerprint(maps: &BTreeMap<(u16, u16), BTreeMap<u32, u8>>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for ((sp, dp), map) in maps {
        eat(&sp.to_be_bytes());
        eat(&dp.to_be_bytes());
        for (&seq, &b) in map {
            eat(&seq.to_be_bytes());
            eat(&[b]);
        }
    }
    h
}

/// The TCP leg: injection replays, overlap stabs, duplicates, and
/// reordering against the merge engine, across seeds and core counts.
#[test]
fn tcp_injection_never_reaches_the_receiver() {
    let seeds = seed_count();
    let mut inconsistent_drops = 0u64;
    let mut dup_attacks = 0u64;
    for seed in 0..seeds {
        let trace = attack::tcp_attack_trace(seed, FLOWS, SEGS_PER_FLOW);
        assert!(trace.attack_pkts > 0, "seed {seed}: generator sent no attacks");
        dup_attacks += trace.benign_dups;
        let oracle = oracle_maps(&trace, seed);
        let oracle_print = fingerprint(&oracle);
        for cores in CORE_COUNTS {
            let r = attacked_run(trace.pkts.clone(), cores, seed);
            let got = receiver_maps(&r);
            assert_eq!(
                fingerprint(&got),
                oracle_print,
                "seed {seed} cores {cores}: receiver stream diverged from the \
                 attacker-free oracle (attacks {}, drops {})",
                trace.attack_pkts,
                r.totals.dropped_inconsistent_overlap
            );
            assert_eq!(got, oracle, "seed {seed} cores {cores}: map mismatch");
            assert_eq!(
                r.totals.backpressure_drops, 0,
                "seed {seed} cores {cores}: attack forced packet loss"
            );
            inconsistent_drops += r.totals.dropped_inconsistent_overlap;
        }
    }
    // The matrix must exercise the machinery it certifies.
    assert!(
        inconsistent_drops > 0,
        "no injection was ever detected as an inconsistent overlap"
    );
    assert!(dup_attacks > 0, "no duplicate replays generated");
}

/// A clean (attack-free) reordered trace must still merge — and match
/// the same oracle — pinning that hardening did not cost correctness.
#[test]
fn clean_trace_still_matches_oracle_at_every_core_count() {
    let trace = attack::tcp_clean_trace(99, FLOWS, SEGS_PER_FLOW);
    let attack_view = attack::tcp_attack_trace(99, FLOWS, SEGS_PER_FLOW);
    let oracle = oracle_maps(&attack_view, 99);
    for cores in CORE_COUNTS {
        let r = attacked_run(trace.clone(), cores, 99);
        assert_eq!(receiver_maps(&r), oracle, "{cores} cores");
        assert_eq!(r.totals.dropped_inconsistent_overlap, 0);
        assert_eq!(r.totals.dropped_overlap_evasion, 0);
    }
}

/// The caravan leg: seeded malformed/over-claiming/truncated bundles
/// against the outbound unpacker. Valid bundles unbundle to exactly
/// their inner datagrams; invalid ones drop whole as typed malformed
/// counts; nothing panics and nothing leaks.
#[test]
fn caravan_unpacker_survives_malformed_bundles() {
    use std::net::Ipv4Addr;
    let src = Ipv4Addr::new(10, 99, 0, 1);
    let dst = Ipv4Addr::new(198, 51, 0, 7);
    for seed in 0..seed_count() {
        let bundles = attack::caravan_attack_bundles(seed, 200);
        let mut eng = CaravanEngine::new(CaravanConfig::default());
        let mut valid_inner = 0u64;
        let mut invalid = 0u64;
        for b in &bundles {
            let dg = UdpRepr {
                src_port: 9099,
                dst_port: 9099,
            }
            .build_datagram(src, dst, &b.bytes)
            .expect("bundle fits outer UDP");
            let mut ip = Ipv4Repr::new(src, dst, IpProtocol::Udp, dg.len());
            ip.tos = CARAVAN_TOS;
            let pkt = ip.build_packet(&dg).expect("bundle fits IP");
            let mut sink = RecycleSink(Vec::new());
            eng.push_outbound_into(&pkt, &mut sink);
            if b.valid {
                assert_eq!(
                    sink.0.len(),
                    b.inner_count,
                    "seed {seed}: valid bundle mis-unbundled"
                );
                valid_inner += b.inner_count as u64;
            } else {
                assert!(
                    sink.0.is_empty(),
                    "seed {seed}: malformed bundle leaked datagrams"
                );
                invalid += 1;
            }
        }
        assert_eq!(eng.stats.dropped_malformed, invalid);
        assert_eq!(eng.stats.inner_out, valid_inner);
        assert_eq!(eng.pool_outstanding(), 0, "seed {seed}: pool leak");
        assert!(valid_inner > 0 && invalid > 0, "seed {seed}: degenerate mix");
    }
}

/// The F-PMTUD leg: off-path spoof streams against the guard. The
/// estimate never dips below the floor, never moves on a forged
/// report, and recovers after a suspected spoof episode.
#[test]
fn pmtud_guard_holds_the_floor_under_spoof_streams() {
    for seed in 0..seed_count() {
        let mut g = PmtudGuard::new(GuardConfig::new(9000, 0x9A4D ^ seed));
        // Establish a genuine estimate first.
        let (id, nonce) = g.next_probe();
        assert!(matches!(
            g.on_report(id, nonce, &[9000]),
            ReportVerdict::Accepted { pmtu: 9000 }
        ));
        // Keep a window of outstanding probes for the attacker to aim at.
        let live: Vec<(u32, u64)> = (0..4).map(|_| g.next_probe()).collect();
        let spoofs: Vec<SpoofReport> = attack::spoof_report_stream(seed, 500, 8);
        for s in &spoofs {
            g.on_report(s.probe_id, s.nonce, &s.sizes);
            assert!(g.pmtu() >= 576, "seed {seed}: floor breached");
        }
        assert_eq!(g.pmtu(), 9000, "seed {seed}: a forged report moved the estimate");
        assert_eq!(g.stats.spoof_rejected, 500, "seed {seed}: spoof not counted");
        // Genuine reports still work after the storm.
        let (id, nonce) = live[0];
        assert!(matches!(
            g.on_report(id, nonce, &[9000]),
            ReportVerdict::Accepted { pmtu: 9000 }
        ));
    }
}
