//! Cross-crate PMTUD tests: the three discovery mechanisms against
//! randomized topologies, blackholes, probe loss, and PXGWs on the path.

use packet_express::pmtud::classic::{ClassicConfig, ClassicOutcome, ClassicProber};
use packet_express::pmtud::fpmtud::{FpmtudDaemon, FpmtudProber, ProbeOutcome, ProberConfig};
use packet_express::pmtud::plpmtud::{PlpmtudConfig, PlpmtudProber};
use packet_express::pmtud::topology::{build_path, true_pmtu, Hop, DAEMON_ADDR, PROBER_ADDR};
use packet_express::sim::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn fpmtud_on(hops: &[Hop], blackhole: bool, seed: u64) -> ProbeOutcome {
    let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, DAEMON_ADDR, hops[0].mtu));
    let daemon = FpmtudDaemon::new(DAEMON_ADDR);
    let (mut net, p, _) = build_path(seed, prober, daemon, hops, blackhole);
    net.run_until(Nanos::from_secs(20));
    net.node_ref::<FpmtudProber>(p)
        .outcome
        .clone()
        .expect("finished")
}

/// Randomized topologies: F-PMTUD always finds the narrowest hop within
/// fragment-rounding, blackholes or not.
#[test]
fn fpmtud_matches_ground_truth_on_random_paths() {
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let mtus = [576usize, 1000, 1280, 1500, 2000, 4000, 9000];
    for case in 0..25 {
        let n_hops = rng.gen_range(2..=6);
        let mut hops: Vec<Hop> = (0..n_hops)
            .map(|_| Hop::new(mtus[rng.gen_range(0..mtus.len())], rng.gen_range(10..5000)))
            .collect();
        // The access hop must be the probe size; make it the largest so
        // fragmentation actually exercises.
        hops[0] = Hop::new(9000, 100);
        let blackhole = rng.gen_bool(0.5);
        let truth = true_pmtu(&hops);
        match fpmtud_on(&hops, blackhole, 1000 + case) {
            ProbeOutcome::Discovered { pmtu, .. } => {
                assert!(
                    pmtu <= truth && pmtu + 28 > truth - 8,
                    "case {case}: pmtu {pmtu} vs truth {truth} (hops {:?})",
                    hops.iter().map(|h| h.mtu).collect::<Vec<_>>()
                );
            }
            other => panic!("case {case}: {other:?}"),
        }
    }
}

/// All three mechanisms agree where ICMP works; only F-PMTUD and
/// PLPMTUD survive a blackhole; F-PMTUD is the fastest.
#[test]
fn three_mechanisms_compared_on_one_path() {
    let hops = [
        Hop::new(9000, 100),
        Hop::new(2000, 3000),
        Hop::new(1500, 3000),
        Hop::new(1500, 100),
    ];
    // F-PMTUD.
    let f = match fpmtud_on(&hops, false, 42) {
        ProbeOutcome::Discovered { pmtu, elapsed, .. } => (pmtu, elapsed),
        other => panic!("{other:?}"),
    };
    // Classic.
    let prober = ClassicProber::new(ClassicConfig {
        addr: PROBER_ADDR,
        dst: DAEMON_ADDR,
        initial_mtu: 9000,
        timeout: Nanos::from_millis(500),
        max_tries_per_size: 2,
    });
    let (mut net, p, _) = build_path(43, prober, FpmtudDaemon::new(DAEMON_ADDR), &hops, false);
    net.run_until(Nanos::from_secs(30));
    let classic = match net.node_ref::<ClassicProber>(p).outcome.clone().unwrap() {
        ClassicOutcome::Discovered { pmtu, elapsed, .. } => (pmtu, elapsed),
        other => panic!("{other:?}"),
    };
    // PLPMTUD.
    let prober = PlpmtudProber::new(PlpmtudConfig::scamper(PROBER_ADDR, DAEMON_ADDR, 9000));
    let (mut net, p, _) = build_path(44, prober, FpmtudDaemon::new(DAEMON_ADDR), &hops, false);
    net.run_until(Nanos::from_secs(300));
    let pl = net.node_ref::<PlpmtudProber>(p).outcome.clone().unwrap();

    // Agreement (within discovery resolution).
    let truth = true_pmtu(&hops);
    assert_eq!(classic.0, truth, "classic is exact with ICMP");
    assert!(f.0 <= truth && f.0 + 28 > truth - 8);
    assert!(pl.pmtu <= truth && pl.pmtu + 28 > truth);
    // Ordering: F-PMTUD fastest, PLPMTUD slowest.
    assert!(f.1 < classic.1, "f {} vs classic {}", f.1, classic.1);
    assert!(
        classic.1 < pl.elapsed,
        "classic {} vs pl {}",
        classic.1,
        pl.elapsed
    );
}

/// With a blackhole, classic fails, F-PMTUD is unaffected.
#[test]
fn blackhole_breaks_only_classic() {
    let hops = [
        Hop::new(9000, 100),
        Hop::new(1400, 500),
        Hop::new(1500, 100),
    ];
    match fpmtud_on(&hops, true, 9) {
        ProbeOutcome::Discovered { pmtu, .. } => assert!(pmtu <= 1400 && pmtu > 1300),
        other => panic!("{other:?}"),
    }
    let prober = ClassicProber::new(ClassicConfig {
        addr: PROBER_ADDR,
        dst: DAEMON_ADDR,
        initial_mtu: 9000,
        timeout: Nanos::from_millis(300),
        max_tries_per_size: 2,
    });
    let (mut net, p, _) = build_path(10, prober, FpmtudDaemon::new(DAEMON_ADDR), &hops, true);
    net.run_until(Nanos::from_secs(30));
    assert!(matches!(
        net.node_ref::<ClassicProber>(p).outcome,
        Some(ClassicOutcome::Blackholed { .. })
    ));
}

/// F-PMTUD probes traverse a PXGW b-network border unmerged and still
/// measure the *end-to-end* PMTU correctly (§4.2: "Any PXGW along the
/// path simply forwards the probe packet").
#[test]
fn fpmtud_works_through_a_pxgw() {
    use packet_express::core::gateway::{GatewayConfig, PxGateway, EXTERNAL_PORT, INTERNAL_PORT};
    use packet_express::sim::link::LinkConfig;
    use packet_express::sim::network::Network;
    use packet_express::sim::node::PortId;

    // prober(9000) — gw — daemon(9000-capable b-network): the probe goes
    // *into* the b-network over a 1500 link, so PMTU = 1500.
    let mut net = Network::new(77);
    let prober = net.add_node(FpmtudProber::new(ProberConfig::new(
        PROBER_ADDR,
        DAEMON_ADDR,
        9000,
    )));
    let gw = net.add_node(PxGateway::new(GatewayConfig {
        steer: None,
        ..Default::default()
    }));
    let daemon = net.add_node(FpmtudDaemon::new(DAEMON_ADDR));
    // External side is the legacy 1500 network; prober's own link can
    // carry 9000 so the probe leaves whole and a router would have to
    // fragment. Here the *gateway's external link* is the 1500 hop, so
    // the probe must be fragmented by the prober-side router... to keep
    // the topology minimal we attach the prober directly and let the
    // oversize probe be the gateway's problem: PXGW must not merge or
    // drop it.
    net.connect(
        (prober, PortId(0)),
        (gw, EXTERNAL_PORT),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(100), 9000),
    );
    net.connect(
        (gw, INTERNAL_PORT),
        (daemon, PortId(0)),
        LinkConfig::new(10_000_000_000, Nanos::from_micros(100), 9000),
    );
    net.run_until(Nanos::from_secs(5));
    match net
        .node_ref::<FpmtudProber>(prober)
        .outcome
        .clone()
        .expect("finished")
    {
        ProbeOutcome::Discovered {
            pmtu, probes_sent, ..
        } => {
            assert_eq!(pmtu, 9000, "whole path supports jumbo");
            assert_eq!(probes_sent, 1);
        }
        other => panic!("{other:?}"),
    }
    let g = net.node_ref::<PxGateway>(gw);
    assert_eq!(g.caravan.stats.caravans_out, 0, "probe was not bundled");
}

/// Host-level RFC 1191: a sender behind a narrow hop receives ICMP
/// fragmentation-needed, clamps its MSS, and completes — unless the
/// router blackholes ICMP, in which case it stalls forever (the paper's
/// §3 motivation, reproduced at the host).
#[test]
fn host_reacts_to_icmp_frag_needed() {
    use packet_express::sim::link::LinkConfig;
    use packet_express::sim::network::Network;
    use packet_express::sim::node::PortId;
    use packet_express::sim::router::Router;
    use packet_express::tcp::conn::ConnConfig;
    use packet_express::tcp::host::{Host, HostConfig};
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 99, 1);

    let run = |blackhole: bool| {
        let mut net = Network::new(61);
        let a = net.add_node(Host::new(HostConfig::new(A, 1500)));
        let mut r = Router::new(Ipv4Addr::new(10, 0, 50, 1), vec![1500, 1400]);
        r.add_route(Ipv4Addr::new(10, 0, 0, 0), 24, PortId(0));
        r.add_route(Ipv4Addr::new(10, 0, 50, 0), 24, PortId(0));
        r.add_route(Ipv4Addr::new(10, 0, 99, 0), 24, PortId(1));
        r.icmp_blackhole = blackhole;
        let rt = net.add_node(r);
        let b = net.add_node(Host::new(HostConfig::new(B, 1500)));
        net.connect(
            (a, PortId(0)),
            (rt, PortId(0)),
            LinkConfig::new(1_000_000_000, Nanos::from_micros(100), 1500),
        );
        net.connect(
            (rt, PortId(1)),
            (b, PortId(0)),
            LinkConfig::new(1_000_000_000, Nanos::from_micros(100), 1500),
        );
        let total = 200_000u64;
        net.node_mut::<Host>(b)
            .listen(80, ConnConfig::new((B, 80), (A, 0), 1500));
        net.node_mut::<Host>(a).connect_at(
            0,
            ConnConfig::new((A, 40000), (B, 80), 1500).sending(total),
            Some(Nanos::from_secs(25).0),
        );
        net.run_until(Nanos::from_secs(30));
        let st = net.node_ref::<Host>(b).tcp_stats()[0];
        (st.bytes_received, st.integrity_errors, total)
    };

    let (with_icmp, errs, total) = run(false);
    assert_eq!(with_icmp, total, "RFC 1191 clamp lets the transfer finish");
    assert_eq!(errs, 0);

    let (blackholed, _, total) = run(true);
    assert!(
        blackholed < total,
        "ICMP blackhole must strand the DF sender ({blackholed}/{total})"
    );
}
