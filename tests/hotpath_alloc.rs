//! The paper's §3 scalability argument made checkable: after warm-up,
//! the PXGW hot loop (merge, split, caravan) must run **allocation-free**
//! — every output buffer cycles engine pool → sink → engine pool without
//! touching the global allocator, and the flow table / expiry heap reuse
//! their preallocated storage.
//!
//! A counting `#[global_allocator]` wraps `System` and tallies every
//! `alloc`/`realloc` **made by the engine thread**. All inputs are
//! prebuilt; the measured region then drives the engines through their
//! sink APIs with a recycling sink and asserts the allocation counter
//! does not move.
//!
//! Everything lives in ONE `#[test]` so no concurrent test thread can
//! perturb the counter, and the counter is thread-filtered because the
//! claim is about the hot loop: the test harness's own service threads
//! occasionally allocate at unpredictable times, and those events say
//! nothing about whether merge/split/caravan touch the allocator.

use packet_express::core::caravan_gw::{CaravanConfig, CaravanEngine};
use packet_express::core::merge::{MergeConfig, MergeEngine};
use packet_express::core::split::SplitEngine;
use packet_express::obs::ObsConfig;
use packet_express::wire::batchparse::{self, ParsedMeta, Verdict};
use packet_express::wire::ipv4::Ipv4Repr;
use packet_express::wire::pool::{PacketSink, SgPacket};
use packet_express::wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use packet_express::wire::{IpProtocol, PacketBuf, UdpRepr};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static TRACE: [AtomicU64; 8] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

std::thread_local! {
    /// `true` only on the thread driving the engines. Const-initialised
    /// `Cell<bool>` has no destructor, so reading it inside the global
    /// allocator cannot itself allocate (no lazy TLS registration).
    static ENGINE_THREAD: Cell<bool> = const { Cell::new(false) };
}

fn count(layout_size: usize) {
    if ENGINE_THREAD.with(Cell::get) {
        let n = ALLOCS.fetch_add(1, Ordering::Relaxed);
        TRACE[(n % 8) as usize].store(layout_size as u64, Ordering::Relaxed);
    }
}

// SAFETY: pure pass-through to `System`; the only extra work is a
// relaxed atomic increment behind a const-init TLS flag, neither of
// which can violate any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    // SAFETY: `ptr` was produced by `System.alloc` above with the same
    // layout, so handing it back to `System.dealloc` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same provenance argument as `dealloc`; `System.realloc`
    // upholds the GlobalAlloc contract for the returned pointer.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[track_caller]
fn assert_region_clean(before: u64, what: &str) {
    let n = allocs() - before;
    assert_eq!(
        n,
        0,
        "{what} steady state must not touch the allocator; last sizes {:?}",
        TRACE
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect::<Vec<_>>()
    );
}

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn tcp_pkt(port: u16, seq: u32, len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..len).map(|j| ((j * 13 + 7) % 251) as u8).collect();
    let repr = TcpRepr {
        src_port: port,
        dst_port: 80,
        seq: SeqNum(seq),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 2048,
        options: vec![],
    };
    let seg = repr.build_segment(SRC, DST, &payload);
    Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
        .build_packet(&seg)
        .unwrap()
}

fn udp_pkt(port: u16, ident: u16, len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..len).map(|j| ((j * 29 + 3) % 251) as u8).collect();
    let dg = UdpRepr {
        src_port: port,
        dst_port: 4433,
    }
    .build_datagram(SRC, DST, &payload)
    .unwrap();
    let mut ip = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, dg.len());
    ip.ident = ident;
    ip.build_packet(&dg).unwrap()
}

/// A sink that recycles every buffer back to the emitting engine's pool
/// (returns `Some`), summing lengths so the work is not optimised away.
fn recycler(total: &mut u64) -> impl FnMut(PacketBuf) -> Option<PacketBuf> + '_ {
    move |buf| {
        *total += buf.len() as u64;
        Some(buf)
    }
}

/// A sink that consumes scatter-gather views **without materialising**:
/// header and payload segments are tallied in place, the pooled header
/// goes straight back for recycling, and the payload bytes are never
/// copied. This is the zero-copy consumer shape the split engine's SG
/// emission path exists for.
struct SgTally {
    total: u64,
    views: u64,
}

impl PacketSink for SgTally {
    fn accept(&mut self, buf: PacketBuf) -> Option<PacketBuf> {
        self.total += buf.len() as u64;
        Some(buf)
    }

    fn push_sg(&mut self, mut pkt: SgPacket<'_>) -> Option<PacketBuf> {
        self.views += 1;
        self.total += pkt.total_len() as u64;
        Some(pkt.take_header())
    }
}

#[test]
fn steady_state_hot_loops_do_not_allocate() {
    ENGINE_THREAD.with(|c| c.set(true));
    const WARMUP: usize = 8;
    const MEASURED: usize = 24;
    let mut sunk = 0u64;

    // The flight recorder is armed on every engine — including tier 2:
    // the default config preallocates the event ring, the span-tracer
    // ring, and the continuous profiler at enable time, so recording
    // events, spans, AND profile updates must add ZERO allocations to
    // the measured regions below.
    let obs = ObsConfig::default();
    assert!(obs.span_capacity > 0 && obs.profile_topk > 0);

    // ---- merge: contiguous 6-segment rounds on two flows, aggregates
    // emitted by the reached-iMTU check (flush_full path).
    let mut merge = MergeEngine::new(MergeConfig {
        imtu: 9000,
        emtu: 1500,
        hold_ns: 50_000,
        table_capacity: 64,
    });
    merge.enable_obs(obs);
    let rounds: Vec<Vec<Vec<u8>>> = (0..WARMUP + MEASURED)
        .map(|r| {
            (0..6u32)
                .flat_map(|i| {
                    let seq = (r as u32) * 6 * 1460 + i * 1460;
                    [tcp_pkt(5000, seq, 1460), tcp_pkt(5001, seq, 1460)]
                })
                .collect()
        })
        .collect();
    let mut now = 0u64;
    let mut run_merge = |rounds: &[Vec<Vec<u8>>], sunk: &mut u64| {
        for round in rounds {
            for pkt in round {
                let mut sink = recycler(sunk);
                merge.poll_into(now, &mut sink);
                merge.push_into(now, pkt, &mut sink);
                now += 10_000;
            }
        }
    };
    run_merge(&rounds[..WARMUP], &mut sunk);
    let before = allocs();
    run_merge(&rounds[WARMUP..], &mut sunk);
    assert_region_clean(before, "merge");
    // Held aggregates are not leaks; after a full drain with a recycling
    // sink every pool buffer must be back.
    {
        let mut sink = recycler(&mut sunk);
        merge.flush_all_into(&mut sink);
    }
    assert_eq!(merge.pool_outstanding(), 0, "merge pool leak");

    // ---- split: one jumbo in, six wire segments out, every round.
    let mut split = SplitEngine::new(1500);
    split.enable_obs(obs);
    let jumbo = tcp_pkt(6000, 1, 8760);
    let mut run_split = |n: usize, sunk: &mut u64| {
        for _ in 0..n {
            let mut sink = recycler(sunk);
            split.push_into(&jumbo, &mut sink);
        }
    };
    run_split(WARMUP, &mut sunk);
    let before = allocs();
    run_split(MEASURED, &mut sunk);
    assert_region_clean(before, "split");

    // ---- split, scatter-gather consumer: same jumbo, but the sink
    // takes the views as views — no materialising copy anywhere. The
    // region must be alloc-free AND every emission must arrive via
    // `push_sg`.
    let mut sg_sink = SgTally { total: 0, views: 0 };
    let mut run_split_sg = |n: usize, sink: &mut SgTally| {
        for _ in 0..n {
            split.push_into(&jumbo, sink);
        }
    };
    run_split_sg(WARMUP, &mut sg_sink);
    let before = allocs();
    let views_before = sg_sink.views;
    run_split_sg(MEASURED, &mut sg_sink);
    assert_region_clean(before, "SG split");
    assert_eq!(
        sg_sink.views - views_before,
        (MEASURED as u64) * 6,
        "every wire segment must be delivered as a scatter-gather view"
    );

    // ---- batch parse: the batch-front classifier reuses one scratch
    // array. After the first sizing pass, classifying a full 32-packet
    // batch (checksums verified, flow keys extracted) allocates nothing.
    let batch: Vec<Vec<u8>> = (0..batchparse::BATCH_PKTS)
        .map(|i| tcp_pkt(6100, (i as u32) * 1460, 1460))
        .collect();
    let mut scratch: Vec<ParsedMeta> = Vec::new();
    batchparse::parse_batch_with(&batch, |p| p.as_slice(), &mut scratch); // sizes the scratch
    let before = allocs();
    let mut mergeable = 0u64;
    for _ in 0..MEASURED {
        batchparse::parse_batch_with(&batch, |p| p.as_slice(), &mut scratch);
        mergeable += scratch
            .iter()
            .filter(|m| matches!(m.verdict, Verdict::Mergeable(_)))
            .count() as u64;
    }
    assert_region_clean(before, "batch parse");
    assert_eq!(
        mergeable,
        (MEASURED * batchparse::BATCH_PKTS) as u64,
        "every prebuilt data segment must classify as mergeable"
    );

    // ---- caravan: rounds of 8 same-flow datagrams with consecutive
    // IP-IDs; bundles emit when the budget fills.
    let mut caravan = CaravanEngine::new(CaravanConfig {
        imtu: 9000,
        hold_ns: 50_000,
        table_capacity: 64,
        require_consecutive_ip_id: true,
        probe_port: 9999,
    });
    caravan.enable_obs(obs);
    let dgrams: Vec<Vec<u8>> = (0..(WARMUP + MEASURED) * 8)
        .map(|i| udp_pkt(7000, i as u16, 1100))
        .collect();
    let mut cnow = 0u64;
    let mut run_caravan = |pkts: &[Vec<u8>], sunk: &mut u64| {
        for pkt in pkts {
            let mut sink = recycler(sunk);
            caravan.poll_into(cnow, &mut sink);
            caravan.push_inbound_into(cnow, pkt, &mut sink);
            cnow += 10_000;
        }
    };
    run_caravan(&dgrams[..WARMUP * 8], &mut sunk);
    let before = allocs();
    run_caravan(&dgrams[WARMUP * 8..], &mut sunk);
    assert_region_clean(before, "caravan");

    assert!(sunk > 0, "sinks must have seen real output");

    // Recording genuinely happened during the alloc-free regions —
    // the zero-allocation assertions above covered live recorders, not
    // disabled no-ops.
    assert!(merge.obs.events_recorded() > 0, "merge recorder was idle");
    assert!(split.obs.events_recorded() > 0, "split recorder was idle");
    assert!(
        caravan.obs.events_recorded() > 0,
        "caravan recorder was idle"
    );

    // Tier 2 was live in the same regions: lifecycle spans were traced
    // while the allocation counter stayed at zero, so the 0-allocs-per-
    // packet invariant covers span tracing and profiling too.
    assert!(merge.obs.spans_recorded() > 0, "merge span tracer was idle");
    assert!(split.obs.spans_recorded() > 0, "split span tracer was idle");
    assert!(
        caravan.obs.spans_recorded() > 0,
        "caravan span tracer was idle"
    );
}
