//! # PacketExpress
//!
//! A reproduction of *"Towards Incremental MTU Upgrade for the Internet"*
//! (HotNets '25): the PXGW MTU-translating gateway, the PX-caravan UDP
//! tunnelling format, and F-PMTUD — a one-RTT, ICMP-free path-MTU
//! discovery — together with the full simulation substrate used to
//! reproduce the paper's evaluation.
//!
//! This crate is a facade: it re-exports every workspace crate under one
//! name so downstream users can depend on `packet-express` alone.
//!
//! ```
//! use packet_express::wire::{FlowKey, JUMBO_MTU, LEGACY_MTU};
//! assert_eq!(LEGACY_MTU, 1500);
//! assert_eq!(JUMBO_MTU, 9000);
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end tour: a client in a
//! legacy 1500 B network talking to a server in a 9 KB b-network through
//! a PXGW that merges, splits, and rewrites MSS on the fly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Wire formats: Ethernet, IPv4 (+fragmentation), TCP, UDP, ICMPv4,
/// GTP-U, PX-caravan. Re-export of [`px_wire`].
pub use px_wire as wire;

/// The deterministic discrete-event network simulator. Re-export of
/// [`px_sim`].
pub use px_sim as sim;

/// Observability: flight recorder, log₂ latency/size histograms, and
/// Prometheus/JSON metrics export. Re-export of [`px_obs`].
pub use px_obs as obs;

/// Host protocol stacks (TCP with congestion control, UDP, UDP_GRO,
/// caravan hosts). Re-export of [`px_tcp`].
pub use px_tcp as tcp;

/// The paper's core contribution: the PXGW gateway and the iMTU
/// advertisement protocol. Re-export of [`px_core`].
pub use px_core as core;

/// Path-MTU discovery suite: F-PMTUD, classic PMTUD, PLPMTUD, and the
/// fragment-delivery survey. Re-export of [`px_pmtud`].
pub use px_pmtud as pmtud;

/// Deterministic fault injection, degradation, and self-healing
/// primitives for the chaos harness. Re-export of [`px_faults`].
pub use px_faults as faults;

/// The 5G UPF substrate. Re-export of [`px_upf`].
pub use px_upf as upf;

/// Workload generation and CPU accounting. Re-export of [`px_workload`].
pub use px_workload as workload;
