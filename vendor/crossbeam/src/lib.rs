//! Offline stand-in for the `crossbeam` crate.
//!
//! The engine datapath only needs bounded channels with the
//! crossbeam-channel API shape; this vendors them over
//! `std::sync::mpsc::sync_channel`, which provides the same bounded,
//! blocking, FIFO semantics (std's flavour is MPSC; the engine uses it
//! SPSC — one producer thread per worker channel).

#![warn(missing_docs)]

/// Bounded/unbounded channels in the crossbeam-channel API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when sending on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty+disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the channel is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or all receivers dropped).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives (or all senders dropped).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over received messages, ending when all
        /// senders have been dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a bounded FIFO channel holding at most `cap` in-flight
    /// messages; `send` blocks while full (`cap == 0` is a rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_fifo_roundtrip() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_is_an_error() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_blocks_producer() {
        // A capacity-1 channel forces strict alternation under load; just
        // check nothing deadlocks and order holds with a slow consumer.
        let (tx, rx) = channel::bounded::<u64>(1);
        let producer = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
            std::thread::yield_now();
        }
        producer.join().unwrap();
        assert_eq!(got.len(), 50);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
