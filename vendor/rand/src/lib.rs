//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the narrow slice of the rand 0.8 API it
//! actually uses:
//!
//! * [`rngs::SmallRng`] — the same xoshiro256++ generator rand 0.8 uses
//!   on 64-bit platforms, seeded with the same SplitMix64 expansion, so
//!   seeded number streams match the real crate;
//! * [`Rng`] — `gen`, `gen_range` (integer and float ranges, inclusive
//!   and exclusive), and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`].
//!
//! Anything outside that surface is deliberately absent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high half of [`RngCore::next_u64`],
    /// as rand 0.8's xoshiro adapter does).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Deterministically creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), as rand's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via the widening
/// multiply-shift reduction.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as $t as u64 && hi.wrapping_sub(lo) == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span.wrapping_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// User-facing generator methods (extension trait over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the generator behind rand 0.8's `SmallRng` on 64-bit
    /// platforms, with the identical SplitMix64 `seed_from_u64` expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, exactly as rand 0.8's
            // Xoshiro256PlusPlus::seed_from_u64.
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            SmallRng::from_state(s)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
