//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`RwLock` with parking_lot's non-poisoning
//! API: `lock()`/`read()`/`write()` return guards directly, and a
//! poisoned std lock (a panicking holder) is transparently recovered,
//! matching parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the inner value via exclusive access.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "no poisoning semantics");
    }
}
