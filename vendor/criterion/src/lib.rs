//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's bench
//! targets use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter` — backed by a simple wall-clock measurement loop:
//! each benchmark is calibrated so one sample takes a measurable amount
//! of time, `sample_size` samples are collected, and median / min / max
//! times (plus throughput, when declared) are printed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration work, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Runs `routine` `self.iters` times and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like `iter`, but with per-iteration setup excluded from timing.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_rate(throughput: &Throughput, per_iter_ns: f64) -> String {
    match throughput {
        Throughput::Bytes(b) => {
            let bps = *b as f64 / (per_iter_ns / 1e9);
            if bps >= 1e9 {
                format!("{:.3} GiB/s", bps / (1u64 << 30) as f64)
            } else {
                format!("{:.3} MiB/s", bps / (1u64 << 20) as f64)
            }
        }
        Throughput::Elements(e) => {
            let eps = *e as f64 / (per_iter_ns / 1e9);
            if eps >= 1e6 {
                format!("{:.3} Melem/s", eps / 1e6)
            } else {
                format!("{:.3} Kelem/s", eps / 1e3)
            }
        }
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    /// Target time for one calibrated sample.
    sample_target: Duration,
    /// `--test` smoke mode: run every benchmark exactly once, unmeasured
    /// (same contract as real criterion's `--test` flag; CI uses it to
    /// prove bench targets still compile and run without paying for
    /// calibration).
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            sample_target: Duration::from_millis(20),
            test_mode: false,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    label: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    if settings.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        routine(&mut b);
        println!("{label:<48} test: ok");
        return;
    }
    // Calibrate the per-sample iteration count.
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        routine(&mut b);
        let elapsed = b.elapsed.max(Duration::from_nanos(1));
        if elapsed >= settings.sample_target || iters >= 1 << 20 {
            break elapsed.as_nanos() as f64 / iters as f64;
        }
        let scale = settings.sample_target.as_nanos() as f64 / elapsed.as_nanos() as f64;
        iters = ((iters as f64 * scale.clamp(1.5, 100.0)) as u64).max(iters + 1);
    };
    let _ = per_iter_ns;

    let mut samples = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            _marker: std::marker::PhantomData,
        };
        routine(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let dur = |ns: f64| fmt_duration(Duration::from_nanos(ns as u64));
    let mut line = format!(
        "{label:<48} time: [{} {} {}]",
        dur(lo),
        dur(median),
        dur(hi)
    );
    if let Some(t) = &throughput {
        line.push_str(&format!("  thrpt: {}", fmt_rate(t, median)));
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Shortens/lengthens measurement (accepted for API compatibility).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.sample_target = (t / 10).max(Duration::from_millis(1));
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &self.settings, self.throughput, routine);
        self
    }

    /// Benchmarks `routine` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &self.settings, self.throughput, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {
    unit: (),
    test_mode: bool,
}

impl Criterion {
    /// Reads the harness arguments. Only `--test` (run every benchmark
    /// once, unmeasured) is honoured; everything else is ignored for
    /// API compatibility.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = Settings {
            test_mode: self.test_mode,
            ..Settings::default()
        };
        BenchmarkGroup {
            name: name.into(),
            settings,
            throughput: None,
            _parent: &mut self.unit,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        routine: F,
    ) -> &mut Self {
        let settings = Settings {
            test_mode: self.test_mode,
            ..Settings::default()
        };
        run_one(name, &settings, None, routine);
        self
    }

    /// Prints the final summary (no-op in the vendored harness).
    pub fn final_summary(&mut self) {}
}

/// Declares a group function calling each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = $cfg;
            $($target(c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(black_box(i) * 3);
        }
        acc
    }

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        g.bench_with_input(BenchmarkId::new("work", 1000), &1000u64, |b, &n| {
            b.iter(|| work(n))
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        benches(&mut c);
    }
}
