//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! slice of the proptest 1.x surface the workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * strategies: integer ranges (`a..b`, `a..=b`), [`any`],
//!   [`collection::vec`], [`Just`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * a deterministic runner with input shrinking: every run is seeded
//!   from the test's source location (override with `PROPTEST_SEED`),
//!   and failing inputs are minimised before being reported.
//!
//! Semantics match real proptest closely enough for invariant tests:
//! cases are generated from strategies, a panicking case is shrunk by
//! repeatedly trying simpler inputs, and the minimal failing input plus
//! the seed are printed in the panic message.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration (field-compatible subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum shrinking attempts after a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A value generator with shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Returns candidate simplifications of `value` (may be empty).
    /// Candidates must be "smaller" in some well-founded order so
    /// shrinking terminates.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let mut out = Vec::new();
                if *value > lo {
                    out.push(lo);
                    let mid = lo + (*value - lo) / 2;
                    if mid != lo && mid != *value {
                        out.push(mid);
                    }
                    out.push(*value - 1);
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = *self.start();
                let mut out = Vec::new();
                if *value > lo {
                    out.push(lo);
                    let mid = lo + (*value - lo) / 2;
                    if mid != lo && mid != *value {
                        out.push(mid);
                    }
                    out.push(*value - 1);
                }
                out
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for "any value of `T`" (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform values over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen(rng)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                if *value == 0 {
                    Vec::new()
                } else {
                    vec![0, *value / 2, *value - 1]
                }
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rand::Rng::gen(rng)
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A strategy that always yields one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for vectors with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize, // exclusive
    }

    /// Anything convertible to a length range for [`vec`].
    pub trait IntoSizeRange {
        /// Returns `(min, max_exclusive)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.min..self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural shrinks: shorter vectors first.
            if value.len() > self.min {
                let half = self.min.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
                out.push(value[1..].to_vec());
            }
            // Element-wise shrinks (first shrinkable element only, to
            // bound the candidate count).
            for (i, v) in value.iter().enumerate() {
                let cands = self.element.shrink(v);
                if let Some(c) = cands.into_iter().next() {
                    let mut smaller = value.clone();
                    smaller[i] = c;
                    out.push(smaller);
                    break;
                }
            }
            out
        }
    }
}

/// Heterogeneous tuples of strategies (used by the [`proptest!`] macro).
pub trait TupleStrategy {
    /// The generated tuple type.
    type Value: Clone + Debug;
    /// Generates one tuple.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    /// One round of candidate simplifications (one component changed).
    fn shrink_once(&self, value: &Self::Value) -> Vec<Self::Value>;
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> TupleStrategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink_once(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// Tuples of strategies are also plain strategies yielding tuples (real
// proptest behaves the same), so a tuple can serve as the element of
// `collection::vec` — e.g. a vector of (selector, operand) op codes for
// state-machine style tests. Shrinking reuses the componentwise
// `shrink_once`.
macro_rules! impl_tuple_as_strategy {
    ($(($($S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = <Self as TupleStrategy>::Value;
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                TupleStrategy::generate(self, rng)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                self.shrink_once(value)
            }
        }
    )*};
}

impl_tuple_as_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The case runner behind [`proptest!`].
pub mod runner {
    use super::*;

    fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic>".to_string()
        }
    }

    fn attempt<V: Clone>(test: &impl Fn(V), value: &V) -> Result<(), String> {
        let v = value.clone();
        catch_unwind(AssertUnwindSafe(|| test(v))).map_err(panic_message)
    }

    /// Runs `cases` generated inputs through `test`, shrinking and
    /// reporting the minimal failing input on panic.
    pub fn run<T: TupleStrategy>(
        config: ProptestConfig,
        file: &str,
        line: u32,
        strategies: T,
        test: impl Fn(T::Value),
    ) {
        // Deterministic per-test seed: stable across runs, overridable.
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or(0),
            Err(_) => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in file.bytes().chain(line.to_le_bytes()) {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        for case in 0..config.cases {
            let value = strategies.generate(&mut rng);
            if let Err(first_msg) = attempt(&test, &value) {
                // Shrink: greedily accept any simpler input that still fails.
                let mut best = value;
                let mut msg = first_msg;
                let mut budget = config.max_shrink_iters;
                'outer: loop {
                    for cand in strategies.shrink_once(&best) {
                        if budget == 0 {
                            break 'outer;
                        }
                        budget -= 1;
                        if let Err(m) = attempt(&test, &cand) {
                            best = cand;
                            msg = m;
                            continue 'outer;
                        }
                    }
                    break;
                }
                panic!(
                    "proptest failure at {file}:{line} (case {case}, seed {seed}):\n\
                     minimal failing input: {best:?}\n{msg}"
                );
            }
        }
    }
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips a case when an assumption does not hold. (Vendored behaviour:
/// the case simply returns early and still counts towards the total.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::__proptest_case!($cfg; ($($args)*) $body);
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($cfg:expr; ($($pat:pat in $strat:expr),+ $(,)?) $body:block) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let __strategies = ($($strat,)+);
        $crate::runner::run(__config, file!(), line!(), __strategies, |__case| {
            let ($($pat,)+) = __case;
            $body
        });
    }};
}

/// Declares property tests. Supports the common proptest form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..100, data in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The commonly-glob-imported prelude.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 10usize..20, y in 5u64..=9) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vecs_respect_bounds(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn nested_vec(vv in collection::vec(collection::vec(any::<u8>(), 0..4), 0..4)) {
            for v in &vv {
                prop_assert!(v.len() < 4);
            }
        }

        #[test]
        fn mut_bindings_work(mut data in collection::vec(any::<u8>(), 1..8)) {
            data.push(1);
            prop_assert!(!data.is_empty());
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        let strat = (super::collection::vec(super::any::<u8>(), 0..64),);
        let caught = std::panic::catch_unwind(|| {
            super::runner::run(
                super::ProptestConfig::with_cases(64),
                "x.rs",
                1,
                strat,
                |(v,)| {
                    assert!(v.len() < 10, "too long");
                },
            );
        });
        let msg = match caught {
            Ok(()) => panic!("runner should have failed"),
            Err(e) => *e.downcast::<String>().unwrap(),
        };
        // The minimal counterexample for len >= 10 is exactly len 10.
        assert!(msg.contains("minimal failing input"), "{msg}");
        let n_commas = msg
            .split("minimal failing input")
            .nth(1)
            .unwrap()
            .matches(',')
            .count();
        assert!(n_commas <= 12, "shrunk to near-minimal: {msg}");
    }
}
