//! Jitter-free deterministic exponential backoff.
//!
//! Classic backoff adds random jitter to avoid thundering herds; the
//! PXGW probers deliberately do not — reproducibility is worth more
//! than herd avoidance inside a deterministic simulation, and the
//! schedule doubling keeps retries from synchronizing anyway. The
//! delay for attempt `k` is `base · 2^k`, saturating at `max`.

/// A deterministic exponential backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetBackoff {
    base_ns: u64,
    max_ns: u64,
    attempt: u32,
}

/// The delay for attempt `k` (0-based) of a `base`/`max` schedule:
/// `base << k`, saturating at `max` (and on shift overflow).
#[inline]
#[must_use]
pub fn delay_for(base_ns: u64, max_ns: u64, attempt: u32) -> u64 {
    // A shift that would push any set bit out the top saturates at max.
    let doubled = if attempt >= base_ns.leading_zeros() {
        max_ns
    } else {
        base_ns << attempt
    };
    doubled.min(max_ns).max(base_ns.min(max_ns))
}

impl DetBackoff {
    /// A fresh schedule starting at `base_ns`, capped at `max_ns`.
    #[must_use]
    pub const fn new(base_ns: u64, max_ns: u64) -> Self {
        DetBackoff {
            base_ns,
            max_ns,
            attempt: 0,
        }
    }

    /// The delay the *next* attempt should wait, advancing the
    /// schedule: `base`, `2·base`, `4·base`, …, capped at `max`.
    pub fn next_delay(&mut self) -> u64 {
        let d = delay_for(self.base_ns, self.max_ns, self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// The delay the next call to [`Self::next_delay`] would return,
    /// without advancing.
    #[must_use]
    pub fn peek_delay(&self) -> u64 {
        delay_for(self.base_ns, self.max_ns, self.attempt)
    }

    /// Attempts taken so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the schedule (after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_then_saturates() {
        let mut b = DetBackoff::new(100, 1000);
        let delays: Vec<u64> = (0..6).map(|_| b.next_delay()).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1000, 1000]);
        assert_eq!(b.attempts(), 6);
        b.reset();
        assert_eq!(b.next_delay(), 100);
    }

    #[test]
    fn shift_overflow_saturates_at_max() {
        assert_eq!(delay_for(1 << 40, u64::MAX / 2, 63), u64::MAX / 2);
        assert_eq!(delay_for(100, 1000, 200), 1000);
    }

    #[test]
    fn is_jitter_free() {
        let mut a = DetBackoff::new(50, 10_000);
        let mut b = DetBackoff::new(50, 10_000);
        for _ in 0..20 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn degenerate_max_below_base_clamps() {
        let mut b = DetBackoff::new(1000, 100);
        assert_eq!(b.next_delay(), 100);
        assert_eq!(b.next_delay(), 100);
    }
}
