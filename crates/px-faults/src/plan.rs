//! The ingress fault applier: one seeded pass over the global packet
//! trace, *before* RSS sharding.
//!
//! Applying faults pre-shard is what keeps the chaos matrix's
//! cross-core digest identity meaningful: the faulted trace — drops,
//! duplicates, adjacent swaps, corrupted and truncated packets — is a
//! pure function of `(seed, trace)`, so 1-, 2-, 4- and 8-core runs all
//! consume byte-identical inputs.

use crate::rng::XorShift64;
use crate::spec::FaultSpec;

/// What the ingress pass did, for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Packets removed from the trace.
    pub dropped: u64,
    /// Packets emitted twice.
    pub duplicated: u64,
    /// Packets held past their successor.
    pub reordered: u64,
    /// Packets with one byte XOR-flipped.
    pub corrupted: u64,
    /// Packets cut short.
    pub truncated: u64,
}

impl IngressStats {
    /// Total individual faults applied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.corrupted + self.truncated
    }
}

/// A seeded fault plan: owns the draw stream for ingress faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The spec this plan draws from.
    pub spec: FaultSpec,
    rng: XorShift64,
    /// Ingress fault accounting.
    pub stats: IngressStats,
}

impl FaultPlan {
    /// Builds a plan for `spec` (seeded from `spec.seed`).
    #[must_use]
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan {
            spec,
            rng: XorShift64::new(spec.seed ^ 0x1a6e_55aa_c0de_f00d),
            stats: IngressStats::default(),
        }
    }

    /// Applies ingress faults to a whole trace, in arrival order.
    /// Disabled specs return the trace untouched.
    ///
    /// Per packet, five Bernoulli draws are consumed in a fixed order
    /// (drop, dup, reorder, corrupt, truncate) regardless of which
    /// fire, so one rate's value never shifts another fault's schedule.
    #[must_use]
    pub fn apply_ingress(&mut self, trace: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        self.apply_ingress_keyed(trace.into_iter().map(|p| ((), p)).collect())
            .into_iter()
            .map(|((), p)| p)
            .collect()
    }

    /// [`apply_ingress`](Self::apply_ingress) over a trace whose packets
    /// carry a per-packet key (e.g. the flow key an RSS sharder uses):
    /// drop/dup/reorder move the pair as a unit, corrupt/truncate mutate
    /// only the bytes, so a duplicated or reordered packet keeps riding
    /// with its original key.
    #[must_use]
    pub fn apply_ingress_keyed<K: Clone>(&mut self, trace: Vec<(K, Vec<u8>)>) -> Vec<(K, Vec<u8>)> {
        if !self.spec.enabled {
            return trace;
        }
        let mut out = Vec::with_capacity(trace.len() + trace.len() / 16);
        let mut held: Option<(K, Vec<u8>)> = None;
        for (key, mut pkt) in trace {
            let drop = self.rng.chance_ppm(self.spec.drop_ppm);
            let dup = self.rng.chance_ppm(self.spec.dup_ppm);
            let reorder = self.rng.chance_ppm(self.spec.reorder_ppm);
            let corrupt = self.rng.chance_ppm(self.spec.corrupt_ppm);
            let truncate = self.rng.chance_ppm(self.spec.truncate_ppm);
            if drop {
                self.stats.dropped += 1;
                continue;
            }
            if corrupt && !pkt.is_empty() {
                let pos = self.rng.below(pkt.len() as u64) as usize;
                let mask = self.rng.next_u64() as u8;
                pkt[pos] ^= if mask == 0 { 0xa5 } else { mask };
                self.stats.corrupted += 1;
            }
            if truncate && pkt.len() > 1 {
                let keep = 1 + self.rng.below(pkt.len() as u64 - 1) as usize;
                pkt.truncate(keep);
                self.stats.truncated += 1;
            }
            if reorder && held.is_none() {
                // Hold this packet; it re-enters after its successor.
                self.stats.reordered += 1;
                held = Some((key, pkt));
                continue;
            }
            if dup {
                self.stats.duplicated += 1;
                out.push((key.clone(), pkt.clone()));
            }
            out.push((key, pkt));
            if let Some(h) = held.take() {
                out.push(h);
            }
        }
        if let Some(h) = held.take() {
            out.push(h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 40 + i % 7]).collect()
    }

    fn spec(seed: u64) -> FaultSpec {
        FaultSpec {
            enabled: true,
            seed,
            drop_ppm: 50_000,
            dup_ppm: 50_000,
            reorder_ppm: 50_000,
            corrupt_ppm: 50_000,
            truncate_ppm: 50_000,
            ..FaultSpec::off()
        }
    }

    #[test]
    fn disabled_plan_is_identity() {
        let t = trace(100);
        let mut p = FaultPlan::new(FaultSpec::off());
        assert_eq!(p.apply_ingress(t.clone()), t);
        assert_eq!(p.stats, IngressStats::default());
    }

    #[test]
    fn same_seed_same_faulted_trace() {
        let t = trace(2000);
        let a = FaultPlan::new(spec(3)).apply_ingress(t.clone());
        let b = FaultPlan::new(spec(3)).apply_ingress(t.clone());
        assert_eq!(a, b);
        let c = FaultPlan::new(spec(4)).apply_ingress(t);
        assert_ne!(a, c);
    }

    #[test]
    fn packet_conservation_accounting() {
        let t = trace(5000);
        let mut p = FaultPlan::new(spec(9));
        let out = p.apply_ingress(t.clone());
        assert_eq!(
            out.len() as u64,
            t.len() as u64 - p.stats.dropped + p.stats.duplicated
        );
        // All five fault classes fired at 5% over 5000 packets.
        assert!(p.stats.dropped > 0);
        assert!(p.stats.duplicated > 0);
        assert!(p.stats.reordered > 0);
        assert!(p.stats.corrupted > 0);
        assert!(p.stats.truncated > 0);
    }

    #[test]
    fn reorder_swaps_adjacent_without_loss() {
        let s = FaultSpec {
            enabled: true,
            seed: 77,
            reorder_ppm: 300_000,
            ..FaultSpec::off()
        };
        let t = trace(500);
        let mut p = FaultPlan::new(s);
        let out = p.apply_ingress(t.clone());
        assert_eq!(out.len(), t.len());
        assert!(p.stats.reordered > 0);
        // Multiset preserved.
        let mut a = t;
        let mut b = out.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let s = FaultSpec {
            enabled: true,
            seed: 5,
            corrupt_ppm: 1_000_000,
            ..FaultSpec::off()
        };
        let t = trace(50);
        let mut p = FaultPlan::new(s);
        let out = p.apply_ingress(t.clone());
        assert_eq!(p.stats.corrupted, 50);
        for (orig, got) in t.iter().zip(&out) {
            assert_eq!(orig.len(), got.len());
            let diff = orig.iter().zip(got).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn keyed_trace_keeps_keys_with_their_packets() {
        let t: Vec<(usize, Vec<u8>)> = (0..2000).map(|i| (i, vec![(i % 251) as u8; 60])).collect();
        let mut p = FaultPlan::new(spec(11));
        let out = p.apply_ingress_keyed(t);
        assert!(p.stats.total() > 0);
        // Every surviving packet still carries the key it was built
        // with (corruption may flip the byte value, but at most one
        // byte differs from the key's pattern).
        for (key, pkt) in &out {
            let expected = (*key % 251) as u8;
            let mismatched = pkt.iter().filter(|&&b| b != expected).count();
            assert!(mismatched <= 1, "key {key} rode with a foreign packet");
        }
        // The unkeyed wrapper draws the identical schedule.
        let t2: Vec<Vec<u8>> = (0..2000).map(|i| vec![(i % 251) as u8; 60]).collect();
        let bytes_only = FaultPlan::new(spec(11)).apply_ingress(t2);
        assert_eq!(
            bytes_only,
            out.into_iter().map(|(_, p)| p).collect::<Vec<_>>()
        );
    }

    #[test]
    fn truncation_never_empties_a_packet() {
        let s = FaultSpec {
            enabled: true,
            seed: 6,
            truncate_ppm: 1_000_000,
            ..FaultSpec::off()
        };
        let mut p = FaultPlan::new(s);
        let out = p.apply_ingress(trace(200));
        assert_eq!(p.stats.truncated, 200);
        assert!(out.iter().all(|pkt| !pkt.is_empty()));
    }
}
