//! The fault configuration embedded (by `Copy`) in engine configs.

use crate::rng::splitmix64;

/// Degrade cause codes, shared by the engines' `DegradeEnter` events
/// and `Degrade` spans so every consumer (flight recorder, trace
/// export, Prometheus labels) agrees on the encoding.
pub mod cause {
    /// The buffer pool was dry at aggregate/bundle creation.
    pub const POOL: u64 = 1;
    /// The flow table denied the insertion.
    pub const TABLE: u64 = 2;

    /// Human-readable cause name (`"pool"`, `"table"`, `"?"`).
    #[must_use]
    pub fn name(code: u64) -> &'static str {
        match code {
            POOL => "pool",
            TABLE => "table",
            _ => "?",
        }
    }
}

/// A complete fault schedule description: which faults, at what rates,
/// from which seed. `Copy` so it rides inside `EngineConfig` the same
/// way `ObsConfig` does; [`FaultSpec::off`] is the all-zero spec every
/// production path carries (one predicted branch per decision).
///
/// Rates are parts-per-million of packets. Worker faults are keyed by
/// batch index (`every N batches`), not wall clock, so they replay
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Master switch. When false every injector call is a predicted
    /// branch and the ingress plan is the identity.
    pub enabled: bool,
    /// Seed for every draw this spec makes (ingress stream and
    /// stateless resource verdicts).
    pub seed: u64,
    /// Ingress: drop the packet.
    pub drop_ppm: u32,
    /// Ingress: emit the packet twice.
    pub dup_ppm: u32,
    /// Ingress: hold the packet past its successor (adjacent swap).
    pub reorder_ppm: u32,
    /// Ingress: XOR one random byte with a nonzero mask.
    pub corrupt_ppm: u32,
    /// Ingress: cut the packet short at a random offset.
    pub truncate_ppm: u32,
    /// Resource: report the buffer pool dry at aggregate creation.
    pub pool_dry_ppm: u32,
    /// Resource: deny the flow-table insertion at aggregate creation.
    pub table_deny_ppm: u32,
    /// Worker: panic at the entry of every Nth batch (0 = never). The
    /// supervisor catches it, rescues the core's flow state, and
    /// restarts the worker in place.
    pub panic_every_batches: u64,
    /// Worker: stall (sleep) for `stall_ns` at the entry of every Nth
    /// batch (0 = never) — what the heartbeat monitor is for.
    pub stall_every_batches: u64,
    /// How long an injected stall lasts, in wall nanoseconds.
    pub stall_ns: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::off()
    }
}

impl FaultSpec {
    /// The no-fault spec: everything zero, injection disabled.
    #[must_use]
    pub const fn off() -> Self {
        FaultSpec {
            enabled: false,
            seed: 0,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            corrupt_ppm: 0,
            truncate_ppm: 0,
            pool_dry_ppm: 0,
            table_deny_ppm: 0,
            panic_every_batches: 0,
            stall_every_batches: 0,
            stall_ns: 0,
        }
    }

    /// A seed-derived chaos mix for the matrix: every rate is drawn
    /// from the seed, so seed `s` names one complete fault schedule.
    /// Roughly half the seeds include worker panics and a quarter
    /// include stalls; ingress rates range up to a few percent.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        let d = |salt: u64, range: u64| -> u32 {
            (splitmix64(seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % range) as u32
        };
        FaultSpec {
            enabled: true,
            seed,
            drop_ppm: d(1, 30_000),
            dup_ppm: d(2, 20_000),
            reorder_ppm: d(3, 30_000),
            corrupt_ppm: d(4, 20_000),
            truncate_ppm: d(5, 10_000),
            pool_dry_ppm: d(6, 50_000),
            table_deny_ppm: d(7, 50_000),
            panic_every_batches: match splitmix64(seed ^ 8) % 4 {
                0 => 7,
                1 => 13,
                _ => 0,
            },
            stall_every_batches: if splitmix64(seed ^ 9).is_multiple_of(4) {
                11
            } else {
                0
            },
            stall_ns: 200_000, // 0.2 ms: long enough for the monitor to see
        }
    }

    /// Whether this spec can inject worker-level faults.
    #[must_use]
    pub fn has_worker_faults(&self) -> bool {
        self.enabled && (self.panic_every_batches > 0 || self.stall_every_batches > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert_and_default() {
        let s = FaultSpec::off();
        assert!(!s.enabled);
        assert_eq!(s, FaultSpec::default());
        assert!(!s.has_worker_faults());
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        assert_eq!(FaultSpec::chaos(5), FaultSpec::chaos(5));
        assert_ne!(FaultSpec::chaos(5), FaultSpec::chaos(6));
        assert!(FaultSpec::chaos(5).enabled);
    }

    #[test]
    fn chaos_rates_stay_in_their_bands() {
        let mut with_panic = 0usize;
        for seed in 0..256u64 {
            let s = FaultSpec::chaos(seed);
            assert!(s.drop_ppm < 30_000);
            assert!(s.dup_ppm < 20_000);
            assert!(s.reorder_ppm < 30_000);
            assert!(s.corrupt_ppm < 20_000);
            assert!(s.truncate_ppm < 10_000);
            assert!(s.pool_dry_ppm < 50_000);
            assert!(s.table_deny_ppm < 50_000);
            if s.panic_every_batches > 0 {
                with_panic += 1;
            }
        }
        // About half the seeds exercise the restart path.
        assert!((64..192).contains(&with_panic), "{with_panic}");
    }
}
