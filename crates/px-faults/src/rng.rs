//! Seeded, wall-clock-free randomness for fault schedules.
//!
//! Two flavors cover the two determinism regimes the chaos matrix
//! needs:
//!
//! - [`XorShift64`], a *sequential* stream for ingress faults, which
//!   are applied to the global trace before RSS sharding (one draw
//!   order, independent of core count);
//! - [`splitmix64`], a *stateless* mixer for resource-fault decisions,
//!   which must give the same verdict for the same packet no matter
//!   which core (or batch) it lands on.

/// Finalizing mixer from the splitmix64 generator: a bijective u64
/// hash with full avalanche. Stateless — the building block for
/// per-packet fault verdicts.
#[inline]
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Marsaglia xorshift64*: tiny, fast, and plenty for fault scheduling.
/// Never zero-state (a zero seed is remixed through [`splitmix64`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator. Any seed is accepted; zero is remixed so
    /// the xorshift state never sticks at the absorbing zero.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mixed = splitmix64(seed);
        XorShift64 {
            state: if mixed == 0 { 0x9e37_79b9 } else { mixed },
        }
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A draw in `0..n` (`0` when `n == 0`).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Bernoulli draw with probability `ppm` parts-per-million.
    #[inline]
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        if ppm == 0 {
            // Still consume a draw so schedules with a rate set to zero
            // keep the rest of the stream aligned with nonzero runs.
            let _ = self.next_u64();
            return false;
        }
        self.below(1_000_000) < u64::from(ppm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }

    #[test]
    fn chance_ppm_tracks_the_rate() {
        let mut r = XorShift64::new(7);
        let hits = (0..100_000)
            .filter(|_| r.chance_ppm(100_000)) // 10%
            .count();
        assert!((8_000..12_000).contains(&hits), "{hits}");
        // Zero rate never fires but keeps the stream moving.
        let mut x = XorShift64::new(9);
        let mut y = XorShift64::new(9);
        assert!(!x.chance_ppm(0));
        let _ = y.next_u64();
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = XorShift64::new(11);
        for n in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn splitmix_avalanches() {
        // Neighbouring inputs land far apart — the property resource
        // verdicts rely on (packet i and i+1 get independent fates).
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones() as i32 - 32).abs() < 24);
    }
}
