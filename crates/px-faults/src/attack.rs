//! Seeded adversarial traffic generators — the attack matrix's arsenal.
//!
//! Where [`crate::plan`] models an *unreliable* network (drops, dups,
//! corruption), this module models a *hostile* one: an on-path injector
//! replaying TCP ranges with altered bytes, a sender smuggling data
//! through overlapping segments, a peer emitting malformed caravan
//! bundles, and an off-path spoofer forging F-PMTUD shrink reports.
//!
//! Everything is a pure function of a seed — no wall clock, no global
//! RNG — so `tests/attack_matrix.rs` can replay the identical assault
//! at 1/2/4/8 cores and demand bit-identical behaviour. Generators also
//! return ground truth (how many packets carry attacker bytes, which
//! bundles are well-formed) so the matrix asserts on exact counters
//! instead of "something was probably dropped".
//!
//! The TCP generators are *detectable by design*: attacker segments only
//! ever replay sequence ranges the legitimate flow has already sent (with
//! flipped bytes), so a correct gateway can always prove the conflict
//! against attested data. First-writer-wins races in unsent gaps are a
//! different threat (see DESIGN.md §17) and are deliberately absent here.

use crate::rng::{splitmix64, XorShift64};
use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::{FlowKey, IpProtocol};
use std::net::Ipv4Addr;

/// Payload bytes per legitimate eMTU segment (1500 − 20 IP − 20 TCP).
pub const SEG_PAYLOAD: usize = 1460;

/// The legitimate byte at absolute stream offset `off` of the flow
/// salted with `salt`. Deterministic and position-based, so a
/// retransmission of a range reproduces the identical bytes — the
/// property the coalescer's consistency check attests.
#[inline]
pub fn pattern_byte(salt: u64, off: u64) -> u8 {
    (splitmix64(salt ^ off) & 0xFF) as u8
}

/// The attacker's substitute for the same position: guaranteed to
/// differ from [`pattern_byte`] in every bit.
#[inline]
pub fn evil_byte(salt: u64, off: u64) -> u8 {
    !pattern_byte(salt, off)
}

/// One flow's identity and keying material.
#[derive(Debug, Clone, Copy)]
struct FlowPlan {
    key: FlowKey,
    /// Initial sequence number.
    isn: u32,
    /// Salt for [`pattern_byte`].
    salt: u64,
}

fn flow_plan(seed: u64, idx: usize) -> FlowPlan {
    let id = splitmix64(seed ^ 0xF10A_0000 ^ idx as u64);
    let src = Ipv4Addr::new(198, 51, (idx >> 8) as u8, idx as u8);
    let sport = 1024 + (id % 60_000) as u16;
    let dst = Ipv4Addr::new(10, 99, 0, 1);
    FlowPlan {
        key: FlowKey::tcp(src, sport, dst, 5201),
        isn: (id >> 32) as u32,
        salt: splitmix64(id),
    }
}

/// Builds one checksummed TCP/IPv4 packet for `plan` covering stream
/// offsets `[off, off + len)`, with `fill` supplying each byte.
fn tcp_pkt(plan: &FlowPlan, off: u64, len: usize, fill: impl Fn(u64) -> u8) -> Vec<u8> {
    let mut payload = vec![0u8; len];
    for (i, b) in payload.iter_mut().enumerate() {
        *b = fill(off + i as u64);
    }
    let repr = TcpRepr {
        src_port: plan.key.src_port,
        dst_port: plan.key.dst_port,
        seq: SeqNum(plan.isn.wrapping_add(off as u32)),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 8192,
        options: vec![],
    };
    let seg = repr.build_segment(plan.key.src_ip, plan.key.dst_ip, &payload);
    let mut ip = Ipv4Repr::new(plan.key.src_ip, plan.key.dst_ip, IpProtocol::Tcp, seg.len());
    ip.ident = (off / SEG_PAYLOAD as u64) as u16;
    // Generator invariant: eMTU-sized segments always fit an IPv4 packet.
    #[allow(clippy::expect_used)]
    ip.build_packet(&seg).expect("eMTU segment fits")
}

/// A generated adversarial TCP trace plus its ground truth.
#[derive(Debug, Default)]
pub struct TcpAttackTrace {
    /// Arrival-ordered packets, ready for `run_engine_on_trace`.
    pub pkts: Vec<(FlowKey, Vec<u8>)>,
    /// Segments whose payload conflicts with legitimately sent bytes —
    /// every one must surface as a typed drop or a below-window
    /// forward, never inside a merged aggregate.
    pub attack_pkts: u64,
    /// Bit-identical replays of already-sent segments (benign dups).
    pub benign_dups: u64,
    /// Legitimate segments emitted out of order (stash exercise).
    pub reordered: u64,
    /// Packets of legitimate payload per flow (for oracle sizing).
    pub segs_per_flow: usize,
}

impl TcpAttackTrace {
    /// The oracle byte for `flow`'s stream offset `off` — what a
    /// receiver must see there if the gateway admitted no attacker
    /// bytes into attested aggregates.
    pub fn oracle_byte(&self, seed: u64, flow_idx: usize, off: u64) -> u8 {
        pattern_byte(flow_plan(seed, flow_idx).salt, off)
    }

    /// `flow_idx`'s identity, for matching engine output back to plans.
    pub fn flow_key(&self, seed: u64, flow_idx: usize) -> FlowKey {
        flow_plan(seed, flow_idx).key
    }

    /// `flow_idx`'s initial sequence number.
    pub fn flow_isn(&self, seed: u64, flow_idx: usize) -> u32 {
        flow_plan(seed, flow_idx).isn
    }
}

/// An attacker-free trace: `flows` flows, each sending `segs_per_flow`
/// in-order eMTU segments, round-robin interleaved. The baseline the
/// matrix diffs attacked runs against.
pub fn tcp_clean_trace(seed: u64, flows: usize, segs_per_flow: usize) -> Vec<(FlowKey, Vec<u8>)> {
    let mut out = Vec::with_capacity(flows * segs_per_flow);
    for seg in 0..segs_per_flow {
        for f in 0..flows {
            let plan = flow_plan(seed, f);
            let off = (seg * SEG_PAYLOAD) as u64;
            out.push((plan.key, tcp_pkt(&plan, off, SEG_PAYLOAD, |o| {
                pattern_byte(plan.salt, o)
            })));
        }
    }
    out
}

/// The same legitimate schedule as [`tcp_clean_trace`], laced with
/// seeded attacks: inconsistent replays (full segments and tiny 8-byte
/// stabs with flipped bytes), bit-identical duplicates, and reversed
/// legitimate runs. Attacker segments reuse the victim's flow key, so
/// they shard to the victim's core and race its real traffic.
pub fn tcp_attack_trace(seed: u64, flows: usize, segs_per_flow: usize) -> TcpAttackTrace {
    let mut rng = XorShift64::new(seed ^ 0xA77A_C4ED);
    let mut trace = TcpAttackTrace {
        segs_per_flow,
        ..TcpAttackTrace::default()
    };
    // next_seg[f]: how many in-order segments flow f has sent.
    let mut next_seg = vec![0usize; flows];
    while next_seg.iter().any(|&s| s < segs_per_flow) {
        let f = (rng.next_u64() % flows as u64) as usize;
        let plan = flow_plan(seed, f);
        let sent = next_seg[f];
        let roll = rng.next_u64() % 8;
        match roll {
            // Inconsistent full replay of an already-sent segment.
            0 if sent > 0 => {
                let victim = (rng.next_u64() % sent as u64) as usize;
                let off = (victim * SEG_PAYLOAD) as u64;
                trace.pkts.push((plan.key, tcp_pkt(&plan, off, SEG_PAYLOAD, |o| {
                    evil_byte(plan.salt, o)
                })));
                trace.attack_pkts += 1;
            }
            // Tiny inconsistent stab inside the last sent segment. The
            // jitter starts at 1 so the stab never shares a segment
            // boundary with a legitimate packet — equal-offset stash
            // entries would make leftover-forwarding order depend on
            // unrelated flows sharing the stash.
            1 if sent > 0 => {
                let base = ((sent - 1) * SEG_PAYLOAD) as u64;
                let jitter = 1 + rng.next_u64() % (SEG_PAYLOAD as u64 - 9);
                trace.pkts.push((plan.key, tcp_pkt(&plan, base + jitter, 8, |o| {
                    evil_byte(plan.salt, o)
                })));
                trace.attack_pkts += 1;
            }
            // Bit-identical duplicate of the last sent segment.
            2 if sent > 0 => {
                let off = ((sent - 1) * SEG_PAYLOAD) as u64;
                trace.pkts.push((plan.key, tcp_pkt(&plan, off, SEG_PAYLOAD, |o| {
                    pattern_byte(plan.salt, o)
                })));
                trace.benign_dups += 1;
            }
            // A reversed legitimate run: next two segments swapped.
            3 if sent + 2 <= segs_per_flow => {
                for seg in [sent + 1, sent] {
                    let off = (seg * SEG_PAYLOAD) as u64;
                    trace.pkts.push((plan.key, tcp_pkt(&plan, off, SEG_PAYLOAD, |o| {
                        pattern_byte(plan.salt, o)
                    })));
                }
                next_seg[f] = sent + 2;
                trace.reordered += 1;
            }
            // Otherwise: the next in-order legitimate segment.
            _ => {
                if sent < segs_per_flow {
                    let off = (sent * SEG_PAYLOAD) as u64;
                    trace.pkts.push((plan.key, tcp_pkt(&plan, off, SEG_PAYLOAD, |o| {
                        pattern_byte(plan.salt, o)
                    })));
                    next_seg[f] = sent + 1;
                }
            }
        }
    }
    trace
}

/// One generated caravan bundle and whether a correct validator must
/// accept it.
#[derive(Debug, Clone)]
pub struct AttackBundle {
    /// The bundle bytes (the outer UDP's payload: concatenated inner
    /// datagrams, possibly mangled).
    pub bytes: Vec<u8>,
    /// Ground truth: `true` iff every inner datagram is well-formed and
    /// exactly delimited (what `validate_bundle` must conclude).
    pub valid: bool,
    /// Inner datagrams a correct walk recovers; 0 when `valid` is false.
    pub inner_count: usize,
}

/// Builds a well-formed inner UDP datagram (header + patterned payload).
fn inner_datagram(rng: &mut XorShift64, payload_len: usize) -> Vec<u8> {
    let len = 8 + payload_len;
    let mut dg = vec![0u8; len];
    dg[0..2].copy_from_slice(&(4000 + (rng.next_u64() % 100) as u16).to_be_bytes());
    dg[2..4].copy_from_slice(&443u16.to_be_bytes());
    dg[4..6].copy_from_slice(&(len as u16).to_be_bytes());
    // Checksum 0 = "none" per UDP/IPv4; the validator checks framing.
    for (i, b) in dg[8..].iter_mut().enumerate() {
        *b = (rng.next_u64() >> (8 * (i % 8))) as u8;
    }
    dg
}

/// The framing contract a correct validator enforces, reimplemented
/// naively: the bundle must split into an exact sequence of records,
/// each with an 8-byte header and a length field covering `8..=rest`,
/// at most `MAX_INNER` (64) of them. Ground truth for every generated
/// bundle comes from *this* walk, so a mangling that happens to
/// re-align into well-formed framing is labelled honestly.
fn reference_validate(bundle: &[u8]) -> Option<usize> {
    let mut rest = bundle;
    let mut n = 0usize;
    while !rest.is_empty() {
        if rest.len() < 8 || n == 64 {
            return None;
        }
        let len = usize::from(u16::from_be_bytes([rest[4], rest[5]]));
        if len < 8 || len > rest.len() {
            return None;
        }
        rest = &rest[len..];
        n += 1;
    }
    Some(n)
}

/// Seeded malformed-bundle generator: valid bundles interleaved with
/// truncations, over-claiming inner lengths (a datagram "owning" its
/// neighbour's bytes), and under-sized length fields. `valid` and
/// `inner_count` are ground truth from [`reference_validate`].
pub fn caravan_attack_bundles(seed: u64, n: usize) -> Vec<AttackBundle> {
    let mut rng = XorShift64::new(seed ^ 0xCA7A_7A11);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let built = 1 + (rng.next_u64() % 4) as usize;
        let mut bytes = Vec::new();
        for _ in 0..built {
            let payload_len = (rng.next_u64() % 512) as usize;
            bytes.extend_from_slice(&inner_datagram(&mut rng, payload_len));
        }
        match rng.next_u64() % 5 {
            // Well-formed.
            0 | 1 => {}
            // Truncated mid-datagram: the final length field claims
            // bytes the bundle no longer carries.
            2 => {
                let cut = 1 + (rng.next_u64() % 7) as usize;
                bytes.truncate(bytes.len() - cut);
            }
            // Over-claim: inflate the first inner length so it swallows
            // (part of) its neighbour — the overlapping-claim attack.
            3 => {
                let claimed = u16::from_be_bytes([bytes[4], bytes[5]]);
                let inflated = claimed.saturating_add(1 + (rng.next_u64() % 64) as u16);
                bytes[4..6].copy_from_slice(&inflated.to_be_bytes());
            }
            // Under-claim: a length below the 8-byte UDP header.
            _ => {
                let bogus = (rng.next_u64() % 8) as u16;
                bytes[4..6].copy_from_slice(&bogus.to_be_bytes());
            }
        }
        let (valid, inner_count) = match reference_validate(&bytes) {
            Some(k) => (true, k),
            None => (false, 0),
        };
        out.push(AttackBundle {
            bytes,
            valid,
            inner_count,
        });
    }
    out
}

/// One forged (or replayed) F-PMTUD report aimed at a prober.
#[derive(Debug, Clone)]
pub struct SpoofReport {
    /// The probe id the forgery claims to answer.
    pub probe_id: u32,
    /// The attacker's nonce guess (uniformly random — off-path).
    pub nonce: u64,
    /// The claimed fragment sizes: tiny, to talk the PMTU down.
    pub sizes: Vec<usize>,
}

/// A stream of `n` off-path spoofed shrink reports against probe ids
/// `1..=max_probe_id`. Nonces are 64-bit guesses; ids cycle through the
/// plausible window an attacker could infer.
pub fn spoof_report_stream(seed: u64, n: usize, max_probe_id: u32) -> Vec<SpoofReport> {
    let mut rng = XorShift64::new(seed ^ 0x5F00_F5F0);
    (0..n)
        .map(|_| {
            let claimed = 68 + (rng.next_u64() % 600) as usize;
            SpoofReport {
                probe_id: 1 + (rng.next_u64() % u64::from(max_probe_id)) as u32,
                nonce: rng.next_u64(),
                sizes: vec![claimed, claimed / 2],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_seed_deterministic() {
        let a = tcp_attack_trace(7, 3, 5);
        let b = tcp_attack_trace(7, 3, 5);
        assert_eq!(a.pkts, b.pkts);
        assert_eq!(a.attack_pkts, b.attack_pkts);
        let c = tcp_attack_trace(8, 3, 5);
        assert_ne!(a.pkts, c.pkts, "seed must matter");
    }

    #[test]
    fn attack_trace_contains_all_legit_segments_and_some_attacks() {
        let t = tcp_attack_trace(1, 4, 6);
        assert!(t.attack_pkts > 0, "no attacks generated");
        assert!(t.reordered > 0 || t.benign_dups > 0);
        // Every flow's full legitimate range is present: count distinct
        // in-order segments per flow by (key, seq).
        use std::collections::HashSet;
        let mut seen: HashSet<(u16, u32)> = HashSet::new();
        for (key, pkt) in &t.pkts {
            let ihl = usize::from(pkt[0] & 0xF) * 4;
            let seq = u32::from_be_bytes([
                pkt[ihl + 4],
                pkt[ihl + 5],
                pkt[ihl + 6],
                pkt[ihl + 7],
            ]);
            seen.insert((key.src_port, seq));
        }
        for f in 0..4 {
            let isn = t.flow_isn(1, f);
            let key = t.flow_key(1, f);
            for seg in 0..6 {
                let seq = isn.wrapping_add((seg * SEG_PAYLOAD) as u32);
                assert!(
                    seen.contains(&(key.src_port, seq)),
                    "flow {f} segment {seg} missing"
                );
            }
        }
    }

    #[test]
    fn attack_packets_parse_and_checksum() {
        let t = tcp_attack_trace(3, 2, 4);
        for (_, pkt) in &t.pkts {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).expect("parses");
            assert!(ip.verify_checksum(), "bad IP checksum");
            let seg =
                px_wire::tcp::TcpSegment::new_checked(ip.payload()).expect("tcp parses");
            assert!(
                seg.verify_checksum(ip.src(), ip.dst()),
                "bad TCP checksum — attacks must not be droppable as malformed"
            );
        }
    }

    #[test]
    fn evil_bytes_differ_everywhere() {
        for off in 0..4096u64 {
            assert_ne!(pattern_byte(9, off), evil_byte(9, off));
        }
    }

    #[test]
    fn caravan_bundles_match_their_ground_truth() {
        let bundles = caravan_attack_bundles(11, 200);
        assert!(bundles.iter().any(|b| b.valid));
        assert!(bundles.iter().any(|b| !b.valid));
        for b in &bundles {
            let verdict = px_wire::caravan::validate_bundle(&b.bytes);
            assert_eq!(
                verdict.is_ok(),
                b.valid,
                "validator disagrees with ground truth: {verdict:?}"
            );
            if let Ok(n) = verdict {
                assert_eq!(n, b.inner_count);
            }
        }
    }

    #[test]
    fn spoof_stream_is_deterministic_and_tiny() {
        let a = spoof_report_stream(5, 50, 8);
        let b = spoof_report_stream(5, 50, 8);
        assert_eq!(a.len(), 50);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.probe_id == y.probe_id && x.nonce == y.nonce && x.sizes == y.sizes));
        assert!(a.iter().all(|r| r.sizes.iter().all(|&s| s < 700)));
        assert!(a.iter().all(|r| (1..=8).contains(&r.probe_id)));
    }
}
