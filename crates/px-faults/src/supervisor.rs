//! Worker-liveness primitives: heartbeat counters and the stall
//! detector the parallel engine's supervisor scans them with.
//!
//! A worker bumps its heartbeat once per batch; the monitor samples
//! all heartbeats on a fixed cadence and strikes a core whose count
//! has not advanced. `threshold` consecutive strikes declare a stall.
//! Detection is advisory — the engine decides what restarting means —
//! so these types carry no policy, only the counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// One atomic heartbeat per core. Shared (`&self`) between workers and
/// the monitor thread; all accesses are relaxed — ordering does not
/// matter for a monotone liveness counter.
#[derive(Debug)]
pub struct Heartbeats {
    beats: Vec<AtomicU64>,
}

impl Heartbeats {
    /// Heartbeats for `cores` workers, all starting at zero.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Heartbeats {
            beats: (0..cores).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cores tracked.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.beats.len()
    }

    /// Worker `core` signals one unit of progress (call once per
    /// batch). Out-of-range cores are ignored.
    #[inline]
    pub fn beat(&self, core: usize) {
        if let Some(b) = self.beats.get(core) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current heartbeat count for `core` (0 if out of range).
    #[must_use]
    pub fn read(&self, core: usize) -> u64 {
        self.beats
            .get(core)
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }
}

/// Strike-counting stall detection over a [`Heartbeats`] array.
#[derive(Debug)]
pub struct StallDetector {
    last: Vec<u64>,
    strikes: Vec<u32>,
    threshold: u32,
    /// Stall declarations made so far (monotone).
    pub stalls_detected: u64,
}

impl StallDetector {
    /// A detector for `cores` workers declaring a stall after
    /// `threshold` consecutive scans without progress (min 1).
    #[must_use]
    pub fn new(cores: usize, threshold: u32) -> Self {
        StallDetector {
            last: vec![0; cores],
            strikes: vec![0; cores],
            threshold: threshold.max(1),
            stalls_detected: 0,
        }
    }

    /// One monitor scan: samples every heartbeat and returns the cores
    /// that just crossed the stall threshold (reported once per stall
    /// episode — a still-stalled core is not re-reported until it
    /// progresses and stalls again).
    pub fn scan(&mut self, beats: &Heartbeats) -> Vec<usize> {
        let mut stalled = Vec::new();
        for core in 0..self.last.len() {
            let now = beats.read(core);
            if now != self.last[core] {
                self.last[core] = now;
                self.strikes[core] = 0;
                continue;
            }
            self.strikes[core] = self.strikes[core].saturating_add(1);
            if self.strikes[core] == self.threshold {
                self.stalls_detected += 1;
                stalled.push(core);
            }
        }
        stalled
    }

    /// Forgives a core (after the engine restarted it) so the next
    /// stall episode is detected afresh.
    pub fn clear(&mut self, core: usize) {
        if let Some(s) = self.strikes.get_mut(core) {
            *s = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progressing_workers_are_never_flagged() {
        let hb = Heartbeats::new(2);
        let mut det = StallDetector::new(2, 2);
        for _ in 0..10 {
            hb.beat(0);
            hb.beat(1);
            assert!(det.scan(&hb).is_empty());
        }
        assert_eq!(det.stalls_detected, 0);
    }

    #[test]
    fn stall_is_flagged_once_per_episode() {
        let hb = Heartbeats::new(2);
        let mut det = StallDetector::new(2, 3);
        hb.beat(0); // core 1 never beats
        assert!(det.scan(&hb).is_empty()); // strike 1 for core 1, core 0 progressed
                                           // Core 0 stops too; both accrue strikes now.
        assert!(det.scan(&hb).is_empty());
        assert_eq!(det.scan(&hb), vec![1]); // core 1 reaches 3 strikes first
        assert_eq!(det.scan(&hb), vec![0]); // then core 0
                                            // Still stalled: not re-reported.
        assert!(det.scan(&hb).is_empty());
        assert_eq!(det.stalls_detected, 2);
        // Progress then stall again: a new episode is reported.
        hb.beat(1);
        assert!(det.scan(&hb).is_empty()); // progress clears the strikes
        assert!(det.scan(&hb).is_empty()); // strike 1
        assert!(det.scan(&hb).is_empty()); // strike 2
        assert_eq!(det.scan(&hb), vec![1]); // strike 3: new episode
        assert_eq!(det.stalls_detected, 3);
    }

    #[test]
    fn clear_restarts_the_count() {
        let hb = Heartbeats::new(1);
        let mut det = StallDetector::new(1, 2);
        assert!(det.scan(&hb).is_empty());
        det.clear(0);
        assert!(det.scan(&hb).is_empty()); // strike restarted at 1
        assert_eq!(det.scan(&hb), vec![0]);
    }

    #[test]
    fn heartbeats_are_shared_safely() {
        let hb = std::sync::Arc::new(Heartbeats::new(4));
        let handles: Vec<_> = (0..4)
            .map(|core| {
                let hb = hb.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        hb.beat(core);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for core in 0..4 {
            assert_eq!(hb.read(core), 1000);
        }
        // Out-of-range access is inert.
        hb.beat(99);
        assert_eq!(hb.read(99), 0);
    }
}
