//! Resource-fault injection: pool exhaustion, flow-table pressure, and
//! worker stall/panic, behind a trait whose disabled implementation is
//! a no-op.
//!
//! Resource verdicts are **stateless**: a packet's fate is
//! `splitmix64(seed ⊕ salt ⊕ key)` where `key` hashes the packet
//! bytes. No draw-stream state means the same packet gets the same
//! verdict whatever core, batch, or interleaving it arrives through —
//! the property the chaos matrix's cross-core digest identity depends
//! on. Worker faults are keyed by `(core, batch index)` instead; they
//! move *when* flushes happen, never *what* the flows carry.

use crate::rng::splitmix64;
use crate::spec::FaultSpec;

/// Domain-separation salts for the stateless verdicts.
const SALT_POOL_DRY: u64 = 0x504f_4f4c_0000_0001;
const SALT_TABLE_DENY: u64 = 0x5441_424c_0000_0002;

/// FNV-1a over a byte slice — the per-packet key for stateless
/// verdicts. Alloc-free.
#[inline]
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One stateless Bernoulli verdict at `ppm` parts-per-million.
#[inline]
#[must_use]
pub fn decide_ppm(seed: u64, salt: u64, key: u64, ppm: u32) -> bool {
    if ppm == 0 {
        return false;
    }
    splitmix64(seed ^ salt ^ key) % 1_000_000 < u64::from(ppm)
}

/// The resource-fault interface the engines consult. Every method
/// defaults to "no fault", so [`NoFaults`] is the empty impl and any
/// caller holding a disabled [`PlannedFaults`] pays one predicted
/// branch.
pub trait FaultInjector {
    /// Should the buffer pool pretend to be dry for this acquisition?
    /// `key` hashes the packet triggering it.
    #[inline]
    fn pool_dry(&self, _key: u64) -> bool {
        false
    }

    /// Should the flow table deny this insertion?
    #[inline]
    fn table_deny(&self, _key: u64) -> bool {
        false
    }

    /// Should the worker panic at the entry of this batch?
    #[inline]
    fn batch_panic(&self, _core: usize, _batch_idx: u64) -> bool {
        false
    }

    /// How long (wall ns) the worker should stall at the entry of this
    /// batch; 0 = no stall.
    #[inline]
    fn batch_stall_ns(&self, _core: usize, _batch_idx: u64) -> u64 {
        0
    }
}

/// The production injector: injects nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// A [`FaultSpec`]-driven injector. `Copy` and stateless, so engines
/// embed it by value; with `spec.enabled == false` it behaves exactly
/// like [`NoFaults`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannedFaults {
    /// The spec verdicts are drawn from.
    pub spec: FaultSpec,
}

impl PlannedFaults {
    /// Injector for `spec`.
    #[must_use]
    pub const fn new(spec: FaultSpec) -> Self {
        PlannedFaults { spec }
    }

    /// The inert injector (same behavior as [`NoFaults`]).
    #[must_use]
    pub const fn off() -> Self {
        PlannedFaults {
            spec: FaultSpec::off(),
        }
    }
}

impl FaultInjector for PlannedFaults {
    #[inline]
    fn pool_dry(&self, key: u64) -> bool {
        self.spec.enabled && decide_ppm(self.spec.seed, SALT_POOL_DRY, key, self.spec.pool_dry_ppm)
    }

    #[inline]
    fn table_deny(&self, key: u64) -> bool {
        self.spec.enabled
            && decide_ppm(
                self.spec.seed,
                SALT_TABLE_DENY,
                key,
                self.spec.table_deny_ppm,
            )
    }

    #[inline]
    fn batch_panic(&self, core: usize, batch_idx: u64) -> bool {
        if !self.spec.enabled || self.spec.panic_every_batches == 0 {
            return false;
        }
        // Offset by core so cores fail at different points; skip batch 0
        // so every worker processes something before its first death.
        batch_idx > 0 && (batch_idx + core as u64).is_multiple_of(self.spec.panic_every_batches)
    }

    #[inline]
    fn batch_stall_ns(&self, core: usize, batch_idx: u64) -> u64 {
        if !self.spec.enabled || self.spec.stall_every_batches == 0 {
            return 0;
        }
        if batch_idx > 0 && (batch_idx + core as u64).is_multiple_of(self.spec.stall_every_batches)
        {
            self.spec.stall_ns
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        let n = NoFaults;
        assert!(!n.pool_dry(1));
        assert!(!n.table_deny(2));
        assert!(!n.batch_panic(0, 100));
        assert_eq!(n.batch_stall_ns(0, 100), 0);
    }

    #[test]
    fn disabled_planned_faults_match_no_faults() {
        let p = PlannedFaults::new(FaultSpec {
            enabled: false,
            pool_dry_ppm: 1_000_000,
            table_deny_ppm: 1_000_000,
            panic_every_batches: 1,
            stall_every_batches: 1,
            stall_ns: 1,
            ..FaultSpec::off()
        });
        assert!(!p.pool_dry(1));
        assert!(!p.table_deny(1));
        assert!(!p.batch_panic(0, 7));
        assert_eq!(p.batch_stall_ns(0, 7), 0);
    }

    #[test]
    fn verdicts_are_stateless_and_keyed() {
        let spec = FaultSpec {
            enabled: true,
            seed: 0xABCD,
            pool_dry_ppm: 500_000,
            ..FaultSpec::off()
        };
        let p = PlannedFaults::new(spec);
        let q = PlannedFaults::new(spec);
        let mut fired = 0;
        for key in 0..1000u64 {
            let v = p.pool_dry(key);
            // Same key, same verdict — from a second injector instance
            // too (no hidden stream state).
            assert_eq!(v, p.pool_dry(key));
            assert_eq!(v, q.pool_dry(key));
            fired += usize::from(v);
        }
        assert!((350..650).contains(&fired), "{fired}");
    }

    #[test]
    fn pool_and_table_salts_are_independent() {
        let spec = FaultSpec {
            enabled: true,
            seed: 3,
            pool_dry_ppm: 500_000,
            table_deny_ppm: 500_000,
            ..FaultSpec::off()
        };
        let p = PlannedFaults::new(spec);
        let agree = (0..1000u64)
            .filter(|&k| p.pool_dry(k) == p.table_deny(k))
            .count();
        // Independent verdicts agree about half the time, not always.
        assert!((350..650).contains(&agree), "{agree}");
    }

    #[test]
    fn batch_panics_follow_the_schedule() {
        let p = PlannedFaults::new(FaultSpec {
            enabled: true,
            panic_every_batches: 5,
            ..FaultSpec::off()
        });
        let fired: Vec<u64> = (0..20).filter(|&b| p.batch_panic(0, b)).collect();
        assert_eq!(fired, vec![5, 10, 15]);
        // Core offset shifts the schedule.
        assert!(p.batch_panic(1, 4));
        assert!(!p.batch_panic(1, 5));
    }

    #[test]
    fn hash_bytes_separates_contents() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
    }
}
