//! Deterministic chaos for the PXGW datapath (DESIGN.md §12).
//!
//! The paper puts PXGW in the critical path of every flow crossing the
//! b-network border, so faults must *degrade* service, never break the
//! byte stream. This crate supplies the primitives the engines and the
//! chaos harness share:
//!
//! - [`XorShift64`] — the seeded generator every fault draw comes from.
//!   No wall clock anywhere: identical seeds give identical fault
//!   schedules, which is what makes the 10k-seed chaos matrix and the
//!   cross-core digest-identity checks possible.
//! - [`FaultSpec`] / [`FaultPlan`] — a `Copy` fault configuration and
//!   the stateful ingress applier that injects drop / duplicate /
//!   reorder / corrupt / truncate into a packet trace *before* RSS
//!   sharding, so the faulted trace is the same at any core count.
//! - [`FaultInjector`] / [`NoFaults`] / [`PlannedFaults`] — resource
//!   faults (pool exhaustion, flow-table pressure, worker stall/panic)
//!   decided *statelessly* per packet from a hash of the packet bytes
//!   and the seed. A packet gets the same verdict on 1 core or 8, so
//!   resource faults cannot perturb cross-core content identity. The
//!   disabled injector is a single predicted branch.
//! - [`DetBackoff`] — the jitter-free exponential backoff schedule the
//!   F-PMTUD prober and the PMTUD client retry on.
//! - [`Heartbeats`] / [`StallDetector`] — the supervisor primitives the
//!   parallel engine uses to detect and restart stalled workers.
//! - [`attack`] — seeded *adversarial* generators (vs. the merely
//!   unreliable network the fault plan models): TCP injection/overlap
//!   schedules, malformed caravan bundles with ground truth, and
//!   spoofed F-PMTUD report streams, all pure functions of a seed so
//!   the attack matrix replays identically at any core count.
//!
//! The fault primitives are dependency-free (the attack generators pull
//! in `px-wire` to build real checksummed packets) and never allocate on
//! the per-packet decision paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod backoff;
pub mod inject;
pub mod plan;
pub mod rng;
pub mod spec;
pub mod supervisor;

pub use backoff::DetBackoff;
pub use inject::{decide_ppm, hash_bytes, FaultInjector, NoFaults, PlannedFaults};
pub use plan::{FaultPlan, IngressStats};
pub use rng::{splitmix64, XorShift64};
pub use spec::{cause, FaultSpec};
pub use supervisor::{Heartbeats, StallDetector};
