// Fixture: unsafe without the required SAFETY comment.

fn naked_unsafe_block(p: *const u8) -> u8 {
    unsafe { *p }
}

// A comment that is not a SAFETY justification.
unsafe fn naked_unsafe_fn() {}

fn comment_too_far(p: *const u8) -> u8 {
    // SAFETY: this one is stranded by real code in between.
    let offset = 1;
    unsafe { *p.add(offset) }
}
