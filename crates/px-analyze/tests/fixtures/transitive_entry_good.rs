// Fixture: an entry point that sticks to the clean helper — the bad
// helpers exist in `transitive_helpers.rs` but stay unreachable, so
// the reachability pass keeps quiet.

pub fn push_into(out: &mut u64, a: u64, b: u64) {
    *out ^= clean_mix(a, b);
}
