// Fixture: malformed waiver usage — each one is itself a violation.

// px-analyze: allow(R1, reason = "fixture: nothing below violates R1")
fn unused_waiver() -> u8 {
    0
}

fn waiver_without_reason(x: Option<u8>) -> u8 {
    // px-analyze: allow(R1)
    x.unwrap()
}

fn waiver_with_empty_reason(x: Option<u8>) -> u8 {
    // px-analyze: allow(R1, reason = "")
    x.unwrap()
}

fn waiver_for_wrong_rule(x: Option<u8>) -> u8 {
    // px-analyze: allow(R2, reason = "fixture: wrong rule, unwrap stays")
    x.unwrap()
}
