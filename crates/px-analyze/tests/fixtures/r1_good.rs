// Fixture: panic-free equivalents of everything r1_bad.rs does, plus
// the constructs R1 deliberately permits.

fn no_unwrap(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

fn mapped(x: Option<u8>) -> u8 {
    x.map_or(0, |v| v + 1)
}

fn defaulted(x: Option<u8>) -> u8 {
    x.unwrap_or_default()
}

fn full_range_and_scalar(b: &[u8]) -> u8 {
    // Full-range slicing and scalar indexing cannot panic on length.
    let all = &b[..];
    if all.is_empty() {
        0
    } else {
        all[0]
    }
}

fn guarded(b: &[u8]) -> u8 {
    debug_assert!(!b.is_empty());
    b.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u8> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let b = [0u8; 8];
        let _ = &b[2..4];
    }
}
