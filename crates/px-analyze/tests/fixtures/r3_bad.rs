// Fixture: heap allocation inside emission-path functions.

struct Sink;

fn push_into(sink: &mut Sink) {
    let staging = Vec::new();
    drop(staging);
    drop(sink);
}

fn emit_pending(sink: &mut Sink) {
    let scratch = vec![0u8; 64];
    drop(scratch);
    drop(sink);
}

fn forward(b: &[u8]) -> Vec<u8> {
    b.to_vec()
}

fn finalize_emit(b: &[u8]) {
    let copy = b.to_owned();
    let boxed = Box::new(copy.len());
    let label = String::from("pkt");
    let msg = format!("{label}:{boxed}");
    drop(msg);
}

fn flush_all_into(buf: &Vec<u8>) -> Vec<u8> {
    buf.clone()
}
