// R6 fixture: well-behaved recovery code — preallocated spare buffers,
// counter bumps, early returns. No panic tokens, no allocation.

struct Gw {
    spare: Option<Buf>,
    degraded: bool,
    degraded_pkts: u64,
    backpressure_drops: u64,
}

impl Gw {
    fn degrade_forward(&mut self, pkt: &[u8]) -> Option<Buf> {
        if !self.degraded {
            self.degraded = true;
        }
        match self.spare.take() {
            Some(mut buf) => {
                self.degraded_pkts += 1;
                buf.extend_from_slice(pkt);
                Some(buf)
            }
            None => {
                self.backpressure_drops += 1;
                None
            }
        }
    }

    fn degrade_exit(&mut self) {
        self.degraded = false;
    }

    fn restart_worker(&mut self, returned: Buf) {
        // Re-arming the spare from a returned buffer: no allocation.
        self.spare = Some(returned);
    }
}

// A full-range slice cannot panic and stays legal in recovery code.
fn on_fault_inspect(pkt: &[u8]) -> usize {
    let body = &pkt[..];
    body.len()
}
