// Fixture: every R1 violation class, one per line group.

fn uses_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn uses_expect(x: Option<u8>) -> u8 {
    x.expect("present")
}

fn uses_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

fn uses_unreachable(v: u8) -> u8 {
    match v {
        0 => 1,
        _ => unreachable!(),
    }
}

fn uses_todo() {
    todo!()
}

fn range_slices(b: &[u8]) -> u8 {
    let head = &b[0..4];
    let tail = &b[4..];
    let front = &b[..4];
    head[0] ^ tail[0] ^ front[0]
}
