//! Fixture crate root violating R4 three ways: no unsafe gate, no
//! missing_docs warn, and a manifest without `[lints] workspace = true`.

pub fn noop() {}
