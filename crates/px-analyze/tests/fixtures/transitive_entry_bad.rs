// Fixture: hot-module entry points that are spotless on their own
// tokens but launder a panic and an allocation through the cold
// helpers in `transitive_helpers.rs`.

pub fn push_into(out: &mut usize, pkt: &[u8]) {
    *out += scale_len(pkt);
}

pub fn flush_into(out: &mut Vec<u8>, pkt: &[u8]) {
    let w = widen(pkt);
    out.extend(w);
}
