// Fixture: constructs that defeat naive text matching. A correct
// tokenizer reports ZERO violations here even under hot-path rules.

fn strings_are_not_code() -> &'static str {
    "x.unwrap() and panic! and b[1..3] inside a string"
}

fn raw_strings() -> &'static str {
    r#"even with "quotes": y.expect("msg") and vec![0; 9]"#
}

fn raw_strings_more_hashes() -> &'static str {
    r##"nested "#raw"# content: z.unwrap()"##
}

fn byte_strings() -> &'static [u8] {
    b"bytes with .unwrap() text"
}

/* block comment mentioning .unwrap() and unsafe { } */
fn comments_are_not_code() {
    // line comment: slice[0..4].to_vec().expect("no")
    /* nested /* block .unwrap() */ still a comment */
}

fn lifetimes_are_not_chars<'a>(x: &'a [u8]) -> &'a [u8] {
    let _c = 'x';
    let _esc = '\'';
    let _byte = b'\'';
    x
}

fn full_range_is_fine(b: &[u8]) -> &[u8] {
    &b[..]
}

fn numbers_next_to_ranges(b: &[u8]) -> u8 {
    let idx = 1.0_f64 as usize;
    b.get(idx).copied().unwrap_or(0)
}
