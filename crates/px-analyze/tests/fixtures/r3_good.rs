// Fixture: allocation outside the emission set is fine, and emission
// functions that only reuse buffers are fine.

struct Pool {
    free: Vec<Vec<u8>>,
}

// Not an emission-path function: allocation allowed.
fn warm_up(pool: &mut Pool) {
    for _ in 0..8 {
        pool.free.push(Vec::with_capacity(2048));
    }
}

// Emission path, but only pool reuse — no allocator traffic.
fn push_into(pool: &mut Pool, payload: &[u8]) -> usize {
    if let Some(mut buf) = pool.free.pop() {
        buf.clear();
        buf.extend_from_slice(payload);
        let n = buf.len();
        pool.free.push(buf);
        n
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate_in_emission_names() {
        fn emit() -> Vec<u8> {
            vec![1, 2, 3]
        }
        assert_eq!(emit().len(), 3);
    }
}
