// Fixture: well-formed waivers that should fully suppress.

fn waived_unwrap(x: Option<u8>) -> u8 {
    // px-analyze: allow(R1, reason = "fixture: init-time invariant, cannot fail")
    x.unwrap()
}

fn waived_same_line(x: Option<u8>) -> u8 {
    x.unwrap() // px-analyze: allow(R1, reason = "fixture: same-line waiver")
}

fn waived_two_rules(b: &[u8]) -> Vec<u8> {
    // px-analyze: allow(R1, R3, reason = "fixture: one waiver, two rules")
    b[0..2].to_vec()
}

fn waived_over_attribute(x: Option<u8>) -> u8 {
    // px-analyze: allow(R1, reason = "fixture: waiver skips the attribute line")
    #[allow(unused_variables)]
    x.unwrap()
}

// Regression: a waiver directly above the attributes of the function it
// annotates must skip every attribute line — outer, stacked, and inner
// (`#![…]`) forms — before binding to the first code line.

// px-analyze: allow(R1, reason = "fixture: waiver skips the fn attribute")
#[inline]
fn waived_over_fn_attribute(x: Option<u8>) -> u8 { x.unwrap() }

// px-analyze: allow(R1, reason = "fixture: waiver skips stacked attributes")
#[inline]
#[allow(clippy::len_zero)]
fn waived_over_stacked_attributes(b: &[u8]) -> u8 { b[1..3][0] }

fn waived_over_inner_attribute(x: Option<u8>) -> u8 {
    // px-analyze: allow(R1, reason = "fixture: waiver skips the inner attribute")
    #![allow(unused)]
    x.unwrap()
}
