// Fixture: payload copies on the split emission path. Analyzed as
// crates/core/src/split.rs, every one of these is an R7 violation —
// the split engine emits scatter-gather views, so emission functions
// must never re-copy payload bytes.

struct Sink {
    buf: Vec<u8>,
}

// Emission path (`_into` suffix): both copy flavours flagged.
fn push_to_into(sink: &mut Sink, payload: &[u8]) {
    sink.buf.extend_from_slice(payload);
}

// Emission path (named sink entry point).
fn push_sg(sink: &mut Sink, payload: &[u8]) {
    sink.buf.copy_from_slice(payload);
}

// Emission path (PacketSink::accept shape).
fn accept(sink: &mut Sink, payload: &[u8]) {
    sink.buf.extend_from_slice(payload);
}
