// Fixture: nondeterminism laundered through helpers — the emission
// entry is clean on its own tokens, but R8 reaches the wall clock, the
// env read, and the default-hasher map through the call graph.

pub fn push_into(out: &mut Vec<u64>) {
    stamp(out);
}

fn stamp(out: &mut Vec<u64>) {
    let dedup: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let _ = dedup;
    out.push(seed());
}

fn seed() -> u64 {
    let t = std::time::Instant::now();
    let e = std::env::var("PX_SEED").ok();
    let n = e.map(|s| s.len() as u64).unwrap_or(1);
    t.elapsed().as_nanos() as u64 ^ n
}
