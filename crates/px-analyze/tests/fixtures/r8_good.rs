// Fixture: a deterministic emission path next to Parallel-only code.
// The heartbeat uses the wall clock, but no per-packet entry reaches
// it, so R8 stays quiet.

pub fn push_into(out: &mut [u64], v: u64) {
    fold(out, v);
}

fn fold(out: &mut [u64], v: u64) {
    if let Some(slot) = out.first_mut() {
        *slot = mix(*slot, v);
    }
}

fn mix(a: u64, b: u64) -> u64 {
    a ^ b.rotate_left(17)
}

/// Parallel-mode heartbeat: entered from the runtime thread, never from
/// the per-packet entries, so the clock read is out of R8's reach.
pub fn heartbeat_nanos() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
