// R6 fixture: fault-handling functions (`degrade*`, `on_fault*`,
// `restart_worker*`) must be panic-free AND alloc-free in ANY module —
// this file is analyzed under a cold-module path and must still flag.

struct Gw {
    spare: Option<Vec<u8>>,
    degraded_pkts: u64,
}

impl Gw {
    fn degrade_forward(&mut self, pkt: &[u8]) {
        // Alloc in a recovery path: the allocator may be the resource
        // that is exhausted.
        let copy = pkt.to_vec();
        // Panicking range slice in a recovery path.
        let _head = &copy[..20];
        self.degraded_pkts += 1;
    }

    fn on_fault_pool_dry(&mut self) {
        // Unwrap in a recovery path.
        let buf = self.spare.take().unwrap();
        drop(buf);
    }

    fn restart_worker_in_place(&mut self) {
        let scratch: Vec<u8> = Vec::new();
        drop(scratch);
        panic!("restart failed");
    }
}

// Not a fault-handling function: in a cold module nothing applies.
fn helper(x: Option<u8>) -> u8 {
    x.unwrap()
}
