// Fixture: blocking primitives laundered into the per-packet path —
// a lock one call deep, a channel round-trip two calls deep.

pub fn push_into(out: &mut Vec<u64>, v: u64) {
    note_stat(out, v);
}

static GAUGE: std::sync::Mutex<u64> = std::sync::Mutex::new(0);

fn note_stat(out: &mut Vec<u64>, v: u64) {
    if let Ok(mut g) = GAUGE.lock() {
        *g += 1;
    }
    out.push(tally(v));
}

fn tally(v: u64) -> u64 {
    let (tx, rx) = std::sync::mpsc::channel();
    let _ = tx.send(v);
    rx.recv().unwrap_or(0)
}
