// Fixture: properly documented unsafe.

fn documented_block(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

// SAFETY: no preconditions; the body touches nothing.
unsafe fn documented_fn() {}

fn block_comment_form(p: *const u8) -> u8 {
    /* SAFETY: caller guarantees `p` is valid for reads. */
    unsafe { *p }
}
