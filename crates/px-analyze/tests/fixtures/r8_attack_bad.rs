// Fixture: a "seeded" attack generator that cheats. Analyzed under the
// attack-generator module path every function here is an R8 entry — the
// schedule must be a pure function of the seed, because the attack
// matrix replays it at four core counts and compares digests. The wall
// clock is laundered through a helper, the env override and the
// RandomState set sit in the entries themselves; all three surface
// even though nothing is named like an emission path.

pub fn tcp_attack_trace(seed: u64, n: usize) -> Vec<u64> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(seed ^ jitter(i));
    }
    out
}

fn jitter(i: usize) -> u64 {
    // Wall clock inside a generator helper: replays diverge.
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64 + i as u64
}

pub fn spoof_report_stream(seed: u64, n: usize) -> Vec<u32> {
    // Env read: the schedule now depends on ambient machine state.
    let boost = std::env::var("PX_ATTACK_BOOST").is_ok();
    // Default-hasher set: iteration order varies per process.
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    let mut s = seed | 1;
    for _ in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let id = (s >> 32) as u32;
        if seen.insert(id) {
            out.push(if boost { id | 1 } else { id });
        }
    }
    out
}
