// Fixture: the live endpoint sits on the control plane. `serve_stats`
// binds a listener, but no per-packet entry reaches it — and the hot
// path's own `.accept()` is an emission method (PacketSink-style), not
// a socket accept, so it must never register as a serving fact.

pub fn push_into(out: &mut Vec<u64>, v: u64) {
    out.push(v.rotate_left(7));
}

pub struct Sink {
    total: u64,
}

impl Sink {
    pub fn accept(&mut self, pkt: &[u64]) {
        self.total += pkt.len() as u64;
    }
}

pub fn serve_stats() -> std::io::Result<std::net::TcpListener> {
    std::net::TcpListener::bind("127.0.0.1:0")
}
