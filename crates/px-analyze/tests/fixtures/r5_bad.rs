// R5 fixture: five distinct allocation classes inside recording
// functions. Deliberately free of R1 material (no unwrap, no partial
// slicing) so the count isolates R5.

pub struct Rec {
    scratch: u64,
}

impl Rec {
    pub fn record(&mut self, _v: u64) {
        let v: Vec<u8> = Vec::new(); // 1: ctor allocation
        self.scratch = v.capacity() as u64;
    }

    pub fn record_event(&mut self, data: &[u8]) {
        let copy = data.to_vec(); // 2: slice copy
        self.scratch = copy.len() as u64;
    }

    pub fn observe_batch(&mut self, wall: u64) {
        let label = format!("{wall}"); // 3: string formatting
        self.scratch = label.len() as u64;
    }

    pub fn observe_dwell(&mut self, tag: &String) {
        let owned = tag.clone(); // 4: clone
        self.scratch = owned.len() as u64;
    }

    pub fn push(&mut self, v: u64) {
        let boxed = Box::new(v); // 5: boxing
        self.scratch = *boxed;
    }

    // Not a recording function: allocation here is fine under R5.
    pub fn drain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        out.push(self.scratch);
        out
    }
}
