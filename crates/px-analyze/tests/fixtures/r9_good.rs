// Fixture: the lock lives at the batch boundary, where it belongs.
// `process_batch` merges stats once per batch; the per-packet entry it
// drives stays lock-free, so R9 has nothing to say.

static STATS: std::sync::Mutex<u64> = std::sync::Mutex::new(0);

pub fn process_batch(pkts: &[u64], out: &mut Vec<u64>) {
    for &p in pkts {
        push_into(out, p);
    }
    if let Ok(mut g) = STATS.lock() {
        *g += out.len() as u64;
    }
}

pub fn push_into(out: &mut Vec<u64>, v: u64) {
    out.push(v.rotate_left(3));
}
