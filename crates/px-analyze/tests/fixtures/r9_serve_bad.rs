// Fixture: sockets laundered into the per-packet path — a listener
// bound one call deep, a dial-out two calls deep. Serving belongs on
// the control plane (px-obs::serve), never inside an emission fn.

pub fn push_into(out: &mut Vec<u64>, v: u64) {
    export_stat(v);
    out.push(v);
}

fn export_stat(v: u64) {
    if let Ok(l) = std::net::TcpListener::bind("127.0.0.1:0") {
        drop(l);
    }
    notify(v);
}

fn notify(v: u64) {
    if let Ok(s) = std::net::TcpStream::connect("127.0.0.1:9") {
        drop((s, v));
    }
}
