// Fixture: helpers in a cold module that would launder hot-path
// violations. Nothing here is flagged lexically — the panic and the
// allocation only matter when an emission entry can reach them.

pub fn scale_len(pkt: &[u8]) -> usize {
    depth_one(pkt)
}

fn depth_one(pkt: &[u8]) -> usize {
    first_len(pkt)
}

fn first_len(pkt: &[u8]) -> usize {
    pkt.first().map(|&b| b as usize).unwrap()
}

pub fn widen(pkt: &[u8]) -> Vec<u8> {
    staging(pkt)
}

fn staging(pkt: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(pkt.len() * 2);
    v.extend(pkt);
    v
}

pub fn clean_mix(a: u64, b: u64) -> u64 {
    a ^ b.rotate_left(9)
}
