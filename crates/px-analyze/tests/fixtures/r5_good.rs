// R5 fixture: allocation-free recording functions, plus allocating
// code that is legitimately outside the recording paths. Analyzed as a
// px-obs module path, where R1 and R5 both apply — so nothing here may
// unwrap, slice with partial ranges, or allocate inside record*/
// observe*/push.

pub struct Ring {
    buf: [u64; 8],
    next: usize,
}

impl Ring {
    // Recording side: pure stores and arithmetic.
    pub fn push(&mut self, v: u64) {
        if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = v;
        }
        self.next = (self.next + 1) % self.buf.len();
    }

    pub fn record(&mut self, v: u64) {
        self.push(v.wrapping_mul(3));
    }

    pub fn observe_batch(&mut self, wall: u64, pkts: u64) {
        if pkts > 0 {
            self.record(wall / pkts);
        }
    }

    // Drain side: may allocate — it runs after the run, not per packet.
    pub fn drain(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.buf.len());
        for v in &self.buf {
            out.push(*v);
        }
        out
    }

    pub fn render(&self) -> String {
        format!("{} entries", self.buf.len())
    }
}
