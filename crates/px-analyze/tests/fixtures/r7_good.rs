// Fixture: a copy-free split emission path, plus the places where
// copying remains legitimate — setup/rebuild helpers outside the
// emission set, test code, and an explicitly waived materialising
// fallback.

struct View<'a> {
    header: &'a [u8],
    payload: &'a [u8],
}

struct Sink {
    total: usize,
    scratch: Vec<u8>,
}

// Emission path: consumes the view's segments without flattening.
fn push_sg(sink: &mut Sink, view: &View<'_>) {
    sink.total += view.header.len() + view.payload.len();
}

// Emission path: forwards segment lengths only.
fn push_to_into(sink: &mut Sink, view: &View<'_>) {
    push_sg(sink, view);
}

// Not an emission-path function: staging copies are allowed.
fn rebuild(sink: &mut Sink, payload: &[u8]) {
    sink.scratch.extend_from_slice(payload);
}

// A deliberate materialising fallback, documented and waived.
fn accept(sink: &mut Sink, view: &View<'_>) {
    // px-analyze: allow(R7, reason = "compat sink for consumers that need flat packets; the copy is the contract")
    sink.scratch.extend_from_slice(view.payload);
    sink.total += view.payload.len();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_copy_in_emission_names() {
        fn push_sg(buf: &mut Vec<u8>, payload: &[u8]) {
            buf.extend_from_slice(payload);
        }
        let mut b = Vec::new();
        push_sg(&mut b, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
    }
}
