// Fixture: a properly seeded attack generator — every draw comes from
// the caller's seed through a splitmix/xorshift chain, so identical
// seeds give bit-identical schedules at any core count. All functions
// are R8 entries under the attack-generator module path; none trips.

pub fn tcp_attack_trace(seed: u64, n: usize) -> Vec<u64> {
    let mut s = splitmix(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(step(&mut s));
    }
    out
}

pub fn spoof_report_stream(seed: u64, n: usize) -> Vec<u32> {
    let mut s = splitmix(seed ^ 0x9E37_79B9);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((step(&mut s) >> 32) as u32);
    }
    out
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

fn step(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}
