//! Self-tests: run the analyzer over known-bad and known-good fixture
//! files and assert exactly the expected findings. The fixture directory
//! is excluded from the real workspace walk, so the deliberately broken
//! code here never pollutes `px-analyze -- check`.

use px_analyze::{rules, Config, Rule};
use std::path::Path;

/// A path inside the R1+R3 hot-path set — fixtures analyzed under hot
/// rules borrow this name.
const HOT: &str = "crates/core/src/merge.rs";
/// A path outside every hot-path set — only R2 applies.
const COLD: &str = "crates/px-sim/src/stats.rs";
/// A path inside the R5 (and R1) recording-discipline set.
const OBS: &str = "crates/px-obs/src/recorder.rs";
/// The R7 copy-freedom module: the split engine's emission path.
const SPLIT: &str = "crates/core/src/split.rs";
/// The seeded attack-generator module: every fn is an R8 entry.
const ATTACK: &str = "crates/px-faults/src/attack.rs";

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn check(as_path: &str, name: &str) -> Vec<px_analyze::Violation> {
    rules::check_source(&Config::default(), as_path, &fixture(name))
}

fn count_rule(vs: &[px_analyze::Violation], rule: Rule) -> usize {
    vs.iter().filter(|v| v.rule == Some(rule)).count()
}

fn count_waiver_errors(vs: &[px_analyze::Violation]) -> usize {
    vs.iter().filter(|v| v.rule.is_none()).count()
}

#[test]
fn r1_bad_flags_every_panic_class() {
    let vs = check(HOT, "r1_bad.rs");
    // unwrap, expect, panic!, unreachable!, todo!, and three range slices.
    assert_eq!(count_rule(&vs, Rule::R1), 8, "{vs:#?}");
    assert_eq!(vs.len(), 8, "{vs:#?}");
    // Same file in a cold module: R1 does not apply.
    assert!(check(COLD, "r1_bad.rs").is_empty());
}

#[test]
fn r1_good_is_clean_even_in_hot_modules() {
    let vs = check(HOT, "r1_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r2_flags_undocumented_unsafe_everywhere() {
    let vs = check(COLD, "r2_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R2), 3, "{vs:#?}");
    let vs = check(COLD, "r2_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r3_flags_allocation_in_emission_functions() {
    let vs = check(HOT, "r3_bad.rs");
    // Vec::new, vec!, to_vec, to_owned, Box::new, String::from,
    // format!, clone.
    assert_eq!(count_rule(&vs, Rule::R3), 8, "{vs:#?}");
    let vs = check(HOT, "r3_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r5_flags_allocation_in_recording_functions() {
    let vs = check(OBS, "r5_bad.rs");
    // Vec::new, to_vec, format!, clone, Box::new — one per recording fn.
    assert_eq!(count_rule(&vs, Rule::R5), 5, "{vs:#?}");
    assert_eq!(vs.len(), 5, "{vs:#?}");
    // Outside the px-obs recording modules nothing applies: the
    // function names are not emission paths, so R3 stays silent too.
    assert!(check(COLD, "r5_bad.rs").is_empty());
    assert!(check(HOT, "r5_bad.rs").is_empty());
}

#[test]
fn r5_good_recording_code_is_clean() {
    let vs = check(OBS, "r5_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r6_flags_fault_handling_functions_in_any_module() {
    // Cold module: R1/R3 are silent, but the fault-handling functions
    // are still held to R6 — to_vec, range slice, unwrap, Vec::new,
    // panic!. The non-recovery helper's unwrap stays legal.
    let vs = check(COLD, "r6_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R6), 5, "{vs:#?}");
    assert_eq!(vs.len(), 5, "{vs:#?}");
}

#[test]
fn r6_yields_to_r1_in_hot_modules_but_keeps_alloc_checks() {
    // Hot module: the panic set reports as R1 (module-wide rule wins,
    // so existing R1 waivers keep their meaning) — unwrap, slice,
    // panic!, plus the helper's unwrap. The allocations inside the
    // recovery functions still report as R6: they are not emission
    // functions, so R3 never covered them.
    let vs = check(HOT, "r6_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R1), 4, "{vs:#?}");
    assert_eq!(count_rule(&vs, Rule::R6), 2, "{vs:#?}");
}

#[test]
fn r6_good_recovery_code_is_clean() {
    let vs = check(COLD, "r6_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
    let vs = check(HOT, "r6_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r7_flags_payload_copies_in_split_emission_functions() {
    let vs = check(SPLIT, "r7_bad.rs");
    // extend_from_slice in push_to_into, copy_from_slice in push_sg,
    // extend_from_slice in accept.
    assert_eq!(count_rule(&vs, Rule::R7), 3, "{vs:#?}");
    assert_eq!(vs.len(), 3, "{vs:#?}");
    // Outside the split module the same code is not R7's business.
    assert!(check(HOT, "r7_bad.rs").is_empty());
    assert!(check(COLD, "r7_bad.rs").is_empty());
}

#[test]
fn r7_good_split_emission_is_clean() {
    let vs = check(SPLIT, "r7_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn well_formed_waivers_suppress_without_residue() {
    let vs = check(HOT, "waivers.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn malformed_waivers_are_themselves_violations() {
    let vs = check(HOT, "waivers_bad.rs");
    // Three unwraps survive (no-reason ×2, wrong-rule ×1)…
    assert_eq!(count_rule(&vs, Rule::R1), 3, "{vs:#?}");
    // …and four waiver-hygiene errors: one unused, two missing reasons,
    // one unused-because-wrong-rule.
    assert_eq!(count_waiver_errors(&vs), 4, "{vs:#?}");
}

#[test]
fn tokenizer_edge_cases_produce_no_false_positives() {
    let vs = check(HOT, "tokenizer_edgecases.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r4_flags_bare_crate_root_and_manifest() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini");
    let report = px_analyze::run_check(&Config::default(), &root).expect("walk mini fixture");
    assert_eq!(report.files_checked, 1);
    assert_eq!(
        count_rule(&report.violations, Rule::R4),
        3,
        "{:#?}",
        report.violations
    );
}

#[test]
fn workspace_walk_skips_fixtures_and_vendor() {
    // Running over the real workspace from the analyzer's own tests must
    // be clean: this is the same gate CI enforces.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = px_analyze::run_check(&Config::default(), &root).expect("walk workspace");
    assert!(report.ok(), "workspace not clean: {:#?}", report.violations);
    // The deliberately broken fixtures were not analyzed.
    assert!(report
        .violations
        .iter()
        .all(|v| !v.file.contains("fixtures")));
}

#[test]
fn json_report_shape() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini");
    let report = px_analyze::run_check(&Config::default(), &root).expect("walk mini fixture");
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"px-analyze\""));
    assert!(json.contains("\"violation_count\": 3"));
    assert!(json.contains("\"rule\": \"R4\""));
}

/// Analyzes several fixture files as one unit — exercises cross-file
/// reachability, which `check_source`'s single-file wrapper cannot.
fn check_pair(files: &[(&str, &str)]) -> Vec<px_analyze::Violation> {
    let sources: Vec<px_analyze::SourceFile> = files
        .iter()
        .map(|(path, name)| px_analyze::SourceFile {
            rel_path: path.to_string(),
            src: fixture(name),
            unit: "solo".to_string(),
            aux: false,
        })
        .collect();
    rules::analyze(&Config::default(), &sources, &px_analyze::DepMap::default()).0
}

#[test]
fn r8_bad_flags_laundered_nondeterminism_with_blame_chains() {
    let vs = check(HOT, "r8_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R8), 3, "{vs:#?}");
    assert_eq!(vs.len(), 3, "{vs:#?}");
    // The deepest finding names both call edges between entry and clock.
    let deep = vs
        .iter()
        .find(|v| v.message.contains("Instant::now"))
        .expect("wall-clock finding");
    assert_eq!(deep.chain, vec!["push_into", "stamp", "seed"], "{vs:#?}");
}

#[test]
fn r8_good_parallel_only_clock_is_out_of_reach() {
    let vs = check(HOT, "r8_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r8_attack_bad_flags_every_fn_of_a_generator_module() {
    // Under the attack-generator module path every function is an R8
    // entry: the laundered wall clock, the env read, and the
    // default-hasher set all surface — no emission-style names needed.
    let vs = check(ATTACK, "r8_attack_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R8), 3, "{vs:#?}");
    assert_eq!(vs.len(), 3, "{vs:#?}");
    // The same file in a cold module has no R8 entries at all.
    assert!(check(COLD, "r8_attack_bad.rs").is_empty());
}

#[test]
fn r8_attack_good_seeded_generators_are_clean() {
    let vs = check(ATTACK, "r8_attack_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r9_bad_flags_blocking_reachable_from_per_packet_entries() {
    let vs = check(HOT, "r9_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R9), 3, "{vs:#?}");
    assert_eq!(vs.len(), 3, "{vs:#?}");
    let recv = vs
        .iter()
        .find(|v| v.message.contains("recv"))
        .expect("blocking-recv finding");
    assert_eq!(
        recv.chain,
        vec!["push_into", "note_stat", "tally"],
        "{vs:#?}"
    );
}

#[test]
fn r9_good_locks_at_the_batch_boundary_are_allowed() {
    let vs = check(HOT, "r9_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn r9_serve_bad_flags_sockets_reachable_from_per_packet_entries() {
    let vs = check(HOT, "r9_serve_bad.rs");
    assert_eq!(count_rule(&vs, Rule::R9), 2, "{vs:#?}");
    assert_eq!(vs.len(), 2, "{vs:#?}");
    let dial = vs
        .iter()
        .find(|v| v.message.contains("TcpStream::connect"))
        .expect("dial-out finding");
    assert_eq!(
        dial.chain,
        vec!["push_into", "export_stat", "notify"],
        "{vs:#?}"
    );
    assert!(dial.message.contains("control plane"), "{vs:#?}");
}

#[test]
fn r9_serve_good_control_plane_listener_and_hot_accept_are_clean() {
    let vs = check(HOT, "r9_serve_good.rs");
    assert!(vs.is_empty(), "{vs:#?}");
}

#[test]
fn transitive_laundering_is_flagged_across_files_with_chains() {
    let vs = check_pair(&[
        (HOT, "transitive_entry_bad.rs"),
        (COLD, "transitive_helpers.rs"),
    ]);
    assert_eq!(count_rule(&vs, Rule::R1), 1, "{vs:#?}");
    assert_eq!(count_rule(&vs, Rule::R3), 1, "{vs:#?}");
    assert_eq!(vs.len(), 2, "{vs:#?}");
    let r1 = vs.iter().find(|v| v.rule == Some(Rule::R1)).unwrap();
    assert_eq!(
        r1.chain,
        vec!["push_into", "scale_len", "depth_one", "first_len"],
        "{vs:#?}"
    );
    assert!(
        r1.file.ends_with("stats.rs"),
        "finding lands on the helper file: {vs:#?}"
    );
    let r3 = vs.iter().find(|v| v.rule == Some(Rule::R3)).unwrap();
    assert_eq!(r3.chain, vec!["flush_into", "widen", "staging"], "{vs:#?}");
}

#[test]
fn transitive_clean_entry_ignores_unreachable_bad_helpers() {
    let vs = check_pair(&[
        (HOT, "transitive_entry_good.rs"),
        (COLD, "transitive_helpers.rs"),
    ]);
    assert!(vs.is_empty(), "{vs:#?}");
}
