//! A hand-rolled, lossless-enough Rust lexer for static analysis.
//!
//! This is not a compiler front end: it produces exactly the token
//! stream the rules in [`crate::rules`] need — identifiers, punctuation,
//! comments (with their text, so `// SAFETY:` and waiver comments can be
//! recognised), and opaque literals — with correct line numbers. The
//! hard part it does take seriously is *what is code and what is not*:
//!
//! * string literals, including raw strings `r#"…"#` with any number of
//!   `#`s, byte strings, and escape sequences;
//! * block comments with arbitrary nesting (`/* /* */ */`);
//! * lifetimes vs char literals (`'a` vs `'a'` vs `'\''`).
//!
//! An `unwrap` inside a doc comment or a string must never be reported,
//! and one hidden behind a raw string delimiter must never be missed.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `unsafe`, `fn`, …).
    Ident(String),
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime(String),
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// The `..` token (also emitted for the `..` of `..=` and `...`).
    DotDot,
    /// A `//…` comment; the text excludes the leading slashes.
    LineComment(String),
    /// A `/*…*/` comment (possibly nested); the text excludes the
    /// delimiters. The token's `line` is the line the comment *ends* on.
    BlockComment(String),
    /// Any string, byte-string, or char literal (content discarded).
    Literal,
    /// A numeric literal (content discarded).
    Num,
}

/// A token plus the 1-indexed line it appears on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: Tok,
    /// 1-indexed source line (for multi-line block comments, the line
    /// the comment ends on — the line adjacency rules care about).
    pub line: u32,
}

/// Lexes `src` into a token stream. Unterminated constructs (string,
/// block comment) consume the rest of the input rather than erroring:
/// the analyzer's job is to look at real, compiling code.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Counts newlines in b[from..to] into `line`.
    fn count_lines(b: &[u8], from: usize, to: usize, line: &mut u32) {
        for &c in b.iter().take(to).skip(from) {
            if c == b'\n' {
                *line += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = String::from_utf8_lossy(&b[start..j]).into_owned();
                toks.push(Token {
                    kind: Tok::LineComment(text),
                    line,
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end_text = j.saturating_sub(2).max(start);
                count_lines(b, i, j, &mut line);
                let text = String::from_utf8_lossy(&b[start..end_text]).into_owned();
                toks.push(Token {
                    kind: Tok::BlockComment(text),
                    line,
                });
                i = j;
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                toks.push(Token {
                    kind: Tok::Literal,
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_string(b, i) => {
                let lit_line = line;
                i = skip_prefixed_literal(b, i, &mut line);
                toks.push(Token {
                    kind: Tok::Literal,
                    line: lit_line,
                });
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` followed by
                // an identifier NOT closed by another `'` (`'a'` is a
                // char, `'a` is a lifetime; `'\n'` is always a char).
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    let name = String::from_utf8_lossy(&b[i + 1..j]).into_owned();
                    toks.push(Token {
                        kind: Tok::Lifetime(name),
                        line,
                    });
                    i = j;
                } else {
                    i = skip_char_literal(b, i, &mut line);
                    toks.push(Token {
                        kind: Tok::Literal,
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let name = String::from_utf8_lossy(&b[i..j]).into_owned();
                toks.push(Token {
                    kind: Tok::Ident(name),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.'
                        && b.get(j + 1) != Some(&b'.')
                        && b.get(j + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // `1.5` continues the number; `1..5` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Token {
                    kind: Tok::Num,
                    line,
                });
                i = j;
            }
            b'.' if b.get(i + 1) == Some(&b'.') => {
                toks.push(Token {
                    kind: Tok::DotDot,
                    line,
                });
                i += 2;
                if b.get(i) == Some(&b'=') || b.get(i) == Some(&b'.') {
                    i += 1; // swallow the `=` of `..=` / third dot of `...`
                }
            }
            _ => {
                toks.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Whether `b[i..]` starts a raw/byte string (`r"`, `r#`, `b"`, `br`,
/// `b'`) rather than an identifier beginning with `r`/`b`.
fn starts_raw_or_string(b: &[u8], i: usize) -> bool {
    matches!(
        &b[i..],
        [b'r', b'"', ..]
            | [b'r', b'#', ..]
            | [b'b', b'"', ..]
            | [b'b', b'\'', ..]
            | [b'b', b'r', b'"', ..]
            | [b'b', b'r', b'#', ..]
    )
}

/// Skips a literal that starts with an `r`/`b`/`br` prefix at `i`;
/// returns the index just past it.
fn skip_prefixed_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    // Consume the prefix letters.
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        // `b'x'` byte char: delegate to the char skipper.
        if b[i] == b'b' && b.get(i + 1) == Some(&b'\'') {
            return skip_char_literal(b, i + 1, line);
        }
        if b.get(i + 1) == Some(&b'"') || b.get(i + 1) == Some(&b'#') {
            i += 1;
            break;
        }
        i += 1;
    }
    if b.get(i) == Some(&b'#') || (i > 0 && b[i - 1] == b'r' && b.get(i) == Some(&b'"')) {
        // Raw string: count the `#`s, then scan for `"` + that many `#`s.
        let mut hashes = 0usize;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        loop {
            if i >= b.len() {
                return i;
            }
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"' {
                let mut k = 0usize;
                while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
    }
    // Plain (byte) string.
    skip_string(b, i, line)
}

/// Skips a `"…"` string starting at the opening quote index; returns the
/// index just past the closing quote.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'…'` char literal starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_char_literal(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Whether the `'` at `i` begins a lifetime (vs a char literal).
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false; // `'\n'`, `'0'`… are chars
    }
    // Scan the identifier; a closing `'` right after makes it a char
    // literal ('a'), anything else a lifetime ('a, 'static).
    let mut j = i + 1;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_code() {
        let src = r#"let s = "x.unwrap()"; s.len();"#;
        assert_eq!(idents(src), ["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " and .unwrap()"#; done();"##;
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ code()";
        let toks = lex(src);
        assert!(matches!(toks[0].kind, Tok::BlockComment(_)));
        assert_eq!(idents(src), ["code"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Lifetime(_)))
            .count();
        let chars = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Literal))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_advance_through_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb\n\"x\ny\"\nc";
        let toks = lex(src);
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.kind == Tok::Ident(name.into()))
                .map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }

    #[test]
    fn dotdot_is_one_token_and_numbers_split_around_it() {
        let toks = lex("x[1..20]; y[a..=b]; z[..];");
        let dd = toks.iter().filter(|t| t.kind == Tok::DotDot).count();
        assert_eq!(dd, 3);
    }

    #[test]
    fn byte_char_with_escaped_quote() {
        assert_eq!(idents(r"let q = b'\''; next()"), ["let", "q", "next"]);
    }

    #[test]
    fn line_comment_text_captured() {
        let toks = lex("// SAFETY: fine\nunsafe {}");
        assert_eq!(toks[0].kind, Tok::LineComment(" SAFETY: fine".into()));
        assert_eq!(toks[1].kind, Tok::Ident("unsafe".into()));
    }
}
