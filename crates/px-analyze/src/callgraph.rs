//! Workspace call-graph construction for interprocedural rule scoping.
//!
//! One pass over the token stream per file extracts every function
//! definition (with its `impl`/`trait` owner, lexical nesting, and
//! `#[cfg(test)]` status), every call site (free, method, path-qualified,
//! UFCS), and every rule-relevant *fact* (panic sources, allocations,
//! payload copies, nondeterminism sources, blocking operations). The
//! rule layer in `rules.rs` then builds a [`CallGraph`] over all files
//! and decides which facts matter by *reachability* from rule entry
//! points, producing blame chains like
//! `push_into → combine_at_offset → fold_sum`.
//!
//! Resolution is name-based approximation, not type inference:
//!
//! * a method call `.m(…)` resolves to every non-test def named `m`
//!   that lives in some `impl`/`trait` block — unless `m` is on the
//!   [`AMBIENT_METHODS`] denylist of ubiquitous std names (`.push(`,
//!   `.get(`, `.clone(`…) whose edges would wire the graph into a
//!   near-clique;
//! * a qualified call `Type::m(…)` resolves to defs named `m` owned by
//!   `Type` (falling back to free functions for module paths like
//!   `nic::m(…)`), and `<T as Trait>::m(…)` takes `T` as the qualifier;
//! * a free call `m(…)` resolves to every free (ownerless) def named
//!   `m`, which deliberately over-approximates shadowed/nested names.
//!
//! Over-approximation is safe for the checker (it can only ask for a
//! waiver too many times, never miss by design); the ambient denylist is
//! the one deliberate under-approximation and is documented in
//! DESIGN.md §15.

use crate::lexer::{lex, Tok, Token};

/// What a fact *is*, independent of which rule ends up claiming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// `.unwrap()`, `.expect(…)`, `panic!`-family macros.
    Panic,
    /// Partial-range slicing `b[a..c]` — panics on short buffers.
    RangeSlice,
    /// Heap allocation: ctor, `vec!`/`format!`, `.to_vec()`, `.clone()`.
    Alloc,
    /// Payload byte copy: `.extend_from_slice()` / `.copy_from_slice()`.
    PayloadCopy,
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    UnsafeUndoc,
    /// Wall-clock read: `Instant::now`, `SystemTime::now`.
    WallClock,
    /// OS randomness: `thread_rng`, `from_entropy`, `RandomState`.
    OsRandom,
    /// `HashMap`/`HashSet` with the default (randomly seeded) hasher.
    HashDefault,
    /// Environment read: `env::var` and friends.
    EnvRead,
    /// Lock acquisition: `.lock()`.
    Lock,
    /// Blocking channel receive: `.recv()`, `.recv_timeout()`.
    BlockingRecv,
    /// Unbounded channel construction (`unbounded()`, `mpsc::channel`).
    UnboundedChan,
    /// Socket serving/dialing: `TcpListener::bind`, `TcpStream::connect`.
    /// Detected only in qualified form — `.accept()` as a method call is
    /// deliberately NOT a fact, because `PacketSink::accept` is the hot
    /// path's emission entry point.
    BlockingServe,
}

/// One rule-relevant observation inside (or outside) a function body.
#[derive(Debug, Clone)]
pub struct Fact {
    /// What kind of observation.
    pub kind: FactKind,
    /// Display form for diagnostics (`.unwrap()`, `Vec::new`, …).
    pub what: String,
    /// 1-indexed source line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` region (exempt from every rule but R2).
    pub in_test: bool,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the final path segment).
    pub name: String,
    /// Immediate path qualifier: `Type` in `Type::m(…)`, `T` in
    /// `<T as Trait>::m(…)`, `None` for free and method calls.
    pub qual: Option<String>,
    /// Whether this is a `.m(…)` method call.
    pub is_method: bool,
    /// 1-indexed source line of the call.
    pub line: u32,
}

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Defined inside a `#[cfg(test)]` region (excluded from the graph).
    pub is_test: bool,
    /// Names of lexically enclosing functions, outermost first.
    pub enclosing: Vec<String>,
    /// Call sites in this function's body (innermost function only).
    pub calls: Vec<CallSite>,
    /// Facts observed in this function's body.
    pub facts: Vec<Fact>,
}

impl FnDef {
    /// `Owner::name` display form for blame chains.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Function definitions, in source order.
    pub defs: Vec<FnDef>,
    /// Facts observed outside any function body (consts, statics).
    pub toplevel_facts: Vec<Fact>,
}

/// Ubiquitous std method names that are never resolved to workspace
/// defs as *method* calls: the collision noise (every `.push(` edging
/// into `MergeEngine::push`) would drown real reachability. Qualified
/// calls (`RingBuffer::push`) and free calls are unaffected, and the
/// blocking/alloc *facts* for these names are still detected directly.
pub const AMBIENT_METHODS: &[&str] = &[
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "clone",
    "cmp",
    "eq",
    "ne",
    "hash",
    "fmt",
    "next",
    "iter",
    "iter_mut",
    "drain",
    "take",
    "replace",
    "swap",
    "extend",
    "send",
    "recv",
    "recv_timeout",
    "lock",
    "write",
    "read",
    "flush",
    "min",
    "max",
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "to_string",
    "into",
    "from",
    "new",
    "default",
    "resize",
    "truncate",
    "reserve",
    "split_at",
    "split_off",
    "first",
    "last",
    "sort",
    "sort_by",
    "sort_unstable",
    "retain",
    "entry",
    "or_insert",
    "or_insert_with",
    "position",
    "find",
    "any",
    "all",
    "fold",
    "sum",
    "count",
    "rev",
    "chain",
    "zip",
    "enumerate",
    "filter",
    "filter_map",
    "flat_map",
    "for_each",
    "copied",
    "cloned",
    "collect",
    "starts_with",
    "ends_with",
    "load",
    "store",
    "fetch_add",
    "join",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "get_or_insert",
    "push_str",
    "split",
    "trim",
    "parse",
    "expect",
    "unwrap",
    "to_vec",
    "to_owned",
    "abs",
    "clamp",
    "keys",
    "values",
    "values_mut",
    "windows",
    "chunks",
    "saturating_add",
    "saturating_sub",
    "wrapping_add",
    "wrapping_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
];

/// Identifiers that look like calls but never are.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "use", "impl", "mod", "let", "pub",
    "unsafe", "move", "as", "in", "where", "else", "break", "continue", "struct", "enum", "trait",
    "type", "const", "static", "ref", "mut", "dyn", "Self", "self", "super", "crate", "await",
    "async", "box", "Some", "None", "Ok", "Err", "Fn", "FnMut", "FnOnce",
];

/// Skips a balanced `<…>` generic/turbofish list starting at `j`
/// (which must index a `<`). Returns the index just past the matching
/// `>`. `->` arrows inside (`Fn() -> u8`) do not close the list; a
/// stray `{`/`;` bails out defensively.
fn skip_angles(code: &[&Token], mut j: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while j < code.len() {
        match &code[j].kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') if prev_dash => {}
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            Tok::Punct('{') | Tok::Punct(';') => return j,
            _ => {}
        }
        prev_dash = matches!(&code[j].kind, Tok::Punct('-'));
        j += 1;
    }
    j
}

/// R2 helper: whether a `SAFETY:` comment (or, for `unsafe fn`
/// declarations, a `# Safety` doc section) immediately precedes the
/// given `unsafe` token. "Immediately precedes" is statement-shaped:
/// same-line prefixes and attributes are skipped on the way back.
fn has_safety_comment(toks: &[Token], unsafe_tok: &Token) -> bool {
    let pos = toks
        .iter()
        .position(|t| std::ptr::eq(t, unsafe_tok))
        .unwrap_or(0);
    let mut bracket_depth = 0usize;
    for t in toks.iter().take(pos).rev() {
        match &t.kind {
            Tok::LineComment(text) | Tok::BlockComment(text) => {
                if text.contains("SAFETY:") || text.contains("# Safety") {
                    return true;
                }
            }
            Tok::Punct(']') => bracket_depth += 1,
            Tok::Punct('[') if bracket_depth > 0 => bracket_depth -= 1,
            Tok::Punct('#') => {}
            _ if bracket_depth > 0 => {}
            _ if t.line == unsafe_tok.line && !matches!(t.kind, Tok::Punct(';' | '{' | '}')) => {}
            _ => return false,
        }
    }
    false
}

/// Scans one file into defs, calls, and facts.
pub fn scan_file(rel_path: &str, src: &str) -> FileScan {
    let toks = lex(src);
    let code: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
        .collect();

    let ident = |i: usize| -> Option<&str> {
        match code.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize, c: char| -> bool {
        matches!(code.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
    };

    let mut scan = FileScan::default();

    let mut brace_depth: i32 = 0;
    let mut test_region_until: Option<i32> = None;
    let mut pending_cfg_test = false;

    // (def index, brace depth of its body) for open function bodies.
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    // A `fn name` seen, body `{` (or decl `;`) not yet reached.
    let mut pending_fn: Option<usize> = None;
    // An `impl`/`trait` header parsed, block `{` not yet reached.
    let mut pending_owner: Option<String> = None;
    // (owner name, brace depth of the impl/trait block).
    let mut owner_stack: Vec<(String, i32)> = Vec::new();

    // Records a fact into the innermost open function, or at toplevel.
    macro_rules! fact {
        ($kind:expr, $what:expr, $line:expr, $in_test:expr) => {{
            let f = Fact {
                kind: $kind,
                what: $what.to_string(),
                line: $line,
                in_test: $in_test,
            };
            match fn_stack.last() {
                Some((idx, _)) => scan.defs[*idx].facts.push(f),
                None => scan.toplevel_facts.push(f),
            }
        }};
    }

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        let in_test = test_region_until.is_some();
        let in_signature = pending_fn.is_some();
        match &t.kind {
            Tok::Punct('{') => {
                brace_depth += 1;
                if let Some(idx) = pending_fn.take() {
                    fn_stack.push((idx, brace_depth));
                    pending_owner = None;
                } else if let Some(owner) = pending_owner.take() {
                    owner_stack.push((owner, brace_depth));
                }
            }
            Tok::Punct('}') => {
                if let Some((_, d)) = fn_stack.last() {
                    if *d == brace_depth {
                        fn_stack.pop();
                    }
                }
                if let Some((_, d)) = owner_stack.last() {
                    if *d == brace_depth {
                        owner_stack.pop();
                    }
                }
                brace_depth -= 1;
                if let Some(limit) = test_region_until {
                    if brace_depth <= limit {
                        test_region_until = None;
                    }
                }
            }
            Tok::Punct(';') => {
                // Ends a bodyless trait-method declaration: the next `{`
                // must not adopt it as a body.
                pending_fn = None;
            }
            // Attributes are skipped wholesale so their contents never
            // register as calls or facts. Covers both `#[…]` and `#![…]`.
            Tok::Punct('#') if punct(i + 1, '[') || (punct(i + 1, '!') && punct(i + 2, '[')) => {
                let mut j = if punct(i + 1, '[') { i + 2 } else { i + 3 };
                let mut depth = 1usize;
                let mut saw_cfg = false;
                let mut saw_test = false;
                while j < code.len() && depth > 0 {
                    match &code[j].kind {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        Tok::Ident(s) if s == "cfg" => saw_cfg = true,
                        Tok::Ident(s) if s == "test" => saw_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if saw_cfg && saw_test {
                    pending_cfg_test = true;
                }
                i = j;
                continue;
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "fn" => {
                        if let Some(fname) = ident(i + 1) {
                            let def = FnDef {
                                name: fname.to_string(),
                                owner: owner_stack.last().map(|(o, _)| o.clone()),
                                file: rel_path.to_string(),
                                line: t.line,
                                is_test: in_test || pending_cfg_test,
                                enclosing: fn_stack
                                    .iter()
                                    .map(|(idx, _)| scan.defs[*idx].name.clone())
                                    .collect(),
                                calls: Vec::new(),
                                facts: Vec::new(),
                            };
                            scan.defs.push(def);
                            pending_fn = Some(scan.defs.len() - 1);
                        }
                        if pending_cfg_test {
                            test_region_until.get_or_insert(brace_depth);
                            pending_cfg_test = false;
                        }
                        i += 1;
                        // Skip the name token itself so it never counts
                        // as a call.
                        i += 1;
                        continue;
                    }
                    "impl" | "trait" => {
                        // Only item position opens an owner block —
                        // `-> impl Trait` / `&dyn Trait` are types.
                        let item_pos = i == 0
                            || matches!(
                                code[i - 1].kind,
                                Tok::Punct('{')
                                    | Tok::Punct('}')
                                    | Tok::Punct(';')
                                    | Tok::Punct(']')
                            )
                            || matches!(ident(i - 1), Some("pub" | "unsafe" | "default"));
                        if item_pos {
                            let mut j = i + 1;
                            if punct(j, '<') {
                                j = skip_angles(&code, j);
                            }
                            let mut for_target: Option<String> = None;
                            let mut first_ty: Option<String> = None;
                            while j < code.len() && !punct(j, '{') && !punct(j, ';') {
                                match ident(j) {
                                    Some("for") if !punct(j + 1, '<') => {
                                        // `impl Trait for Type` (non-HRTB
                                        // `for`): owner is the next
                                        // type-looking ident.
                                        let mut k = j + 1;
                                        while k < code.len() {
                                            match &code[k].kind {
                                                Tok::Ident(s)
                                                    if !CALL_KEYWORDS.contains(&s.as_str()) =>
                                                {
                                                    for_target = Some(s.clone());
                                                    break;
                                                }
                                                Tok::Punct('{') => break,
                                                _ => {}
                                            }
                                            k += 1;
                                        }
                                    }
                                    Some("where") => break,
                                    Some(s)
                                        if first_ty.is_none() && !CALL_KEYWORDS.contains(&s) =>
                                    {
                                        first_ty = Some(s.to_string());
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                            pending_owner = for_target.or(first_ty);
                        }
                        if pending_cfg_test {
                            test_region_until.get_or_insert(brace_depth);
                            pending_cfg_test = false;
                        }
                    }
                    "mod" | "struct" | "enum" | "use" | "const" | "static" if pending_cfg_test => {
                        test_region_until.get_or_insert(brace_depth);
                        pending_cfg_test = false;
                    }
                    "unsafe" if !has_safety_comment(&toks, t) => {
                        fact!(FactKind::UnsafeUndoc, "unsafe", t.line, in_test);
                    }
                    _ => {}
                }

                // --- Fact patterns. ---
                let is_method = i > 0 && punct(i - 1, '.');
                let next_paren = punct(i + 1, '(');
                let next_bang = punct(i + 1, '!');
                let qual2 = |a: &str, b: &[&str]| -> Option<&str> {
                    if name == a && punct(i + 1, ':') && punct(i + 2, ':') {
                        ident(i + 3).filter(|n| b.contains(n))
                    } else {
                        None
                    }
                };
                match name.as_str() {
                    "unwrap" | "expect" if is_method && next_paren => {
                        fact!(FactKind::Panic, format!(".{name}()"), t.line, in_test);
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                        fact!(FactKind::Panic, format!("{name}!"), t.line, in_test);
                    }
                    "vec" | "format" if next_bang => {
                        fact!(FactKind::Alloc, format!("{name}!"), t.line, in_test);
                    }
                    "to_vec" | "to_owned" | "clone" if is_method && next_paren => {
                        fact!(FactKind::Alloc, format!(".{name}()"), t.line, in_test);
                    }
                    "extend_from_slice" | "copy_from_slice" if is_method && next_paren => {
                        fact!(FactKind::PayloadCopy, format!(".{name}()"), t.line, in_test);
                    }
                    "lock" if is_method && next_paren => {
                        fact!(FactKind::Lock, ".lock()", t.line, in_test);
                    }
                    "recv" | "recv_timeout" | "recv_deadline" if is_method && next_paren => {
                        fact!(
                            FactKind::BlockingRecv,
                            format!(".{name}()"),
                            t.line,
                            in_test
                        );
                    }
                    "thread_rng" | "from_entropy" if next_paren => {
                        fact!(FactKind::OsRandom, format!("{name}()"), t.line, in_test);
                    }
                    "unbounded" if next_paren && !is_method => {
                        fact!(FactKind::UnboundedChan, "unbounded()", t.line, in_test);
                    }
                    "Vec" | "Box" | "String" | "Rc" | "Arc" => {
                        if let Some(ctor) = qual2(name, &["new", "with_capacity", "from"]) {
                            fact!(FactKind::Alloc, format!("{name}::{ctor}"), t.line, in_test);
                        }
                    }
                    "Instant" | "SystemTime" => {
                        if let Some(m) = qual2(name, &["now"]) {
                            fact!(FactKind::WallClock, format!("{name}::{m}"), t.line, in_test);
                        }
                    }
                    "HashMap" | "HashSet" => {
                        if let Some(ctor) = qual2(name, &["new", "default", "with_capacity"]) {
                            fact!(
                                FactKind::HashDefault,
                                format!("{name}::{ctor}"),
                                t.line,
                                in_test
                            );
                        }
                    }
                    "RandomState" => {
                        if let Some(ctor) = qual2(name, &["new", "default"]) {
                            fact!(
                                FactKind::OsRandom,
                                format!("{name}::{ctor}"),
                                t.line,
                                in_test
                            );
                        }
                    }
                    "env" => {
                        if let Some(m) = qual2(name, &["var", "var_os", "vars"]) {
                            fact!(FactKind::EnvRead, format!("env::{m}"), t.line, in_test);
                        }
                    }
                    "mpsc" if qual2(name, &["channel"]).is_some() => {
                        fact!(FactKind::UnboundedChan, "mpsc::channel", t.line, in_test);
                    }
                    "TcpListener" | "TcpStream" => {
                        if let Some(m) = qual2(name, &["bind", "connect"]) {
                            fact!(
                                FactKind::BlockingServe,
                                format!("{name}::{m}"),
                                t.line,
                                in_test
                            );
                        }
                    }
                    _ => {}
                }

                // --- Call sites (innermost open function only). ---
                if !fn_stack.is_empty()
                    && !in_signature
                    && !CALL_KEYWORDS.contains(&name.as_str())
                    && !matches!(ident(i.wrapping_sub(1)), Some("fn"))
                {
                    // `name(`, or `name::<T>(` with a turbofish.
                    let direct = next_paren;
                    let turbofish = punct(i + 1, ':')
                        && punct(i + 2, ':')
                        && punct(i + 3, '<')
                        && punct(skip_angles(&code, i + 3), '(');
                    if direct || turbofish {
                        let (qual, method) = if i >= 2 && punct(i - 1, ':') && punct(i - 2, ':') {
                            // Last segment of a path call: the segment
                            // before `::`, or the `<T as Trait>` subject.
                            let q = if i >= 3 {
                                match &code[i - 3].kind {
                                    Tok::Ident(s) => Some(s.clone()),
                                    Tok::Punct('>') => {
                                        // UFCS `<T as Trait>::m`: walk back
                                        // to the matching `<`, take the
                                        // first ident after it.
                                        let mut depth = 1i32;
                                        let mut k = i - 3;
                                        let mut subject = None;
                                        while k > 0 && depth > 0 {
                                            k -= 1;
                                            match &code[k].kind {
                                                Tok::Punct('>') => depth += 1,
                                                Tok::Punct('<') => depth -= 1,
                                                _ => {}
                                            }
                                        }
                                        if depth == 0 {
                                            if let Some(Tok::Ident(s)) =
                                                code.get(k + 1).map(|t| &t.kind)
                                            {
                                                subject = Some(s.clone());
                                            }
                                        }
                                        subject
                                    }
                                    _ => None,
                                }
                            } else {
                                None
                            };
                            (q, false)
                        } else if is_method {
                            (None, true)
                        } else {
                            (None, false)
                        };
                        if let Some((idx, _)) = fn_stack.last() {
                            scan.defs[*idx].calls.push(CallSite {
                                name: name.clone(),
                                qual,
                                is_method: method,
                                line: t.line,
                            });
                        }
                    }
                }
            }
            Tok::Punct('[') => {
                // Indexing with a partial range (`b[a..]`, `b[..c]`,
                // `b[a..c]`) panics on short buffers; full-range `b[..]`
                // cannot. Only index positions count.
                let is_index = i > 0
                    && matches!(
                        code[i - 1].kind,
                        Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']') | Tok::Literal | Tok::Num
                    );
                if is_index {
                    let mut depth = 1usize;
                    let mut j = i + 1;
                    let mut has_dotdot = false;
                    let mut inner_tokens = 0usize;
                    while j < code.len() && depth > 0 {
                        match &code[j].kind {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            Tok::DotDot if depth == 1 => has_dotdot = true,
                            _ => {}
                        }
                        if depth > 0 {
                            inner_tokens += 1;
                        }
                        j += 1;
                    }
                    if has_dotdot && inner_tokens > 1 {
                        fact!(FactKind::RangeSlice, "range slicing", t.line, in_test);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    scan
}

/// Reachability state of one def under one rule's BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    /// Not reachable from any entry point.
    No,
    /// Is itself an entry point.
    Entry,
    /// Reached through a call edge from `parent` at `line`.
    Via {
        /// Caller def index.
        parent: usize,
        /// Line of the call site in the caller's file.
        line: u32,
    },
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee def index.
    pub callee: usize,
    /// Line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph: adjacency lists over a shared def slice.
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[caller]` — outgoing resolved edges.
    pub edges: Vec<Vec<Edge>>,
    /// Total resolved edge count.
    pub edge_count: usize,
}

impl CallGraph {
    /// Builds the graph. `unit_ok(caller, callee)` gates edges on crate
    /// dependency direction (and keeps tests/benches out of the callee
    /// set); test defs get no edges in either direction.
    pub fn build(defs: &[FnDef], unit_ok: &dyn Fn(usize, usize) -> bool) -> CallGraph {
        use std::collections::HashMap;
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            if !d.is_test {
                by_name.entry(d.name.as_str()).or_default().push(i);
            }
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); defs.len()];
        let mut edge_count = 0usize;
        for (caller, d) in defs.iter().enumerate() {
            if d.is_test {
                continue;
            }
            for call in &d.calls {
                let candidates: Vec<usize> = match (&call.qual, call.is_method) {
                    (_, true) => {
                        if AMBIENT_METHODS.contains(&call.name.as_str()) {
                            Vec::new()
                        } else {
                            by_name
                                .get(call.name.as_str())
                                .map(|v| {
                                    v.iter()
                                        .copied()
                                        .filter(|&c| defs[c].owner.is_some())
                                        .collect()
                                })
                                .unwrap_or_default()
                        }
                    }
                    (None, false) => by_name
                        .get(call.name.as_str())
                        .map(|v| {
                            v.iter()
                                .copied()
                                .filter(|&c| defs[c].owner.is_none())
                                .collect()
                        })
                        .unwrap_or_default(),
                    (Some(q), false) => {
                        let all = by_name.get(call.name.as_str());
                        let want_owner: Option<&str> = if q == "Self" {
                            d.owner.as_deref()
                        } else {
                            Some(q.as_str())
                        };
                        let owned: Vec<usize> = all
                            .map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&c| defs[c].owner.as_deref() == want_owner)
                                    .collect()
                            })
                            .unwrap_or_default();
                        if owned.is_empty() && q != "Self" {
                            // Module-qualified free call (`nic::m(…)`).
                            all.map(|v| {
                                v.iter()
                                    .copied()
                                    .filter(|&c| defs[c].owner.is_none())
                                    .collect()
                            })
                            .unwrap_or_default()
                        } else {
                            owned
                        }
                    }
                };
                for c in candidates {
                    if c == caller || !unit_ok(caller, c) {
                        continue;
                    }
                    if edges[caller].iter().any(|e| e.callee == c) {
                        continue;
                    }
                    edges[caller].push(Edge {
                        callee: c,
                        line: call.line,
                    });
                    edge_count += 1;
                }
            }
        }
        CallGraph { edges, edge_count }
    }

    /// BFS from `entries`, recording parent pointers for blame chains.
    /// `blocked(def)` excludes a def entirely (transitive-exempt files);
    /// `cut(caller, line)` severs an edge (waivers at call sites) and
    /// may record the waiver as used.
    pub fn reach(
        &self,
        entries: &[usize],
        blocked: &dyn Fn(usize) -> bool,
        cut: &mut dyn FnMut(usize, u32) -> bool,
    ) -> Vec<Reach> {
        let mut state = vec![Reach::No; self.edges.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if !blocked(e) && matches!(state[e], Reach::No) {
                state[e] = Reach::Entry;
                queue.push_back(e);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for edge in &self.edges[cur] {
                if cut(cur, edge.line) {
                    continue;
                }
                if blocked(edge.callee) {
                    continue;
                }
                if matches!(state[edge.callee], Reach::No) {
                    state[edge.callee] = Reach::Via {
                        parent: cur,
                        line: edge.line,
                    };
                    queue.push_back(edge.callee);
                }
            }
        }
        state
    }

    /// Reconstructs the blame chain entry → … → `idx` as display names.
    pub fn chain(defs: &[FnDef], state: &[Reach], mut idx: usize) -> Vec<String> {
        let mut rev = vec![defs[idx].display()];
        let mut guard = 0usize;
        while let Reach::Via { parent, .. } = state[idx] {
            idx = parent;
            rev.push(defs[idx].display());
            guard += 1;
            if guard > defs.len() {
                break;
            }
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        scan_file("crates/demo/src/lib.rs", src)
    }

    fn permissive(defs: &[FnDef]) -> CallGraph {
        CallGraph::build(defs, &|_, _| true)
    }

    fn def_idx(defs: &[FnDef], name: &str) -> usize {
        defs.iter().position(|d| d.name == name).unwrap()
    }

    fn has_edge(g: &CallGraph, from: usize, to: usize) -> bool {
        g.edges[from].iter().any(|e| e.callee == to)
    }

    #[test]
    fn free_and_method_defs_are_extracted_with_owners() {
        let s = scan(
            "fn free_one() {}\n\
             struct T;\n\
             impl T { fn meth(&self) {} }\n\
             impl Clone for T { fn clone(&self) -> T { T } }\n\
             trait Sink { fn accept(&mut self); }",
        );
        assert_eq!(s.defs.len(), 4);
        assert_eq!(s.defs[0].owner, None);
        assert_eq!(s.defs[1].owner.as_deref(), Some("T"));
        // `impl Clone for T`: the owner is the implementing type.
        assert_eq!(s.defs[2].owner.as_deref(), Some("T"));
        assert_eq!(s.defs[3].owner.as_deref(), Some("Sink"));
    }

    #[test]
    fn method_free_and_ufcs_calls_resolve() {
        let s = scan(
            "fn helper() {}\n\
             struct T;\n\
             impl T {\n\
                 fn emit_row(&self) {}\n\
                 fn drive(&self) { helper(); self.emit_row(); T::emit_row(self); }\n\
                 fn ufcs(&self) { <T as Render>::emit_row(self); }\n\
             }",
        );
        let g = permissive(&s.defs);
        let drive = def_idx(&s.defs, "drive");
        let ufcs = def_idx(&s.defs, "ufcs");
        let helper = def_idx(&s.defs, "helper");
        let emit_row = def_idx(&s.defs, "emit_row");
        assert!(has_edge(&g, drive, helper), "free call");
        assert!(has_edge(&g, drive, emit_row), "method + qualified call");
        assert!(has_edge(&g, ufcs, emit_row), "UFCS call");
    }

    #[test]
    fn turbofish_calls_still_resolve() {
        let s = scan(
            "fn decode_as() {}\n\
             fn f() { decode_as::<u64>(); }",
        );
        let g = permissive(&s.defs);
        assert!(has_edge(
            &g,
            def_idx(&s.defs, "f"),
            def_idx(&s.defs, "decode_as")
        ));
    }

    #[test]
    fn shadowed_names_over_approximate_to_every_candidate() {
        // Two free fns named `step` in different modules: a free call
        // edges to both — the checker deliberately over-approximates.
        let s = scan(
            "mod a { pub fn step() {} }\n\
             mod b { pub fn step() {} }\n\
             fn f() { step(); }",
        );
        let g = permissive(&s.defs);
        let f = def_idx(&s.defs, "f");
        assert_eq!(g.edges[f].len(), 2);
    }

    #[test]
    fn ambient_method_names_get_no_edges() {
        let s = scan(
            "struct Q;\n\
             impl Q { fn push(&mut self) {} }\n\
             fn f(v: &mut Vec<u8>) { v.push(1); }",
        );
        let g = permissive(&s.defs);
        assert_eq!(g.edge_count, 0, "`.push(` is ambient");
    }

    #[test]
    fn cfg_test_defs_are_excluded_from_the_graph() {
        let s = scan(
            "fn prod() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
                 #[test]\n\
                 fn t() { super::prod(); }\n\
             }",
        );
        assert!(s.defs.iter().any(|d| d.is_test));
        let g = permissive(&s.defs);
        let prod = def_idx(&s.defs, "prod");
        // prod → the real helper only, not the test shadow; the test fn
        // gets no outgoing edges at all.
        assert_eq!(g.edges[prod].len(), 1);
        let t = s.defs.iter().position(|d| d.name == "t").unwrap();
        assert!(g.edges[t].is_empty());
    }

    #[test]
    fn reachability_terminates_on_cycles_and_chains_reconstruct() {
        // a → b → c → a (cycle), plus c → leaf.
        let s = scan(
            "fn a() { b(); }\n\
             fn b() { c(); }\n\
             fn c() { a(); leaf(); }\n\
             fn leaf() {}",
        );
        let g = permissive(&s.defs);
        let a = def_idx(&s.defs, "a");
        let leaf = def_idx(&s.defs, "leaf");
        let state = g.reach(&[a], &|_| false, &mut |_, _| false);
        assert!(matches!(state[leaf], Reach::Via { .. }));
        let chain = CallGraph::chain(&s.defs, &state, leaf);
        assert_eq!(chain, vec!["a", "b", "c", "leaf"]);
    }

    #[test]
    fn blocked_and_cut_edges_stop_propagation() {
        let s = scan(
            "fn a() { b(); }\n\
             fn b() { c(); }\n\
             fn c() {}",
        );
        let g = permissive(&s.defs);
        let a = def_idx(&s.defs, "a");
        let b = def_idx(&s.defs, "b");
        let c = def_idx(&s.defs, "c");
        let state = g.reach(&[a], &|d| d == b, &mut |_, _| false);
        assert!(matches!(state[c], Reach::No), "blocked def stops BFS");
        let b_line = s.defs[b].calls[0].line;
        let state = g.reach(&[a], &|_| false, &mut |cur, line| {
            cur == b && line == b_line
        });
        assert!(matches!(state[c], Reach::No), "cut edge stops BFS");
    }

    #[test]
    fn nondeterminism_and_blocking_facts_are_detected() {
        let s = scan(
            "fn f() {\n\
                 let t = Instant::now();\n\
                 let m: HashMap<u8, u8> = HashMap::new();\n\
                 let v = std::env::var(\"X\");\n\
                 let g = thread_rng();\n\
             }\n\
             fn g(rx: &Receiver<u8>, mu: &Mutex<u8>) {\n\
                 let _ = mu.lock();\n\
                 let _ = rx.recv();\n\
                 let (tx, rx2) = unbounded();\n\
             }",
        );
        let kinds: Vec<FactKind> = s.defs[0].facts.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FactKind::WallClock,
                FactKind::HashDefault,
                FactKind::EnvRead,
                FactKind::OsRandom
            ]
        );
        let kinds: Vec<FactKind> = s.defs[1].facts.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FactKind::Lock,
                FactKind::BlockingRecv,
                FactKind::UnboundedChan
            ]
        );
    }

    #[test]
    fn hasher_pinned_maps_are_not_flagged() {
        let s = scan("fn f() { let m = HashMap::with_hasher(FixedState::default()); }");
        assert!(s.defs[0]
            .facts
            .iter()
            .all(|f| f.kind != FactKind::HashDefault));
    }

    #[test]
    fn impl_in_return_position_does_not_open_an_owner() {
        let s = scan(
            "fn make() -> impl Iterator<Item = u8> { std::iter::empty() }\n\
             fn after() {}",
        );
        assert_eq!(s.defs[1].owner, None);
    }
}
