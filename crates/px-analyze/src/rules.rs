//! The six datapath-invariant rules and the waiver machinery.
//!
//! | Rule | Scope | What it rejects |
//! |------|-------|-----------------|
//! | R1   | hot-path modules | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` and panicking range slicing `b[a..c]` |
//! | R2   | every workspace file | `unsafe` not immediately preceded by a `// SAFETY:` comment |
//! | R3   | hot-path emission functions | allocation (`Vec::new`, `vec!`, `Box::new`, `to_vec`, `clone`, `String` construction, `format!`) |
//! | R4   | crate roots | missing `#![forbid(unsafe_code)]`-class preamble or `[lints] workspace = true` |
//! | R5   | observability recording functions | the same allocation set as R3 — `record*`/`observe*`/`push` run per packet inside the datapath and must not touch the allocator |
//! | R6   | fault-handling functions, every module | *both* the R1 panic set and the R3 allocation set inside `degrade*`/`on_fault*`/`restart_worker*` — recovery code runs while the system is already degraded, so it may neither unwind nor lean on a possibly-exhausted allocator |
//! | R7   | split-engine emission functions | payload byte copies (`.extend_from_slice()`, `.copy_from_slice()`) — the split path emits scatter-gather views, so payload bytes must never be re-copied on the way out |
//!
//! Code under `#[cfg(test)]` is exempt from R1/R3/R5 (tests may unwrap).
//! Intentional exceptions elsewhere use inline waivers:
//!
//! ```text
//! // px-analyze: allow(R1, reason = "cold teardown, join propagates worker panics")
//! ```
//!
//! A waiver covers its own line and the next code line, must carry a
//! non-empty reason, and is itself an error if it never fires.

use crate::lexer::{lex, Tok, Token};

/// A rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Panic-freedom in hot-path modules.
    R1,
    /// `// SAFETY:` comment on every `unsafe`.
    R2,
    /// Alloc discipline in emission-path functions.
    R3,
    /// Crate-root lint preamble conformance.
    R4,
    /// Alloc discipline in observability recording functions.
    R5,
    /// Panic- and alloc-freedom in fault-handling/recovery functions.
    R6,
    /// Copy-freedom in split-engine emission functions: the
    /// scatter-gather split path must not re-copy payload bytes.
    R7,
}

impl Rule {
    /// The rule's display name (`R1`…`R5`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            _ => None,
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// The rule violated (`None` for waiver-hygiene errors, reported
    /// under the pseudo-rule `WAIVER`).
    pub rule: Option<Rule>,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    /// The `file:line:rule: message` form the CLI prints.
    pub fn render(&self) -> String {
        let rule = self.rule.map_or("WAIVER", Rule::name);
        format!("{}:{}:{}: {}", self.file, self.line, rule, self.message)
    }
}

/// Analyzer configuration: which modules each rule bites on.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path suffixes (workspace-relative) of R1 hot-path modules.
    pub r1_modules: Vec<&'static str>,
    /// Path suffixes of R3 alloc-discipline modules (R1 minus the
    /// deliberately allocating baseline).
    pub r3_modules: Vec<&'static str>,
    /// Function names that form the `PacketSink` emission paths; R3
    /// applies inside these plus any function ending in `_into`.
    pub emission_fns: Vec<&'static str>,
    /// Path suffixes of R5 recording-discipline modules (the px-obs
    /// flight-recorder datapath). R5 applies inside functions named
    /// `record*`, `observe*`, or `push` — the per-packet recording call
    /// sites; the drain/render side may allocate freely.
    pub r5_modules: Vec<&'static str>,
    /// Function-name prefixes of R6 fault-handling/recovery paths. R6
    /// applies in *every* module — degradation and self-healing code
    /// runs while the system is already in trouble, wherever it lives —
    /// and enforces both the R1 panic set and the R3 allocation set.
    pub r6_fn_prefixes: Vec<&'static str>,
    /// Path suffixes of R7 copy-freedom modules: the split engine's
    /// emission path, which must hand payload bytes onward as
    /// scatter-gather views rather than copying them.
    pub r7_modules: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            r1_modules: vec![
                "crates/core/src/merge.rs",
                "crates/core/src/split.rs",
                "crates/core/src/caravan_gw.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/flowtable.rs",
                "crates/core/src/baseline.rs",
                "crates/px-wire/src/tcp.rs",
                "crates/px-wire/src/udp.rs",
                "crates/px-wire/src/ipv4.rs",
                "crates/px-wire/src/frag.rs",
                "crates/px-wire/src/caravan.rs",
                "crates/px-wire/src/checksum.rs",
                "crates/px-wire/src/batchparse.rs",
                "crates/px-wire/src/buffer.rs",
                "crates/px-wire/src/pool.rs",
                "crates/px-wire/src/bytes.rs",
                // The flight recorder runs inline in every hot loop, so
                // its recording side is held to the same panic-freedom
                // bar as the datapath proper.
                "crates/px-obs/src/event.rs",
                "crates/px-obs/src/ring.rs",
                "crates/px-obs/src/hist.rs",
                "crates/px-obs/src/recorder.rs",
            ],
            // `baseline.rs` models DPDK rte_gro's per-packet allocation
            // churn on purpose — it is the paper's comparison point, so
            // the alloc rule exempts it (mirroring tests/hotpath_alloc.rs,
            // which gates merge/split/caravan only).
            r3_modules: vec![
                "crates/core/src/merge.rs",
                "crates/core/src/split.rs",
                "crates/core/src/caravan_gw.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/flowtable.rs",
                "crates/px-wire/src/tcp.rs",
                "crates/px-wire/src/udp.rs",
                "crates/px-wire/src/ipv4.rs",
                "crates/px-wire/src/frag.rs",
                "crates/px-wire/src/caravan.rs",
                "crates/px-wire/src/checksum.rs",
                "crates/px-wire/src/batchparse.rs",
                "crates/px-wire/src/buffer.rs",
                "crates/px-wire/src/pool.rs",
                "crates/px-wire/src/bytes.rs",
            ],
            emission_fns: vec![
                "accept",
                "emit",
                "forward",
                "forward_recorded",
                "append",
                "finalize_emit",
                "emit_pending",
                "process_batch",
                "push_sg",
            ],
            r5_modules: vec![
                "crates/px-obs/src/event.rs",
                "crates/px-obs/src/ring.rs",
                "crates/px-obs/src/hist.rs",
                "crates/px-obs/src/recorder.rs",
            ],
            r6_fn_prefixes: vec!["degrade", "on_fault", "restart_worker"],
            r7_modules: vec!["crates/core/src/split.rs"],
        }
    }
}

impl Config {
    fn is_r1(&self, rel_path: &str) -> bool {
        self.r1_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_r3(&self, rel_path: &str) -> bool {
        self.r3_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_emission_fn(&self, name: &str) -> bool {
        name.ends_with("_into") || self.emission_fns.contains(&name)
    }

    fn is_r5(&self, rel_path: &str) -> bool {
        self.r5_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_recording_fn(&self, name: &str) -> bool {
        name.starts_with("record") || name.starts_with("observe") || name == "push"
    }

    fn is_r6_fn(&self, name: &str) -> bool {
        self.r6_fn_prefixes.iter().any(|p| name.starts_with(p))
    }

    fn is_r7(&self, rel_path: &str) -> bool {
        self.r7_modules.iter().any(|m| rel_path.ends_with(m))
    }
}

/// A parsed `// px-analyze: allow(...)` waiver.
#[derive(Debug)]
struct Waiver {
    rules: Vec<Rule>,
    reason_ok: bool,
    /// Line the waiver comment sits on.
    line: u32,
    /// The next code line it covers (filled in during the scan).
    covers: Option<u32>,
    used: bool,
}

/// Parses a waiver out of a comment body, if present.
fn parse_waiver(text: &str, line: u32) -> Option<Waiver> {
    // Anchored at the start of the comment: doc comments (`///`, `//!`)
    // keep their extra `/`/`!` in the captured text, so waiver examples
    // quoted inside documentation do not register as live waivers.
    let rest = text.trim_start().strip_prefix("px-analyze:")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let inner = rest.split(')').next().unwrap_or("");
    let mut rules = Vec::new();
    let mut reason_ok = false;
    for part in inner.split(',') {
        let part = part.trim();
        if let Some(r) = Rule::parse(part) {
            rules.push(r);
        } else if let Some(rhs) = part.strip_prefix("reason") {
            let rhs = rhs.trim_start().strip_prefix('=').unwrap_or("").trim();
            // Reason must be a non-empty quoted string. The closing quote
            // may have been cut off by the `)` split when the reason
            // itself contains none — look at the raw text instead.
            reason_ok = rhs.starts_with('"') && rhs.len() > 1;
        }
    }
    // A reason containing commas gets split up; detect `reason = "…"`
    // against the whole comment as the authoritative check.
    if let Some(rat) = text.find("reason") {
        let rhs = text[rat + "reason".len()..].trim_start();
        if let Some(q) = rhs.strip_prefix('=') {
            let q = q.trim_start();
            if let Some(body) = q.strip_prefix('"') {
                reason_ok = body.find('"').is_some_and(|end| end > 0);
            }
        }
    }
    Some(Waiver {
        rules,
        reason_ok,
        line,
        covers: None,
        used: false,
    })
}

/// Analyzes one Rust source file. `rel_path` is workspace-relative with
/// forward slashes. Returns the violations found (waiver-suppressed ones
/// excluded, waiver-hygiene problems included).
pub fn check_source(cfg: &Config, rel_path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let r1 = cfg.is_r1(rel_path);
    let r3 = cfg.is_r3(rel_path);
    let r5 = cfg.is_r5(rel_path);
    let r7 = cfg.is_r7(rel_path);

    let mut waivers: Vec<Waiver> = Vec::new();
    let mut raw: Vec<Violation> = Vec::new();

    // --- Pass 1: waivers, and which code line each one covers. ---
    // Attribute tokens (`#[...]`) do not count as the covered code line:
    // a waiver above `#[allow(...)] stmt;` covers `stmt`.
    let mut attr_depth = 0usize;
    let mut prev_was_hash = false;
    for t in &toks {
        match &t.kind {
            Tok::LineComment(text) | Tok::BlockComment(text) => {
                if let Some(w) = parse_waiver(text, t.line) {
                    waivers.push(w);
                }
            }
            kind => {
                let is_attr = match kind {
                    Tok::Punct('#') => {
                        prev_was_hash = true;
                        true
                    }
                    Tok::Punct('[') if prev_was_hash || attr_depth > 0 => {
                        attr_depth += 1;
                        prev_was_hash = false;
                        true
                    }
                    Tok::Punct(']') if attr_depth > 0 => {
                        attr_depth -= 1;
                        true
                    }
                    _ => {
                        let inside = attr_depth > 0;
                        prev_was_hash = false;
                        inside
                    }
                };
                if !is_attr {
                    for w in waivers.iter_mut().filter(|w| w.covers.is_none()) {
                        if t.line >= w.line {
                            w.covers = Some(t.line);
                        }
                    }
                }
            }
        }
    }

    // --- Pass 2: token-stream scan. ---
    // State for #[cfg(test)] regions: once the attribute is seen, the
    // next item (delimited by braces, or ended by `;`) is test code.
    let mut brace_depth: i32 = 0;
    let mut test_region_until: Option<i32> = None; // exempt while depth > this
    let mut pending_cfg_test = false;

    // Function tracking for R3: a stack of (name, depth-at-entry).
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;

    let code: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, Tok::LineComment(_) | Tok::BlockComment(_)))
        .collect();

    let ident = |i: usize| -> Option<&str> {
        match code.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize, c: char| -> bool {
        matches!(code.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
    };

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        let in_test = test_region_until.is_some();
        match &t.kind {
            Tok::Punct('{') => {
                brace_depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, brace_depth));
                }
            }
            Tok::Punct('}') => {
                if let Some((_, d)) = fn_stack.last() {
                    if *d == brace_depth {
                        fn_stack.pop();
                    }
                }
                brace_depth -= 1;
                if let Some(limit) = test_region_until {
                    if brace_depth <= limit {
                        test_region_until = None;
                    }
                }
            }
            Tok::Punct('#') if punct(i + 1, '[') => {
                // Attribute: detect #[cfg(test)] (and #[cfg(all(test, …))]).
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut saw_cfg = false;
                let mut saw_test = false;
                while j < code.len() && depth > 0 {
                    match &code[j].kind {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        Tok::Ident(s) if s == "cfg" => saw_cfg = true,
                        Tok::Ident(s) if s == "test" => saw_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if saw_cfg && saw_test {
                    pending_cfg_test = true;
                }
                i = j;
                continue;
            }
            Tok::Ident(name) => match name.as_str() {
                "fn" => {
                    if let Some(fname) = ident(i + 1) {
                        pending_fn = Some(fname.to_string());
                    }
                    if pending_cfg_test {
                        // #[cfg(test)] fn …: exempt its body.
                        test_region_until.get_or_insert(brace_depth);
                        pending_cfg_test = false;
                    }
                }
                "mod" | "impl" | "struct" | "enum" | "use" | "const" | "static" | "trait"
                    if pending_cfg_test =>
                {
                    test_region_until.get_or_insert(brace_depth);
                    pending_cfg_test = false;
                }
                // R2: look backwards in the raw stream for a SAFETY
                // comment immediately above this token.
                "unsafe" if !has_safety_comment(&toks, t) => {
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(Rule::R2),
                        message: "`unsafe` without an immediately preceding `// SAFETY:` comment"
                            .into(),
                    });
                }
                "unwrap" | "expect"
                    if !in_test
                        && punct(i + 1, '(')
                        && i > 0
                        && punct(i - 1, '.')
                        && panic_scope(cfg, r1, &fn_stack).is_some() =>
                {
                    let rule = panic_scope(cfg, r1, &fn_stack).unwrap_or(Rule::R1);
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(rule),
                        message: panic_msg(&format!(".{name}()"), rule, &fn_stack),
                    });
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if !in_test
                        && punct(i + 1, '!')
                        && panic_scope(cfg, r1, &fn_stack).is_some() =>
                {
                    let rule = panic_scope(cfg, r1, &fn_stack).unwrap_or(Rule::R1);
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(rule),
                        message: panic_msg(&format!("{name}!"), rule, &fn_stack),
                    });
                }
                "vec"
                    if !in_test
                        && punct(i + 1, '!')
                        && alloc_scope(cfg, r3, r5, &fn_stack).is_some() =>
                {
                    let rule = alloc_scope(cfg, r3, r5, &fn_stack).unwrap_or(Rule::R3);
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(rule),
                        message: alloc_msg("vec!", rule, &fn_stack),
                    });
                }
                "format"
                    if !in_test
                        && punct(i + 1, '!')
                        && alloc_scope(cfg, r3, r5, &fn_stack).is_some() =>
                {
                    let rule = alloc_scope(cfg, r3, r5, &fn_stack).unwrap_or(Rule::R3);
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(rule),
                        message: alloc_msg("format!", rule, &fn_stack),
                    });
                }
                "Vec" | "Box" | "String" | "Rc" | "Arc"
                    if !in_test
                        && punct(i + 1, ':')
                        && punct(i + 2, ':')
                        && matches!(ident(i + 3), Some("new" | "with_capacity" | "from"))
                        && alloc_scope(cfg, r3, r5, &fn_stack).is_some() =>
                {
                    let rule = alloc_scope(cfg, r3, r5, &fn_stack).unwrap_or(Rule::R3);
                    let ctor = ident(i + 3).unwrap_or("new");
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(rule),
                        message: alloc_msg(&format!("{name}::{ctor}"), rule, &fn_stack),
                    });
                }
                "to_vec" | "to_owned" | "clone"
                    if !in_test
                        && punct(i + 1, '(')
                        && i > 0
                        && punct(i - 1, '.')
                        && alloc_scope(cfg, r3, r5, &fn_stack).is_some() =>
                {
                    let rule = alloc_scope(cfg, r3, r5, &fn_stack).unwrap_or(Rule::R3);
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(rule),
                        message: alloc_msg(&format!(".{name}()"), rule, &fn_stack),
                    });
                }
                // R7: the split emission path must never re-copy payload
                // bytes — it emits scatter-gather views instead.
                "extend_from_slice" | "copy_from_slice"
                    if !in_test
                        && r7
                        && punct(i + 1, '(')
                        && i > 0
                        && punct(i - 1, '.')
                        && in_emission(cfg, &fn_stack) =>
                {
                    let f = fn_stack
                        .last()
                        .map_or("<unknown>", |(name, _)| name.as_str());
                    raw.push(Violation {
                        file: rel_path.into(),
                        line: t.line,
                        rule: Some(Rule::R7),
                        message: format!(
                            "`.{name}()` copies payload bytes in split emission function `{f}`; emit an SgPacket view instead"
                        ),
                    });
                }
                _ => {}
            },
            Tok::Punct('[') if !in_test && panic_scope(cfg, r1, &fn_stack).is_some() => {
                // Indexing with a partial range (`b[a..]`, `b[..c]`,
                // `b[a..c]`) panics on short buffers. The full-range
                // `b[..]` cannot and is allowed. Only index positions
                // count: an index `[` directly follows an identifier,
                // `)`, `]`, or a literal.
                let is_index = i > 0
                    && matches!(
                        code[i - 1].kind,
                        Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']') | Tok::Literal | Tok::Num
                    );
                if is_index {
                    let mut depth = 1usize;
                    let mut j = i + 1;
                    let mut has_dotdot = false;
                    let mut inner_tokens = 0usize;
                    while j < code.len() && depth > 0 {
                        match &code[j].kind {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            Tok::DotDot if depth == 1 => has_dotdot = true,
                            _ => {}
                        }
                        if depth > 0 {
                            inner_tokens += 1;
                        }
                        j += 1;
                    }
                    if has_dotdot && inner_tokens > 1 {
                        let rule = panic_scope(cfg, r1, &fn_stack).unwrap_or(Rule::R1);
                        raw.push(Violation {
                            file: rel_path.into(),
                            line: t.line,
                            rule: Some(rule),
                            message: panic_msg("range slicing", rule, &fn_stack),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // --- Pass 3: apply waivers. ---
    let mut out = Vec::new();
    for v in raw {
        let Some(rule) = v.rule else {
            out.push(v);
            continue;
        };
        let waived = waivers.iter_mut().any(|w| {
            let covers_line = w.line == v.line || w.covers == Some(v.line);
            if covers_line && w.rules.contains(&rule) && w.reason_ok {
                w.used = true;
                true
            } else {
                false
            }
        });
        if !waived {
            out.push(v);
        }
    }
    for w in &waivers {
        if !w.reason_ok {
            out.push(Violation {
                file: rel_path.into(),
                line: w.line,
                rule: None,
                message: "waiver without a non-empty `reason = \"…\"`".into(),
            });
        } else if !w.used && !w.rules.contains(&Rule::R4) {
            out.push(Violation {
                file: rel_path.into(),
                line: w.line,
                rule: None,
                message: "unused waiver: nothing on the covered lines violates the waived rule"
                    .into(),
            });
        }
    }
    out
}

/// Whether the token stream contains an R4 waiver (used by the crate-root
/// check, which has no single offending line inside the file).
pub fn has_r4_waiver(src: &str) -> bool {
    lex(src).iter().any(|t| match &t.kind {
        Tok::LineComment(text) | Tok::BlockComment(text) => {
            parse_waiver(text, t.line).is_some_and(|w| w.rules.contains(&Rule::R4) && w.reason_ok)
        }
        _ => false,
    })
}

fn in_emission(cfg: &Config, fn_stack: &[(String, i32)]) -> bool {
    fn_stack.iter().any(|(name, _)| cfg.is_emission_fn(name))
}

fn in_r6(cfg: &Config, fn_stack: &[(String, i32)]) -> bool {
    fn_stack.iter().any(|(name, _)| cfg.is_r6_fn(name))
}

/// Which panic-freedom rule (if any) covers the current position: R1
/// module-wide in hot-path modules, otherwise R6 inside a fault-handling
/// function of *any* module. R1 wins where both apply, so existing
/// hot-path waivers keep naming the rule they were written for.
fn panic_scope(cfg: &Config, r1: bool, fn_stack: &[(String, i32)]) -> Option<Rule> {
    if r1 {
        return Some(Rule::R1);
    }
    if in_r6(cfg, fn_stack) {
        return Some(Rule::R6);
    }
    None
}

fn panic_msg(what: &str, rule: Rule, fn_stack: &[(String, i32)]) -> String {
    if rule == Rule::R6 {
        let f = fn_stack
            .last()
            .map_or("<unknown>", |(name, _)| name.as_str());
        return format!(
            "`{what}` in fault-handling function `{f}`; recovery code must not be able to panic"
        );
    }
    if what == "range slicing" {
        "range slicing in a hot-path module; use `get()`/`px_wire::bytes` and handle the miss"
            .into()
    } else {
        format!("`{what}` in a hot-path module; return a typed error or drop-and-count instead")
    }
}

fn in_recording(cfg: &Config, fn_stack: &[(String, i32)]) -> bool {
    fn_stack.iter().any(|(name, _)| cfg.is_recording_fn(name))
}

/// Which alloc-discipline rule (if any) covers the current function:
/// R3 inside an emission path of an R3 module, R5 inside a recording
/// function of an R5 module, R6 inside a fault-handling function of
/// any module (recovery must not lean on a possibly-exhausted
/// allocator).
fn alloc_scope(cfg: &Config, r3: bool, r5: bool, fn_stack: &[(String, i32)]) -> Option<Rule> {
    if r3 && in_emission(cfg, fn_stack) {
        return Some(Rule::R3);
    }
    if r5 && in_recording(cfg, fn_stack) {
        return Some(Rule::R5);
    }
    if in_r6(cfg, fn_stack) {
        return Some(Rule::R6);
    }
    None
}

fn alloc_msg(what: &str, rule: Rule, fn_stack: &[(String, i32)]) -> String {
    let f = fn_stack
        .last()
        .map_or("<unknown>", |(name, _)| name.as_str());
    let path = match rule {
        Rule::R5 => "recording-path",
        Rule::R6 => "fault-handling",
        _ => "emission-path",
    };
    format!("`{what}` allocates inside {path} function `{f}`")
}

/// R2 helper: whether a `SAFETY:` comment (or, for `unsafe fn`
/// declarations, a `# Safety` doc section) immediately precedes the
/// given `unsafe` token.
///
/// "Immediately precedes" is statement-shaped, not token-shaped:
/// walking backwards, tokens on the `unsafe` token's own line are
/// skipped (so `let x = unsafe { … }` is justified by the comment above
/// the statement), attributes are skipped (so `#[target_feature(…)]`
/// between a doc comment and `pub unsafe fn` does not hide the doc),
/// and then only comment tokens may remain between the justification
/// and the `unsafe`.
fn has_safety_comment(toks: &[Token], unsafe_tok: &Token) -> bool {
    // Find this token's position in the raw stream by identity.
    let pos = toks
        .iter()
        .position(|t| std::ptr::eq(t, unsafe_tok))
        .unwrap_or(0);
    // Attribute-bracket depth while scanning backwards: `]` opens,
    // the matching `[` closes.
    let mut bracket_depth = 0usize;
    for t in toks.iter().take(pos).rev() {
        match &t.kind {
            Tok::LineComment(text) | Tok::BlockComment(text) => {
                if text.contains("SAFETY:") || text.contains("# Safety") {
                    return true;
                }
            }
            Tok::Punct(']') => bracket_depth += 1,
            Tok::Punct('[') if bracket_depth > 0 => bracket_depth -= 1,
            // The `#` introducing an attribute whose brackets were just
            // consumed.
            Tok::Punct('#') => {}
            _ if bracket_depth > 0 => {}
            // Same-statement prefix on the `unsafe` token's line; a
            // statement boundary ends the leeway.
            _ if t.line == unsafe_tok.line && !matches!(t.kind, Tok::Punct(';' | '{' | '}')) => {}
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/merge.rs";
    const COLD: &str = "crates/px-sim/src/stats.rs";

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_source(&Config::default(), path, src)
    }

    #[test]
    fn r1_flags_unwrap_in_hot_module_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(check(HOT, src).len(), 1);
        assert!(check(COLD, src).is_empty());
    }

    #[test]
    fn r1_ignores_unwrap_in_tests_strings_and_comments() {
        let src = r#"
            // a comment mentioning .unwrap()
            fn f() { let s = ".unwrap()"; }
            #[cfg(test)]
            mod tests {
                fn g(x: Option<u8>) { x.unwrap(); }
            }
        "#;
        assert!(check(HOT, src).is_empty());
    }

    #[test]
    fn r1_slicing_rules() {
        assert_eq!(check(HOT, "fn f(b: &[u8]) { let _ = &b[1..3]; }").len(), 1);
        assert_eq!(check(HOT, "fn f(b: &[u8]) { let _ = &b[1..]; }").len(), 1);
        assert_eq!(check(HOT, "fn f(b: &[u8]) { let _ = &b[..3]; }").len(), 1);
        // Full-range and scalar indexing cannot panic-by-length-lie.
        assert!(check(HOT, "fn f(b: &[u8]) { let _ = &b[..]; }").is_empty());
        assert!(check(HOT, "fn f(b: &[u8]) { let _ = b[0]; }").is_empty());
        // Array literals and types are not indexing.
        assert!(check(HOT, "fn f() { let _ = [0u8; 8]; let _: [u8; 2]; }").is_empty());
    }

    #[test]
    fn r2_requires_adjacent_safety_comment() {
        let bad = "fn f() { unsafe { work() } }";
        assert_eq!(check(COLD, bad).len(), 1);
        let good = "fn f() {\n    // SAFETY: justified here.\n    unsafe { work() }\n}";
        assert!(check(COLD, good).is_empty());
        let far = "// SAFETY: too far away.\nfn f() { let x = 1; unsafe { work() } }";
        assert_eq!(check(COLD, far).len(), 1);
    }

    #[test]
    fn r2_sees_through_statement_prefixes_and_attributes() {
        // The comment justifies the whole statement, not just a
        // token-initial `unsafe`.
        let stmt = "fn f() {\n    // SAFETY: fine.\n    let x = unsafe { work() };\n}";
        assert!(check(COLD, stmt).is_empty());
        let stmt_bad = "fn f() {\n    let y = 1;\n    let x = unsafe { work() };\n}";
        assert_eq!(check(COLD, stmt_bad).len(), 1);
        // An `unsafe fn` documented with `# Safety`, with an attribute
        // between the doc and the declaration.
        let decl = "/// # Safety\n/// Caller checks CPU support.\n#[target_feature(enable = \"sse2\")]\npub unsafe fn k(d: &[u8]) {}";
        assert!(check(COLD, decl).is_empty());
        let decl_bad = "#[target_feature(enable = \"sse2\")]\npub unsafe fn k(d: &[u8]) {}";
        assert_eq!(check(COLD, decl_bad).len(), 1);
    }

    const SPLIT: &str = "crates/core/src/split.rs";

    #[test]
    fn r7_flags_payload_copies_in_split_emission_fns_only() {
        let bad = "fn push_to_into(&mut self, b: &[u8]) { self.buf.extend_from_slice(b); }";
        assert_eq!(check(SPLIT, bad).len(), 1);
        let bad2 = "fn push_sg(&mut self, b: &[u8]) { self.buf.copy_from_slice(b); }";
        assert_eq!(check(SPLIT, bad2).len(), 1);
        // Same copy outside an emission function, or outside the split
        // module, is fine.
        let setup = "fn rebuild(&mut self, b: &[u8]) { self.buf.extend_from_slice(b); }";
        assert!(check(SPLIT, setup).is_empty());
        assert!(check(HOT, bad).is_empty());
        // Waivable like every other rule.
        let waived = "fn push_to_into(&mut self, b: &[u8]) {\n    // px-analyze: allow(R7, reason = \"materialising fallback\")\n    self.buf.extend_from_slice(b);\n}";
        assert!(check(SPLIT, waived).is_empty());
        // Test code is exempt.
        let test_code =
            "#[cfg(test)]\nmod tests {\n    fn push_to_into(b: &mut Vec<u8>) { b.extend_from_slice(&[1]); }\n}";
        assert!(check(SPLIT, test_code).is_empty());
    }

    #[test]
    fn r3_flags_alloc_in_emission_fn_only() {
        let bad = "fn push_into(&mut self) { let v = Vec::new(); }";
        assert_eq!(check(HOT, bad).len(), 1);
        let ok_fn = "fn setup(&mut self) { let v = Vec::new(); }";
        assert!(check(HOT, ok_fn).is_empty());
        let bad2 = "fn emit_pending(&mut self) { let v = vec![0u8; 4]; }";
        assert_eq!(check(HOT, bad2).len(), 1);
        let bad3 = "fn forward(&mut self, b: &[u8]) { let v = b.to_vec(); }";
        assert_eq!(check(HOT, bad3).len(), 1);
    }

    #[test]
    fn waiver_suppresses_and_unused_waiver_errors() {
        let waived = "fn f(x: Option<u8>) {\n    // px-analyze: allow(R1, reason = \"test of waivers\")\n    x.unwrap();\n}";
        assert!(check(HOT, waived).is_empty());
        let unused = "// px-analyze: allow(R1, reason = \"nothing here\")\nfn f() {}";
        assert_eq!(check(HOT, unused).len(), 1);
        let no_reason = "fn f(x: Option<u8>) {\n    // px-analyze: allow(R1)\n    x.unwrap();\n}";
        // Waiver without reason: the unwrap stays AND the waiver errors.
        assert_eq!(check(HOT, no_reason).len(), 2);
    }
}
