//! The nine datapath-invariant rules and the waiver machinery.
//!
//! | Rule | Scope | What it rejects |
//! |------|-------|-----------------|
//! | R1   | hot-path modules + everything reachable from hot emission/recording functions | `unwrap`/`expect`/`panic!`-family and panicking range slicing `b[a..c]` |
//! | R2   | every workspace file | `unsafe` not immediately preceded by a `// SAFETY:` comment |
//! | R3   | emission functions + everything they reach | allocation (`Vec::new`, `vec!`, `Box::new`, `to_vec`, `clone`, `String` construction, `format!`) |
//! | R4   | crate roots | missing `#![forbid(unsafe_code)]`-class preamble or `[lints] workspace = true` |
//! | R5   | recording functions + everything they reach | the R3 allocation set — `record*`/`observe*`/`push` run per packet inside the datapath |
//! | R6   | fault-handling functions + everything they reach | *both* the R1 panic set and the R3 allocation set — recovery code runs while the system is already degraded |
//! | R7   | split-engine emission functions + everything they reach | payload byte copies (`.extend_from_slice()`, `.copy_from_slice()`) |
//! | R8   | everything reachable from the Deterministic-mode datapath, plus every function in the seeded attack/fault-generator modules | wall-clock reads (`Instant::now`, `SystemTime::now`), OS randomness (`thread_rng`, `RandomState`-default `HashMap`/`HashSet`), environment reads |
//! | R9   | everything reachable from per-packet functions | lock acquisition (`.lock()`), blocking receives (`.recv()`), unbounded-channel construction, socket serving/dialing (`TcpListener::bind`, `TcpStream::connect`) — locks belong at batch boundaries and HTTP serving on the control plane |
//!
//! R1/R3/R5/R6/R7 are *lexical* where they always were (so existing
//! waivers keep their meaning) and additionally propagate **transitively**
//! through the workspace call graph from their entry points; transitive
//! findings carry a blame chain:
//!
//! ```text
//! `Vec::new` allocates in `fold_sum`, reached from the emission path
//! via `push_into → combine_at_offset → fold_sum`
//! ```
//!
//! Code under `#[cfg(test)]` is exempt from everything but R2.
//! Intentional exceptions use inline waivers:
//!
//! ```text
//! // px-analyze: allow(R1, reason = "cold teardown, join propagates worker panics")
//! ```
//!
//! A waiver covers its own line and the next code line (attributes are
//! skipped, so a waiver above `#[inline]` covers the function it
//! annotates), must carry a non-empty reason, and is itself an error if
//! it never fires. A waiver whose covered line contains a *call* also
//! severs that call edge for the named rule's transitive propagation —
//! that is how a fault-handling function documents "this rebuild may
//! allocate" without waiving every allocation in the callee.

use crate::callgraph::{self, CallGraph, Fact, FactKind, FnDef, Reach};
use crate::lexer::{lex, Tok, Token};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Panic-freedom in hot-path modules and everything they reach.
    R1,
    /// `// SAFETY:` comment on every `unsafe`.
    R2,
    /// Alloc discipline on the emission paths.
    R3,
    /// Crate-root lint preamble conformance.
    R4,
    /// Alloc discipline on the observability recording paths.
    R5,
    /// Panic- and alloc-freedom in fault-handling/recovery paths.
    R6,
    /// Copy-freedom on the split-engine emission paths.
    R7,
    /// Determinism audit: no wall-clock, OS randomness, or env reads
    /// reachable from the Deterministic-mode datapath.
    R8,
    /// Blocking audit: no locks, blocking receives, or unbounded
    /// channels reachable from per-packet functions.
    R9,
}

impl Rule {
    /// The rule's display name (`R1`…`R9`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            "R9" => Some(Rule::R9),
            _ => None,
        }
    }

    /// All rules, for report tabulation.
    pub const ALL: [Rule; 9] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
    ];
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// The rule violated (`None` for waiver-hygiene errors, reported
    /// under the pseudo-rule `WAIVER`).
    pub rule: Option<Rule>,
    /// Human-readable description (includes the blame chain, if any).
    pub message: String,
    /// For transitive findings: the call chain entry → … → offending
    /// function, as display names. Empty for direct/lexical findings.
    pub chain: Vec<String>,
}

impl Violation {
    /// The `file:line:rule: message` form the CLI prints.
    pub fn render(&self) -> String {
        let rule = self.rule.map_or("WAIVER", Rule::name);
        format!("{}:{}:{}: {}", self.file, self.line, rule, self.message)
    }
}

/// Analyzer configuration: which modules each rule bites on.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path suffixes (workspace-relative) of R1 hot-path modules.
    pub r1_modules: Vec<&'static str>,
    /// Path suffixes of R3 alloc-discipline modules (R1 minus the
    /// deliberately allocating baseline).
    pub r3_modules: Vec<&'static str>,
    /// Function names that form the `PacketSink` emission paths; R3
    /// applies inside these plus any function ending in `_into`.
    pub emission_fns: Vec<&'static str>,
    /// Path suffixes of R5 recording-discipline modules (the px-obs
    /// flight-recorder datapath). R5 applies inside functions named
    /// `record*`, `observe*`, or `push` — the per-packet recording call
    /// sites; the drain/render side may allocate freely.
    pub r5_modules: Vec<&'static str>,
    /// Function-name prefixes of R6 fault-handling/recovery paths. R6
    /// applies in *every* module — degradation and self-healing code
    /// runs while the system is already in trouble, wherever it lives —
    /// and enforces both the R1 panic set and the R3 allocation set.
    pub r6_fn_prefixes: Vec<&'static str>,
    /// Path suffixes of R7 copy-freedom modules: the split engine's
    /// emission path, which must hand payload bytes onward as
    /// scatter-gather views rather than copying them.
    pub r7_modules: Vec<&'static str>,
    /// Path suffixes of modules whose *every* function is an R8 entry
    /// point: the seeded adversarial/fault generators. Their whole
    /// contract is that identical seeds give identical schedules — the
    /// attack matrix replays each schedule at four core counts and
    /// compares digests — so a wall-clock read, ambient RNG, or
    /// `RandomState` map anywhere inside (or reachable from) them
    /// silently breaks every replay-based gate in the tree.
    pub r8_modules: Vec<&'static str>,
    /// Emission functions that sit at batch *boundaries* rather than on
    /// the per-packet path: R9 does not use them as entry points (locks
    /// are legal there by design).
    pub r9_boundary_fns: Vec<&'static str>,
    /// Path suffixes of modules the transitive BFS never *enters*:
    /// deliberately off-invariant code (the rte_gro-style baseline, the
    /// pcap capture tap) that hot entry points may name but whose
    /// internals are not datapath. Lexical rules still apply inside.
    pub transitive_exempt: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            r1_modules: vec![
                "crates/core/src/merge.rs",
                "crates/core/src/coalesce.rs",
                "crates/core/src/split.rs",
                "crates/core/src/caravan_gw.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/flowtable.rs",
                "crates/core/src/baseline.rs",
                "crates/px-wire/src/tcp.rs",
                "crates/px-wire/src/udp.rs",
                "crates/px-wire/src/ipv4.rs",
                "crates/px-wire/src/frag.rs",
                "crates/px-wire/src/caravan.rs",
                "crates/px-wire/src/checksum.rs",
                "crates/px-wire/src/batchparse.rs",
                "crates/px-wire/src/buffer.rs",
                "crates/px-wire/src/pool.rs",
                "crates/px-wire/src/bytes.rs",
                // The flight recorder runs inline in every hot loop, so
                // its recording side is held to the same panic-freedom
                // bar as the datapath proper.
                "crates/px-obs/src/event.rs",
                "crates/px-obs/src/ring.rs",
                "crates/px-obs/src/hist.rs",
                "crates/px-obs/src/recorder.rs",
                // Tier 2: span rings, the hot-flow sketch, and the SLO
                // watchdog also run inline on the workers.
                "crates/px-obs/src/span.rs",
                "crates/px-obs/src/profile.rs",
                "crates/px-obs/src/slo.rs",
            ],
            // `baseline.rs` models DPDK rte_gro's per-packet allocation
            // churn on purpose — it is the paper's comparison point, so
            // the alloc rule exempts it (mirroring tests/hotpath_alloc.rs,
            // which gates merge/split/caravan only).
            r3_modules: vec![
                "crates/core/src/merge.rs",
                "crates/core/src/coalesce.rs",
                "crates/core/src/split.rs",
                "crates/core/src/caravan_gw.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/flowtable.rs",
                "crates/px-wire/src/tcp.rs",
                "crates/px-wire/src/udp.rs",
                "crates/px-wire/src/ipv4.rs",
                "crates/px-wire/src/frag.rs",
                "crates/px-wire/src/caravan.rs",
                "crates/px-wire/src/checksum.rs",
                "crates/px-wire/src/batchparse.rs",
                "crates/px-wire/src/buffer.rs",
                "crates/px-wire/src/pool.rs",
                "crates/px-wire/src/bytes.rs",
            ],
            emission_fns: vec![
                "accept",
                "emit",
                "forward",
                "forward_recorded",
                "append",
                "finalize_emit",
                "emit_pending",
                "process_batch",
                "push_sg",
            ],
            r5_modules: vec![
                "crates/px-obs/src/event.rs",
                "crates/px-obs/src/ring.rs",
                "crates/px-obs/src/hist.rs",
                "crates/px-obs/src/recorder.rs",
                "crates/px-obs/src/span.rs",
                "crates/px-obs/src/profile.rs",
                "crates/px-obs/src/slo.rs",
            ],
            // `forward_stash_leftovers` is the stash-overflow fallback
            // (a flow already under reordering or attack pressure) and
            // `on_report` is the F-PMTUD guard's spoof-classification
            // path — both run precisely when an adversary is pushing,
            // so they get the degraded-path panic/alloc discipline.
            r6_fn_prefixes: vec![
                "degrade",
                "on_fault",
                "restart_worker",
                "forward_stash_leftovers",
                "on_report",
            ],
            r7_modules: vec!["crates/core/src/split.rs"],
            r8_modules: vec!["crates/px-faults/src/attack.rs"],
            // process_batch drains a whole batch: it is where per-batch
            // bookkeeping (and its locks) legitimately lives.
            r9_boundary_fns: vec!["process_batch"],
            transitive_exempt: vec![
                // Models rte_gro's allocation churn as the comparison
                // point; its callees are the baseline's business.
                "crates/core/src/baseline.rs",
                // The pcap capture tap materializes frames by design;
                // it is a sim-side diagnostic, not a datapath stage.
                "crates/px-sim/src/pcap.rs",
                // Models NIC hardware TSO/GRO segmentation: the copies
                // emulate the DMA a real NIC performs and every slice is
                // behind the entry length check, so the software-datapath
                // rules stop at this hardware boundary.
                "crates/px-sim/src/nic.rs",
            ],
        }
    }
}

impl Config {
    fn is_r1(&self, rel_path: &str) -> bool {
        self.r1_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_r3(&self, rel_path: &str) -> bool {
        self.r3_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_emission_fn(&self, name: &str) -> bool {
        name.ends_with("_into") || self.emission_fns.contains(&name)
    }

    fn is_r5(&self, rel_path: &str) -> bool {
        self.r5_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_recording_fn(&self, name: &str) -> bool {
        // `evaluate` is the SLO watchdog's per-batch check: it runs
        // inline on the worker between batches, so it is held to the
        // same alloc/blocking discipline as the recording fns proper.
        name.starts_with("record")
            || name.starts_with("observe")
            || name == "push"
            || name == "evaluate"
    }

    fn is_r6_fn(&self, name: &str) -> bool {
        self.r6_fn_prefixes.iter().any(|p| name.starts_with(p))
    }

    fn is_r7(&self, rel_path: &str) -> bool {
        self.r7_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_r8_module(&self, rel_path: &str) -> bool {
        self.r8_modules.iter().any(|m| rel_path.ends_with(m))
    }

    fn is_exempt(&self, rel_path: &str) -> bool {
        self.transitive_exempt.iter().any(|m| rel_path.ends_with(m))
    }
}

/// A parsed `// px-analyze: allow(...)` waiver.
#[derive(Debug)]
struct Waiver {
    rules: Vec<Rule>,
    reason_ok: bool,
    /// Line the waiver comment sits on.
    line: u32,
    /// The next code line it covers (filled in during the scan).
    covers: Option<u32>,
    used: bool,
}

/// Parses a waiver out of a comment body, if present.
fn parse_waiver(text: &str, line: u32) -> Option<Waiver> {
    // Anchored at the start of the comment: doc comments (`///`, `//!`)
    // keep their extra `/`/`!` in the captured text, so waiver examples
    // quoted inside documentation do not register as live waivers.
    let rest = text.trim_start().strip_prefix("px-analyze:")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let inner = rest.split(')').next().unwrap_or("");
    let mut rules = Vec::new();
    let mut reason_ok = false;
    for part in inner.split(',') {
        let part = part.trim();
        if let Some(r) = Rule::parse(part) {
            rules.push(r);
        } else if let Some(rhs) = part.strip_prefix("reason") {
            let rhs = rhs.trim_start().strip_prefix('=').unwrap_or("").trim();
            // Reason must be a non-empty quoted string. The closing quote
            // may have been cut off by the `)` split when the reason
            // itself contains none — look at the raw text instead.
            reason_ok = rhs.starts_with('"') && rhs.len() > 1;
        }
    }
    // A reason containing commas gets split up; detect `reason = "…"`
    // against the whole comment as the authoritative check.
    if let Some(rat) = text.find("reason") {
        let rhs = text[rat + "reason".len()..].trim_start();
        if let Some(q) = rhs.strip_prefix('=') {
            let q = q.trim_start();
            if let Some(body) = q.strip_prefix('"') {
                reason_ok = body.find('"').is_some_and(|end| end > 0);
            }
        }
    }
    Some(Waiver {
        rules,
        reason_ok,
        line,
        covers: None,
        used: false,
    })
}

/// Collects waivers from one file's token stream and assigns each the
/// code line it covers. Attribute tokens — both `#[…]` outer and `#![…]`
/// inner forms — do not count as the covered code line: a waiver above
/// `#[inline] fn f…` covers the `fn` line.
fn collect_waivers(toks: &[Token]) -> Vec<Waiver> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut attr_depth = 0usize;
    let mut prev_was_hash = false;
    for t in toks {
        match &t.kind {
            Tok::LineComment(text) | Tok::BlockComment(text) => {
                if let Some(w) = parse_waiver(text, t.line) {
                    waivers.push(w);
                }
            }
            kind => {
                let is_attr = match kind {
                    Tok::Punct('#') => {
                        prev_was_hash = true;
                        true
                    }
                    // The `!` of an inner attribute `#![…]`: still part
                    // of the attribute, and `prev_was_hash` must survive
                    // to the `[` that follows.
                    Tok::Punct('!') if prev_was_hash => true,
                    Tok::Punct('[') if prev_was_hash || attr_depth > 0 => {
                        attr_depth += 1;
                        prev_was_hash = false;
                        true
                    }
                    Tok::Punct(']') if attr_depth > 0 => {
                        attr_depth -= 1;
                        true
                    }
                    _ => {
                        let inside = attr_depth > 0;
                        prev_was_hash = false;
                        inside
                    }
                };
                if !is_attr {
                    for w in waivers.iter_mut().filter(|w| w.covers.is_none()) {
                        if t.line >= w.line {
                            w.covers = Some(t.line);
                        }
                    }
                }
            }
        }
    }
    waivers
}

/// One input file for [`analyze`].
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// File contents.
    pub src: String,
    /// Compilation unit (crate package name) for edge filtering.
    pub unit: String,
    /// Test/bench/example code: may call anything, is never a callee.
    pub aux: bool,
}

/// Transitive crate-dependency map: `deps[a]` contains every crate `a`
/// may call into. An empty map permits only same-unit edges.
#[derive(Debug, Default)]
pub struct DepMap {
    /// Crate name → transitively reachable dependency names.
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

impl DepMap {
    /// Whether code in crate `a` can call code in crate `b`.
    pub fn allows(&self, a: &str, b: &str) -> bool {
        a == b || self.deps.get(a).is_some_and(|s| s.contains(b))
    }
}

/// Whole-workspace analysis statistics for the JSON report.
#[derive(Debug, Default)]
pub struct Stats {
    /// Non-test function definitions in the call graph.
    pub functions: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Used waivers per rule name (the waiver census).
    pub waivers_used: BTreeMap<&'static str, usize>,
}

struct WaiverBank {
    per_file: HashMap<String, Vec<Waiver>>,
}

impl WaiverBank {
    /// Finds a well-formed waiver in `file` covering `line` that names
    /// `rule`, marks it used, and reports whether one fired.
    fn try_use(&mut self, file: &str, line: u32, rule: Rule) -> bool {
        let Some(ws) = self.per_file.get_mut(file) else {
            return false;
        };
        let mut hit = false;
        for w in ws.iter_mut() {
            let covers_line = w.line == line || w.covers == Some(line);
            if covers_line && w.rules.contains(&rule) && w.reason_ok {
                w.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// Analyzes a set of source files as one program: lexical rules exactly
/// as before, plus call-graph-transitive propagation of
/// R1/R3/R5/R6/R7 and the R8/R9 audits. Returns violations in file
/// order and the graph/waiver statistics.
pub fn analyze(cfg: &Config, files: &[SourceFile], deps: &DepMap) -> (Vec<Violation>, Stats) {
    // --- Scan every file; flatten defs; collect waivers. ---
    let mut defs: Vec<FnDef> = Vec::new();
    let mut def_file: Vec<usize> = Vec::new();
    let mut toplevel: Vec<(usize, Vec<Fact>)> = Vec::new();
    let mut bank = WaiverBank {
        per_file: HashMap::new(),
    };
    for (fi, f) in files.iter().enumerate() {
        let scan = callgraph::scan_file(&f.rel_path, &f.src);
        for d in scan.defs {
            defs.push(d);
            def_file.push(fi);
        }
        toplevel.push((fi, scan.toplevel_facts));
        bank.per_file
            .insert(f.rel_path.clone(), collect_waivers(&lex(&f.src)));
    }

    // --- Build the graph with crate-dependency edge filtering. ---
    let unit_ok = |a: usize, b: usize| -> bool {
        let (fa, fb) = (&files[def_file[a]], &files[def_file[b]]);
        if fb.aux {
            return fa.rel_path == fb.rel_path;
        }
        if fa.aux {
            return true;
        }
        deps.allows(&fa.unit, &fb.unit)
    };
    let graph = CallGraph::build(&defs, &unit_ok);

    // --- Entry sets. ---
    let mut hot = Vec::new(); // emission fns in R3 modules
    let mut rec = Vec::new(); // recording fns in R5 modules
    let mut r6e = Vec::new(); // fault-handling fns anywhere
    let mut r7e = Vec::new(); // emission fns in R7 modules
    let mut r8x = Vec::new(); // every fn in the seeded-generator modules
    for (i, d) in defs.iter().enumerate() {
        if d.is_test || files[def_file[i]].aux || cfg.is_exempt(&d.file) {
            continue;
        }
        if cfg.is_r3(&d.file) && cfg.is_emission_fn(&d.name) {
            hot.push(i);
        }
        if cfg.is_r5(&d.file) && cfg.is_recording_fn(&d.name) {
            rec.push(i);
        }
        if cfg.is_r6_fn(&d.name) {
            r6e.push(i);
        }
        if cfg.is_r7(&d.file) && cfg.is_emission_fn(&d.name) {
            r7e.push(i);
        }
        if cfg.is_r8_module(&d.file) {
            r8x.push(i);
        }
    }
    let hot_rec: Vec<usize> = hot.iter().chain(rec.iter()).copied().collect();
    let r8e: Vec<usize> = hot_rec
        .iter()
        .chain(r6e.iter())
        .chain(r8x.iter())
        .copied()
        .collect();
    let r9e: Vec<usize> = hot_rec
        .iter()
        .copied()
        .filter(|&i| !cfg.r9_boundary_fns.contains(&defs[i].name.as_str()))
        .collect();

    // --- Per-rule reachability (waivers at call sites sever edges). ---
    let blocked = |d: usize| cfg.is_exempt(&defs[d].file);
    let run = |entries: &[usize], rule: Rule, bank: &mut WaiverBank| -> Vec<Reach> {
        graph.reach(entries, &blocked, &mut |caller, line| {
            bank.try_use(&defs[caller].file, line, rule)
        })
    };
    let reach_r1 = run(&hot_rec, Rule::R1, &mut bank);
    let reach_r3 = run(&hot, Rule::R3, &mut bank);
    let reach_r5 = run(&rec, Rule::R5, &mut bank);
    let reach_r6 = run(&r6e, Rule::R6, &mut bank);
    let reach_r7 = run(&r7e, Rule::R7, &mut bank);
    let reach_r8 = run(&r8e, Rule::R8, &mut bank);
    let reach_r9 = run(&r9e, Rule::R9, &mut bank);

    // --- Facts → violations, file by file. ---
    let chain_of = |state: &[Reach], d: usize| -> Vec<String> {
        match state[d] {
            Reach::Via { .. } => CallGraph::chain(&defs, state, d),
            _ => Vec::new(),
        }
    };
    let via = |state: &[Reach], d: usize| matches!(state[d], Reach::Via { .. });
    let entry = |state: &[Reach], d: usize| matches!(state[d], Reach::Entry);

    let mut out: Vec<Violation> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let mut raw: Vec<Violation> = Vec::new();
        let file_r1 = cfg.is_r1(&f.rel_path);
        let file_r3 = cfg.is_r3(&f.rel_path);
        let file_r5 = cfg.is_r5(&f.rel_path);
        let file_r7 = cfg.is_r7(&f.rel_path);

        for (di, d) in defs.iter().enumerate() {
            if def_file[di] != fi {
                continue;
            }
            let stack: Vec<&str> = d
                .enclosing
                .iter()
                .map(String::as_str)
                .chain(std::iter::once(d.name.as_str()))
                .collect();
            let in_emission = stack.iter().any(|n| cfg.is_emission_fn(n));
            let in_recording = stack.iter().any(|n| cfg.is_recording_fn(n));
            let in_r6 = stack.iter().any(|n| cfg.is_r6_fn(n));

            for fact in &d.facts {
                if fact.kind == FactKind::UnsafeUndoc {
                    raw.push(r2_violation(&f.rel_path, fact.line));
                    continue;
                }
                if fact.in_test || d.is_test {
                    continue;
                }
                let finding = match fact.kind {
                    FactKind::Panic | FactKind::RangeSlice => {
                        if file_r1 {
                            Some((Rule::R1, Vec::new()))
                        } else if in_r6 {
                            Some((Rule::R6, Vec::new()))
                        } else if via(&reach_r1, di) {
                            Some((Rule::R1, chain_of(&reach_r1, di)))
                        } else if via(&reach_r6, di) {
                            Some((Rule::R6, chain_of(&reach_r6, di)))
                        } else {
                            None
                        }
                    }
                    FactKind::Alloc => {
                        if file_r3 && in_emission {
                            Some((Rule::R3, Vec::new()))
                        } else if file_r5 && in_recording {
                            Some((Rule::R5, Vec::new()))
                        } else if in_r6 {
                            Some((Rule::R6, Vec::new()))
                        } else if via(&reach_r3, di) {
                            Some((Rule::R3, chain_of(&reach_r3, di)))
                        } else if via(&reach_r5, di) {
                            Some((Rule::R5, chain_of(&reach_r5, di)))
                        } else if via(&reach_r6, di) {
                            Some((Rule::R6, chain_of(&reach_r6, di)))
                        } else {
                            None
                        }
                    }
                    FactKind::PayloadCopy => {
                        if file_r7 && in_emission {
                            Some((Rule::R7, Vec::new()))
                        } else if via(&reach_r7, di) {
                            Some((Rule::R7, chain_of(&reach_r7, di)))
                        } else {
                            None
                        }
                    }
                    FactKind::WallClock
                    | FactKind::OsRandom
                    | FactKind::HashDefault
                    | FactKind::EnvRead => {
                        if entry(&reach_r8, di) {
                            Some((Rule::R8, Vec::new()))
                        } else if via(&reach_r8, di) {
                            Some((Rule::R8, chain_of(&reach_r8, di)))
                        } else {
                            None
                        }
                    }
                    FactKind::Lock
                    | FactKind::BlockingRecv
                    | FactKind::UnboundedChan
                    | FactKind::BlockingServe => {
                        if entry(&reach_r9, di) {
                            Some((Rule::R9, Vec::new()))
                        } else if via(&reach_r9, di) {
                            Some((Rule::R9, chain_of(&reach_r9, di)))
                        } else {
                            None
                        }
                    }
                    FactKind::UnsafeUndoc => unreachable!(),
                };
                if let Some((rule, chain)) = finding {
                    raw.push(fact_violation(rule, fact, d, chain));
                }
            }
        }

        // Toplevel facts (consts/statics): R1 applies module-wide, R2
        // everywhere; nothing else has a function scope to bind to.
        for fact in &toplevel[fi].1 {
            if fact.kind == FactKind::UnsafeUndoc {
                raw.push(r2_violation(&f.rel_path, fact.line));
            } else if !fact.in_test
                && file_r1
                && matches!(fact.kind, FactKind::Panic | FactKind::RangeSlice)
            {
                raw.push(Violation {
                    file: f.rel_path.clone(),
                    line: fact.line,
                    rule: Some(Rule::R1),
                    message: panic_msg(&fact.what, Rule::R1, None),
                    chain: Vec::new(),
                });
            }
        }

        // Waiver suppression, then this file's waiver hygiene.
        for v in raw {
            let waived = v
                .rule
                .is_some_and(|rule| bank.try_use(&v.file, v.line, rule));
            if !waived {
                out.push(v);
            }
        }
        if let Some(ws) = bank.per_file.get(&f.rel_path) {
            for w in ws {
                if !w.reason_ok {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: w.line,
                        rule: None,
                        message: "waiver without a non-empty `reason = \"…\"`".into(),
                        chain: Vec::new(),
                    });
                } else if !w.used && !w.rules.contains(&Rule::R4) {
                    out.push(Violation {
                        file: f.rel_path.clone(),
                        line: w.line,
                        rule: None,
                        message:
                            "unused waiver: nothing on the covered lines violates the waived rule"
                                .into(),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    // --- Stats. ---
    let mut stats = Stats {
        functions: defs.iter().filter(|d| !d.is_test).count(),
        call_edges: graph.edge_count,
        waivers_used: BTreeMap::new(),
    };
    for ws in bank.per_file.values() {
        for w in ws.iter().filter(|w| w.used) {
            for r in &w.rules {
                *stats.waivers_used.entry(r.name()).or_insert(0) += 1;
            }
        }
    }
    (out, stats)
}

fn r2_violation(file: &str, line: u32) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule: Some(Rule::R2),
        message: "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
        chain: Vec::new(),
    }
}

/// Builds the violation for a rule-claimed fact, direct or transitive.
fn fact_violation(rule: Rule, fact: &Fact, d: &FnDef, chain: Vec<String>) -> Violation {
    let what = &fact.what;
    let name = d.display();
    let message = if chain.is_empty() {
        match rule {
            Rule::R1 => panic_msg(what, rule, Some(&d.name)),
            Rule::R6 if matches!(fact.kind, FactKind::Panic | FactKind::RangeSlice) => {
                panic_msg(what, rule, Some(&d.name))
            }
            Rule::R3 | Rule::R5 | Rule::R6 => alloc_msg(what, rule, &d.name),
            Rule::R7 => format!(
                "`{what}` copies payload bytes in split emission function `{}`; emit an SgPacket view instead",
                d.name
            ),
            Rule::R8 => format!(
                "`{what}` is nondeterministic in Deterministic-mode datapath function `{}`; \
                 derive from the event stream or gate behind Parallel mode",
                d.name
            ),
            Rule::R9 if fact.kind == FactKind::BlockingServe => format!(
                "`{what}` opens a socket in per-packet function `{}`; serving belongs on the \
                 control plane (px-obs::serve), never on the datapath",
                d.name
            ),
            Rule::R9 => format!(
                "`{what}` can block in per-packet function `{}`; locks belong at batch boundaries",
                d.name
            ),
            Rule::R2 | Rule::R4 => unreachable!("handled elsewhere"),
        }
    } else {
        let path = chain.join(" → ");
        match rule {
            Rule::R1 => format!(
                "`{what}` in `{name}` is reachable from the hot path via `{path}`; \
                 return a typed error or drop-and-count instead"
            ),
            Rule::R3 => format!(
                "`{what}` allocates in `{name}`, reached from the emission path via `{path}`"
            ),
            Rule::R5 => format!(
                "`{what}` allocates in `{name}`, reached from the recording path via `{path}`"
            ),
            Rule::R6 if matches!(fact.kind, FactKind::Panic | FactKind::RangeSlice) => format!(
                "`{what}` in `{name}` is reachable from fault-handling code via `{path}`; \
                 recovery code must not be able to panic"
            ),
            Rule::R6 => format!(
                "`{what}` allocates in `{name}`, reached from fault-handling code via `{path}`; \
                 recovery must not lean on a possibly-exhausted allocator"
            ),
            Rule::R7 => format!(
                "`{what}` copies payload bytes in `{name}`, reached from split emission via \
                 `{path}`; emit an SgPacket view instead"
            ),
            Rule::R8 => format!(
                "`{what}` in `{name}` is nondeterministic, reachable from the Deterministic-mode \
                 datapath via `{path}`; derive from the event stream or gate behind Parallel mode"
            ),
            Rule::R9 if fact.kind == FactKind::BlockingServe => format!(
                "`{what}` in `{name}` opens a socket, reachable from a per-packet path via \
                 `{path}`; HTTP serving must stay on the control plane"
            ),
            Rule::R9 => format!(
                "`{what}` in `{name}` can block, reachable from a per-packet path via `{path}`; \
                 locks belong at batch boundaries"
            ),
            Rule::R2 | Rule::R4 => unreachable!("handled elsewhere"),
        }
    };
    Violation {
        file: d.file.clone(),
        line: fact.line,
        rule: Some(rule),
        message,
        chain,
    }
}

/// Analyzes one Rust source file in isolation. `rel_path` is
/// workspace-relative with forward slashes. Transitive propagation runs
/// within the file; cross-file edges obviously need [`analyze`].
pub fn check_source(cfg: &Config, rel_path: &str, src: &str) -> Vec<Violation> {
    let files = [SourceFile {
        rel_path: rel_path.to_string(),
        src: src.to_string(),
        unit: "solo".to_string(),
        aux: false,
    }];
    analyze(cfg, &files, &DepMap::default()).0
}

/// Whether the token stream contains an R4 waiver (used by the crate-root
/// check, which has no single offending line inside the file).
pub fn has_r4_waiver(src: &str) -> bool {
    lex(src).iter().any(|t| match &t.kind {
        Tok::LineComment(text) | Tok::BlockComment(text) => {
            parse_waiver(text, t.line).is_some_and(|w| w.rules.contains(&Rule::R4) && w.reason_ok)
        }
        _ => false,
    })
}

fn panic_msg(what: &str, rule: Rule, fn_name: Option<&str>) -> String {
    if rule == Rule::R6 {
        let f = fn_name.unwrap_or("<unknown>");
        return format!(
            "`{what}` in fault-handling function `{f}`; recovery code must not be able to panic"
        );
    }
    if what == "range slicing" {
        "range slicing in a hot-path module; use `get()`/`px_wire::bytes` and handle the miss"
            .into()
    } else {
        format!("`{what}` in a hot-path module; return a typed error or drop-and-count instead")
    }
}

fn alloc_msg(what: &str, rule: Rule, fn_name: &str) -> String {
    let path = match rule {
        Rule::R5 => "recording-path",
        Rule::R6 => "fault-handling",
        _ => "emission-path",
    };
    format!("`{what}` allocates inside {path} function `{fn_name}`")
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/core/src/merge.rs";
    const COLD: &str = "crates/px-sim/src/stats.rs";

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_source(&Config::default(), path, src)
    }

    #[test]
    fn r1_flags_unwrap_in_hot_module_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(check(HOT, src).len(), 1);
        assert!(check(COLD, src).is_empty());
    }

    #[test]
    fn r1_ignores_unwrap_in_tests_strings_and_comments() {
        let src = r#"
            // a comment mentioning .unwrap()
            fn f() { let s = ".unwrap()"; }
            #[cfg(test)]
            mod tests {
                fn g(x: Option<u8>) { x.unwrap(); }
            }
        "#;
        assert!(check(HOT, src).is_empty());
    }

    #[test]
    fn r1_slicing_rules() {
        assert_eq!(check(HOT, "fn f(b: &[u8]) { let _ = &b[1..3]; }").len(), 1);
        assert_eq!(check(HOT, "fn f(b: &[u8]) { let _ = &b[1..]; }").len(), 1);
        assert_eq!(check(HOT, "fn f(b: &[u8]) { let _ = &b[..3]; }").len(), 1);
        // Full-range and scalar indexing cannot panic-by-length-lie.
        assert!(check(HOT, "fn f(b: &[u8]) { let _ = &b[..]; }").is_empty());
        assert!(check(HOT, "fn f(b: &[u8]) { let _ = b[0]; }").is_empty());
        // Array literals and types are not indexing.
        assert!(check(HOT, "fn f() { let _ = [0u8; 8]; let _: [u8; 2]; }").is_empty());
    }

    #[test]
    fn r2_requires_adjacent_safety_comment() {
        let bad = "fn f() { unsafe { work() } }";
        assert_eq!(check(COLD, bad).len(), 1);
        let good = "fn f() {\n    // SAFETY: justified here.\n    unsafe { work() }\n}";
        assert!(check(COLD, good).is_empty());
        let far = "// SAFETY: too far away.\nfn f() { let x = 1; unsafe { work() } }";
        assert_eq!(check(COLD, far).len(), 1);
    }

    #[test]
    fn r2_sees_through_statement_prefixes_and_attributes() {
        // The comment justifies the whole statement, not just a
        // token-initial `unsafe`.
        let stmt = "fn f() {\n    // SAFETY: fine.\n    let x = unsafe { work() };\n}";
        assert!(check(COLD, stmt).is_empty());
        let stmt_bad = "fn f() {\n    let y = 1;\n    let x = unsafe { work() };\n}";
        assert_eq!(check(COLD, stmt_bad).len(), 1);
        // An `unsafe fn` documented with `# Safety`, with an attribute
        // between the doc and the declaration.
        let decl = "/// # Safety\n/// Caller checks CPU support.\n#[target_feature(enable = \"sse2\")]\npub unsafe fn k(d: &[u8]) {}";
        assert!(check(COLD, decl).is_empty());
        let decl_bad = "#[target_feature(enable = \"sse2\")]\npub unsafe fn k(d: &[u8]) {}";
        assert_eq!(check(COLD, decl_bad).len(), 1);
    }

    const SPLIT: &str = "crates/core/src/split.rs";

    #[test]
    fn r7_flags_payload_copies_in_split_emission_fns_only() {
        let bad = "fn push_to_into(&mut self, b: &[u8]) { self.buf.extend_from_slice(b); }";
        assert_eq!(check(SPLIT, bad).len(), 1);
        let bad2 = "fn push_sg(&mut self, b: &[u8]) { self.buf.copy_from_slice(b); }";
        assert_eq!(check(SPLIT, bad2).len(), 1);
        // Same copy outside an emission function, or outside the split
        // module, is fine.
        let setup = "fn rebuild(&mut self, b: &[u8]) { self.buf.extend_from_slice(b); }";
        assert!(check(SPLIT, setup).is_empty());
        assert!(check(HOT, bad).is_empty());
        // Waivable like every other rule.
        let waived = "fn push_to_into(&mut self, b: &[u8]) {\n    // px-analyze: allow(R7, reason = \"materialising fallback\")\n    self.buf.extend_from_slice(b);\n}";
        assert!(check(SPLIT, waived).is_empty());
        // Test code is exempt.
        let test_code =
            "#[cfg(test)]\nmod tests {\n    fn push_to_into(b: &mut Vec<u8>) { b.extend_from_slice(&[1]); }\n}";
        assert!(check(SPLIT, test_code).is_empty());
    }

    #[test]
    fn r3_flags_alloc_in_emission_fn_only() {
        let bad = "fn push_into(&mut self) { let v = Vec::new(); }";
        assert_eq!(check(HOT, bad).len(), 1);
        let ok_fn = "fn setup(&mut self) { let v = Vec::new(); }";
        assert!(check(HOT, ok_fn).is_empty());
        let bad2 = "fn emit_pending(&mut self) { let v = vec![0u8; 4]; }";
        assert_eq!(check(HOT, bad2).len(), 1);
        let bad3 = "fn forward(&mut self, b: &[u8]) { let v = b.to_vec(); }";
        assert_eq!(check(HOT, bad3).len(), 1);
    }

    #[test]
    fn waiver_suppresses_and_unused_waiver_errors() {
        let waived = "fn f(x: Option<u8>) {\n    // px-analyze: allow(R1, reason = \"test of waivers\")\n    x.unwrap();\n}";
        assert!(check(HOT, waived).is_empty());
        let unused = "// px-analyze: allow(R1, reason = \"nothing here\")\nfn f() {}";
        assert_eq!(check(HOT, unused).len(), 1);
        let no_reason = "fn f(x: Option<u8>) {\n    // px-analyze: allow(R1)\n    x.unwrap();\n}";
        // Waiver without reason: the unwrap stays AND the waiver errors.
        assert_eq!(check(HOT, no_reason).len(), 2);
    }

    #[test]
    fn waiver_skips_outer_and_inner_attributes() {
        // Waiver above an outer attribute covers the fn line it annotates.
        let outer = "// px-analyze: allow(R1, reason = \"attr hop\")\n#[inline]\nfn f(x: Option<u8>) { x.unwrap(); }";
        assert!(check(HOT, outer).is_empty(), "{:#?}", check(HOT, outer));
        // Waiver above an *inner* attribute (`#![…]`) must also skip it:
        // this was the regression — the `!` token broke attribute
        // tracking and the waiver attached to the attribute line.
        let inner = "// px-analyze: allow(R1, reason = \"attr hop\")\n#![allow(dead_code)]\nfn f(x: Option<u8>) { x.unwrap(); }";
        assert!(check(HOT, inner).is_empty(), "{:#?}", check(HOT, inner));
        // Stacked attributes are all skipped.
        let stacked = "// px-analyze: allow(R1, reason = \"attr hop\")\n#[inline]\n#[cold]\nfn f(x: Option<u8>) { x.unwrap(); }";
        assert!(check(HOT, stacked).is_empty(), "{:#?}", check(HOT, stacked));
    }

    #[test]
    fn transitive_r3_carries_a_blame_chain() {
        let src = "fn push_into(&mut self) { helper_a(); }\n\
                   fn helper_a() { helper_b(); }\n\
                   fn helper_b() { let v = Vec::new(); }";
        let vs = check(HOT, src);
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, Some(Rule::R3));
        assert_eq!(vs[0].chain, vec!["push_into", "helper_a", "helper_b"]);
        assert!(vs[0].message.contains("push_into → helper_a → helper_b"));
        // The same helpers without a hot entry point are clean.
        let cold_src = "fn setup(&mut self) { helper_a(); }\n\
                        fn helper_a() { helper_b(); }\n\
                        fn helper_b() { let v = Vec::new(); }";
        assert!(check(HOT, cold_src).is_empty());
    }

    #[test]
    fn transitive_r1_reaches_helpers_outside_hot_modules() {
        // check_source scopes by path: in a cold file nothing fires,
        // but R6 entries propagate anywhere.
        let src = "fn degrade_link(&mut self) { helper(); }\n\
                   fn helper(x: Option<u8>) { x.unwrap(); }";
        let vs = check(COLD, src);
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, Some(Rule::R6));
        assert_eq!(vs[0].chain, vec!["degrade_link", "helper"]);
    }

    #[test]
    fn r8_flags_nondeterminism_reachable_from_hot_entries() {
        let direct = "fn push_into(&mut self) { let t = Instant::now(); }";
        let vs = check(HOT, direct);
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, Some(Rule::R8));
        let transitive = "fn push_into(&mut self) { stamp(); }\n\
                          fn stamp() { let t = Instant::now(); }";
        let vs = check(HOT, transitive);
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, Some(Rule::R8));
        assert_eq!(vs[0].chain, vec!["push_into", "stamp"]);
        // The same clock read with no path from an entry point is fine.
        assert!(check(HOT, "fn bench_setup() { let t = Instant::now(); }").is_empty());
    }

    #[test]
    fn r9_flags_blocking_on_per_packet_paths_but_not_batch_boundaries() {
        let bad = "fn push_into(&mut self) { grab(); }\n\
                   fn grab(&self) { let g = self.stats.lock(); }";
        let vs = check(HOT, bad);
        assert_eq!(vs.len(), 1, "{vs:#?}");
        assert_eq!(vs[0].rule, Some(Rule::R9));
        // process_batch is a declared batch boundary: locks are legal.
        let boundary = "fn process_batch(&mut self) { let g = self.stats.lock(); }";
        assert!(check(HOT, boundary).is_empty());
    }

    #[test]
    fn call_site_waiver_severs_transitive_propagation() {
        // The R6 waiver on the call line documents that the rebuild may
        // allocate — the callee's internals are then out of scope.
        let src = "fn restart_worker(&mut self) {\n\
                       // px-analyze: allow(R6, reason = \"post-panic rebuild allocates outside the degraded path\")\n\
                       rebuild();\n\
                   }\n\
                   fn rebuild() { let v = Vec::new(); }";
        let vs = check(COLD, src);
        assert!(vs.is_empty(), "{vs:#?}");
    }
}
