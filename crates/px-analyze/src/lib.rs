//! # px-analyze — workspace datapath-invariant checker
//!
//! A self-contained static analyzer (no external dependencies, no
//! syn/proc-macro machinery) that walks every Rust source file in the
//! PacketExpress workspace and enforces the nine datapath invariants
//! documented in `DESIGN.md`:
//!
//! * **R1 panic-freedom** — hot-path modules, and everything reachable
//!   from hot emission/recording functions through the call graph,
//!   contain no `unwrap`, `expect`, `panic!`-family macros, or panicking
//!   range slicing.
//! * **R2 unsafe hygiene** — every `unsafe` is immediately preceded by a
//!   `// SAFETY:` comment.
//! * **R3 alloc discipline** — functions on the `PacketSink` emission
//!   paths, and everything they transitively call, perform no heap
//!   allocation.
//! * **R4 lint-config conformance** — every crate root carries the agreed
//!   `#![forbid(unsafe_code)]`-class preamble and opts into
//!   `[workspace.lints]`.
//! * **R5 recording discipline** — the flight recorder's per-packet call
//!   sites (`record*`, `observe*`, `push` in `px-obs`) and their callees
//!   perform no heap allocation.
//! * **R6 recovery discipline** — fault-handling functions (`degrade*`,
//!   `on_fault*`, `restart_worker*`, in any module) and everything they
//!   reach are both panic-free and alloc-free.
//! * **R7 copy-freedom** — the split engine's emission paths never
//!   re-copy payload bytes; they emit scatter-gather views.
//! * **R8 determinism** — no wall-clock reads, OS randomness, or
//!   environment reads are reachable from the Deterministic-mode
//!   datapath; digest pinning and the chaos matrix depend on this.
//! * **R9 non-blocking** — no lock acquisition, blocking receive, or
//!   unbounded channel is reachable from per-packet functions; locks
//!   belong at batch boundaries and in the StatsRegistry merge.
//!
//! Rules R1/R3/R5/R6/R7/R8/R9 are *interprocedural*: `callgraph.rs`
//! builds a workspace-wide function index and call graph, and findings
//! in helper functions carry blame chains
//! (`push_into → combine_at_offset → fold_sum`).
//!
//! Run it with `cargo run -p px-analyze -- check` (add `--format json`
//! for machine-readable output). Violations print as
//! `file:line:rule: message` and a non-zero exit code.
//!
//! Intentional exceptions are waived inline:
//!
//! ```text
//! // px-analyze: allow(R1, reason = "cold teardown, join propagates worker panics")
//! ```
//!
//! Waivers require a reason and are themselves linted: an unused waiver
//! is an error, so the waiver list can never rot. A waiver covering a
//! *call* line also severs that edge for the named rule's transitive
//! propagation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod rules;

pub use rules::{Config, DepMap, Rule, SourceFile, Stats, Violation};

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Result of one full workspace check.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files analyzed.
    pub files_checked: usize,
    /// All violations, in walk order.
    pub violations: Vec<Violation>,
    /// Call-graph and waiver statistics.
    pub stats: Stats,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule name (only rules with hits appear).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            let name = v.rule.map_or("WAIVER", Rule::name);
            *counts.entry(name).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the report as a JSON object (hand-rolled; the crate has no
    /// dependencies). Stable key order: tool, files_checked, graph and
    /// waiver statistics, per-rule counts, then the violation list.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"px-analyze\",\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!("  \"functions\": {},\n", self.stats.functions));
        out.push_str(&format!("  \"call_edges\": {},\n", self.stats.call_edges));
        out.push_str("  \"rules\": {");
        for (i, r) in Rule::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let n = self
                .violations
                .iter()
                .filter(|v| v.rule == Some(*r))
                .count();
            out.push_str(&format!("\"{}\": {}", r.name(), n));
        }
        out.push_str("},\n");
        out.push_str("  \"waivers_used\": {");
        for (i, (rule, n)) in self.stats.waivers_used.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{rule}\": {n}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"violation_count\": {},\n",
            self.violations.len()
        ));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": \"{}\", ", json_escape(&v.file)));
            out.push_str(&format!("\"line\": {}, ", v.line));
            out.push_str(&format!(
                "\"rule\": \"{}\", ",
                v.rule.map_or("WAIVER", Rule::name)
            ));
            if !v.chain.is_empty() {
                out.push_str("\"chain\": [");
                for (j, c) in v.chain.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\"", json_escape(c)));
                }
                out.push_str("], ");
            }
            out.push_str(&format!("\"message\": \"{}\"", json_escape(&v.message)));
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor"];

/// Path fragments excluded from the walk: the analyzer's own test
/// fixtures are intentionally in violation.
const SKIP_PATHS: &[&str] = &["crates/px-analyze/tests/fixtures"];

/// Runs the full workspace check rooted at `root` (the directory holding
/// the workspace `Cargo.toml`).
pub fn run_check(cfg: &Config, root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    let (dir_to_pkg, deps) = crate_graph(root);
    let mut sources = Vec::new();
    let mut r4_violations = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if is_crate_root(&rel_str) {
            r4_violations.extend(check_r4(root, &rel_str, &src));
        }
        let (unit, aux) = classify(&rel_str, &dir_to_pkg);
        sources.push(SourceFile {
            rel_path: rel_str,
            src,
            unit,
            aux,
        });
    }
    let files_checked = sources.len();
    let (mut violations, stats) = rules::analyze(cfg, &sources, &deps);
    violations.extend(r4_violations);
    Ok(Report {
        files_checked,
        violations,
        stats,
    })
}

/// Compilation unit and aux-ness of one workspace-relative path. Crate
/// `src/` trees map to their package name; `tests/`, `benches/`, and
/// `examples/` trees (of a crate or the workspace root) are aux — they
/// may call anything but are never callees.
fn classify(rel: &str, dir_to_pkg: &BTreeMap<String, String>) -> (String, bool) {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 3 && parts[0] == "crates" {
        let pkg = dir_to_pkg
            .get(parts[1])
            .cloned()
            .unwrap_or_else(|| parts[1].to_string());
        let aux = parts[2] != "src";
        return (pkg, aux);
    }
    let aux = matches!(parts.first(), Some(&"tests" | &"benches" | &"examples"));
    ("workspace".to_string(), aux)
}

/// Parses `crates/*/Cargo.toml` for package names and path dependencies,
/// returning (crate dir → package name) and the *transitive* dependency
/// map used to filter call-graph edges to legal crate directions.
fn crate_graph(root: &Path) -> (BTreeMap<String, String>, DepMap) {
    let mut dir_to_pkg = BTreeMap::new();
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return (dir_to_pkg, DepMap::default());
    };
    let mut manifests = Vec::new();
    for entry in entries.flatten() {
        let manifest = entry.path().join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            let dir = entry.file_name().to_string_lossy().to_string();
            manifests.push((dir, text));
        }
    }
    for (dir, text) in &manifests {
        if let Some(name) = manifest_package_name(text) {
            dir_to_pkg.insert(dir.clone(), name);
        }
    }
    let packages: BTreeSet<&str> = dir_to_pkg.values().map(String::as_str).collect();
    for (dir, text) in &manifests {
        let Some(pkg) = dir_to_pkg.get(dir) else {
            continue;
        };
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                // Only [dependencies] — dev-deps are aux-only and would
                // add illegal lib→lib directions.
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let key = line
                .split(['=', '.', ' '])
                .next()
                .unwrap_or("")
                .trim()
                .to_string();
            if packages.contains(key.as_str()) {
                direct.entry(pkg.clone()).or_default().insert(key);
            }
        }
    }
    // Transitive closure.
    let mut deps = direct.clone();
    loop {
        let mut grew = false;
        for pkg in packages.iter() {
            let cur: Vec<String> = deps
                .get(*pkg)
                .map(|s| s.iter().cloned().collect())
                .unwrap_or_default();
            for d in cur {
                let extra: Vec<String> = deps
                    .get(&d)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                let set = deps.entry(pkg.to_string()).or_default();
                for e in extra {
                    grew |= set.insert(e);
                }
            }
        }
        if !grew {
            break;
        }
    }
    (dir_to_pkg, DepMap { deps })
}

/// The `name = "…"` under `[package]`.
fn manifest_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_PATHS.iter().any(|p| rel_str.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Whether this workspace-relative path is a crate root (`src/lib.rs` of
/// the root package or of a `crates/*` member).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// R4: crate-root preamble + Cargo.toml `[lints] workspace = true`.
fn check_r4(root: &Path, rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if rules::has_r4_waiver(src) {
        return out;
    }
    let has_unsafe_gate =
        src.contains("#![forbid(unsafe_code)]") || src.contains("#![deny(unsafe_code)]");
    if !has_unsafe_gate {
        out.push(Violation {
            file: rel.into(),
            line: 1,
            rule: Some(Rule::R4),
            message: "crate root lacks `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`)"
                .into(),
            chain: Vec::new(),
        });
    }
    if !src.contains("#![warn(missing_docs)]") {
        out.push(Violation {
            file: rel.into(),
            line: 1,
            rule: Some(Rule::R4),
            message: "crate root lacks `#![warn(missing_docs)]`".into(),
            chain: Vec::new(),
        });
    }
    // The matching Cargo.toml sits two levels up from src/lib.rs.
    let manifest_rel = rel.trim_end_matches("src/lib.rs").to_string() + "Cargo.toml";
    let manifest = fs::read_to_string(root.join(&manifest_rel)).unwrap_or_default();
    let has_workspace_lints = manifest.split("[lints]").nth(1).is_some_and(|after| {
        after
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty())
            .is_some_and(|l| l.replace(' ', "") == "workspace=true")
    });
    if !has_workspace_lints {
        out.push(Violation {
            file: manifest_rel,
            line: 1,
            rule: Some(Rule::R4),
            message: "crate manifest lacks `[lints] workspace = true`".into(),
            chain: Vec::new(),
        });
    }
    out
}
