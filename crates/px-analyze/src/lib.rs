//! # px-analyze — workspace datapath-invariant checker
//!
//! A self-contained static analyzer (no external dependencies, no
//! syn/proc-macro machinery) that walks every Rust source file in the
//! PacketExpress workspace and enforces the six datapath invariants
//! documented in `DESIGN.md`:
//!
//! * **R1 panic-freedom** — hot-path modules contain no `unwrap`,
//!   `expect`, `panic!`-family macros, or panicking range slicing.
//! * **R2 unsafe hygiene** — every `unsafe` is immediately preceded by a
//!   `// SAFETY:` comment.
//! * **R3 alloc discipline** — functions on the `PacketSink` emission
//!   paths perform no heap allocation.
//! * **R4 lint-config conformance** — every crate root carries the agreed
//!   `#![forbid(unsafe_code)]`-class preamble and opts into
//!   `[workspace.lints]`.
//! * **R5 recording discipline** — the flight recorder's per-packet call
//!   sites (`record*`, `observe*`, `push` in `px-obs`) perform no heap
//!   allocation; observability must never put pressure on the allocator
//!   the datapath was freed from.
//! * **R6 recovery discipline** — fault-handling functions
//!   (`degrade*`, `on_fault*`, `restart_worker*`, in any module) are
//!   both panic-free and alloc-free: code that runs *because* the
//!   system is already in trouble must not be able to make things
//!   worse by unwinding or leaning on a possibly-exhausted allocator.
//!
//! Run it with `cargo run -p px-analyze -- check` (add `--format json`
//! for machine-readable output). Violations print as
//! `file:line:rule: message` and a non-zero exit code.
//!
//! Intentional exceptions are waived inline:
//!
//! ```text
//! // px-analyze: allow(R1, reason = "cold teardown, join propagates worker panics")
//! ```
//!
//! Waivers require a reason and are themselves linted: an unused waiver
//! is an error, so the waiver list can never rot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

pub use rules::{Config, Rule, Violation};

use std::fs;
use std::path::{Path, PathBuf};

/// Result of one full workspace check.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files analyzed.
    pub files_checked: usize,
    /// All violations, in walk order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as a JSON object (hand-rolled; the crate has no
    /// dependencies). Stable key order: tool, files_checked, violations.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"px-analyze\",\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!(
            "  \"violation_count\": {},\n",
            self.violations.len()
        ));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": \"{}\", ", json_escape(&v.file)));
            out.push_str(&format!("\"line\": {}, ", v.line));
            out.push_str(&format!(
                "\"rule\": \"{}\", ",
                v.rule.map_or("WAIVER", Rule::name)
            ));
            out.push_str(&format!("\"message\": \"{}\"", json_escape(&v.message)));
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor"];

/// Path fragments excluded from the walk: the analyzer's own test
/// fixtures are intentionally in violation.
const SKIP_PATHS: &[&str] = &["crates/px-analyze/tests/fixtures"];

/// Runs the full workspace check rooted at `root` (the directory holding
/// the workspace `Cargo.toml`).
pub fn run_check(cfg: &Config, root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    let mut files_checked = 0usize;
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        files_checked += 1;
        violations.extend(rules::check_source(cfg, &rel_str, &src));
        if is_crate_root(&rel_str) {
            violations.extend(check_r4(root, &rel_str, &src));
        }
    }
    Ok(Report {
        files_checked,
        violations,
    })
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_PATHS.iter().any(|p| rel_str.starts_with(p)) {
            continue;
        }
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Whether this workspace-relative path is a crate root (`src/lib.rs` of
/// the root package or of a `crates/*` member).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
}

/// R4: crate-root preamble + Cargo.toml `[lints] workspace = true`.
fn check_r4(root: &Path, rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if rules::has_r4_waiver(src) {
        return out;
    }
    let has_unsafe_gate =
        src.contains("#![forbid(unsafe_code)]") || src.contains("#![deny(unsafe_code)]");
    if !has_unsafe_gate {
        out.push(Violation {
            file: rel.into(),
            line: 1,
            rule: Some(Rule::R4),
            message: "crate root lacks `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]`)"
                .into(),
        });
    }
    if !src.contains("#![warn(missing_docs)]") {
        out.push(Violation {
            file: rel.into(),
            line: 1,
            rule: Some(Rule::R4),
            message: "crate root lacks `#![warn(missing_docs)]`".into(),
        });
    }
    // The matching Cargo.toml sits two levels up from src/lib.rs.
    let manifest_rel = rel.trim_end_matches("src/lib.rs").to_string() + "Cargo.toml";
    let manifest = fs::read_to_string(root.join(&manifest_rel)).unwrap_or_default();
    let has_workspace_lints = manifest.split("[lints]").nth(1).is_some_and(|after| {
        after
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty())
            .is_some_and(|l| l.replace(' ', "") == "workspace=true")
    });
    if !has_workspace_lints {
        out.push(Violation {
            file: manifest_rel,
            line: 1,
            rule: Some(Rule::R4),
            message: "crate manifest lacks `[lints] workspace = true`".into(),
        });
    }
    out
}
