//! CLI for the px-analyze workspace checker.
//!
//! ```text
//! cargo run -p px-analyze -- check                # human-readable
//! cargo run -p px-analyze -- check --format json  # machine-readable
//! ```
//!
//! Exit code 0 when clean, 1 when violations were found, 2 on usage or
//! I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p px-analyze`, the manifest dir is
    // crates/px-analyze; the workspace root is two levels up. Fall back
    // to the current directory for a standalone binary invocation.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut format = "text".to_string();
    let mut root = workspace_root();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" => cmd = Some("check"),
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "text" => format = f.clone(),
                _ => {
                    eprintln!("px-analyze: --format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("px-analyze: --root takes a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: px-analyze check [--format text|json] [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("px-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if cmd != Some("check") {
        eprintln!("usage: px-analyze check [--format text|json] [--root DIR]");
        return ExitCode::from(2);
    }

    let cfg = px_analyze::Config::default();
    let report = match px_analyze::run_check(&cfg, &root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("px-analyze: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{}", v.render());
        }
        println!(
            "px-analyze: {} file(s) checked, {} violation(s)",
            report.files_checked,
            report.violations.len()
        );
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
