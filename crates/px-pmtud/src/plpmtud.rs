//! Packetization-layer PMTUD (RFC 4821), Scamper-style.
//!
//! The paper's §5.3 baseline: "F-PMTUD is compared against Scamper, a
//! UDP-based PLPMTUD implementation. We confirm that both methods produce
//! identical PMTU values on all paths, but F-PMTUD is significantly
//! faster, as Scamper requires multiple RTTs to converge."
//!
//! The prober binary-searches probe sizes with DF set. A probe that is
//! echoed by the destination proves the path carries that size; a probe
//! that vanishes (no ICMP needed — loss *is* the signal) lowers the upper
//! bound, but only after a conservative timeout and a retry, because loss
//! is ambiguous between congestion and MTU (the very ambiguity §3 calls
//! out). That timeout tax is where the paper's 368× gap comes from.

use crate::fpmtud::ECHO_MAGIC;
use crate::ECHO_PORT;
use px_sim::node::{Ctx, Node, PortId};
use px_sim::Nanos;
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, PacketBuf, UdpRepr};
use std::any::Any;
use std::net::Ipv4Addr;

/// RFC 4821's recommended base: a size assumed to work everywhere.
pub const SEARCH_LOW_DEFAULT: usize = 1280;

/// The outcome of a PLPMTUD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlpmtudOutcome {
    /// Path MTU found (the largest size that was acknowledged).
    pub pmtu: usize,
    /// Total convergence latency.
    pub elapsed: Nanos,
    /// Probes sent.
    pub probes_sent: u32,
    /// Probes that timed out.
    pub timeouts: u32,
}

/// PLPMTUD prober configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlpmtudConfig {
    /// Our address.
    pub addr: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Known-good lower bound (RFC 4821 BASE_PLPMTU-ish).
    pub search_low: usize,
    /// Upper bound: the local interface MTU.
    pub search_high: usize,
    /// Per-probe timeout (Scamper default is seconds — loss must be
    /// distinguished from congestion).
    pub timeout: Nanos,
    /// Tries per candidate size before concluding "too big".
    pub tries_per_size: u32,
    /// Search granularity in bytes.
    pub granularity: usize,
}

impl PlpmtudConfig {
    /// Scamper-like defaults for a path probed from `addr` to `dst` with
    /// local MTU `mtu`.
    pub fn scamper(addr: Ipv4Addr, dst: Ipv4Addr, mtu: usize) -> Self {
        PlpmtudConfig {
            addr,
            dst,
            search_low: SEARCH_LOW_DEFAULT,
            search_high: mtu,
            timeout: Nanos::from_millis(1750),
            tries_per_size: 2,
            granularity: 4,
        }
    }
}

/// The RFC 4821 prober node.
pub struct PlpmtudProber {
    /// Configuration.
    pub cfg: PlpmtudConfig,
    low: usize, // largest size proven to work
    low_confirmed: bool,
    high: usize, // smallest size proven (or assumed) too big, minus nothing
    current: usize,
    tries: u32,
    probes_sent: u32,
    timeouts: u32,
    seq: u32,
    ident: u16,
    started_at: Nanos,
    /// Result, once known.
    pub outcome: Option<PlpmtudOutcome>,
}

impl PlpmtudProber {
    /// Creates a prober; probing starts at simulation start.
    pub fn new(cfg: PlpmtudConfig) -> Self {
        PlpmtudProber {
            cfg,
            low: cfg.search_low,
            low_confirmed: false,
            high: cfg.search_high,
            current: cfg.search_high, // first probe: try the full MTU
            tries: 0,
            probes_sent: 0,
            timeouts: 0,
            seq: 0,
            ident: 0x4821,
            started_at: Nanos::ZERO,
            outcome: None,
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<'_>) {
        self.seq += 1;
        self.probes_sent += 1;
        self.tries += 1;
        let payload_len = self.current - 28;
        let mut payload = vec![0u8; payload_len];
        payload[..4].copy_from_slice(&self.seq.to_be_bytes());
        let dg = UdpRepr {
            src_port: ECHO_PORT,
            dst_port: ECHO_PORT,
        }
        .build_datagram(self.cfg.addr, self.cfg.dst, &payload)
        .expect("fits");
        let mut ip = Ipv4Repr::new(self.cfg.addr, self.cfg.dst, IpProtocol::Udp, dg.len());
        ip.dont_frag = true; // probes must not be fragmented (RFC 4821 §3)
        ip.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        let pkt = ip.build_packet(&dg).expect("fits");
        ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
        ctx.set_timer(self.cfg.timeout, u64::from(self.seq));
    }

    fn next_size(&mut self, ctx: &mut Ctx<'_>) {
        if self.high.saturating_sub(self.low) <= self.cfg.granularity {
            if !self.low_confirmed && self.low > 68 + self.cfg.granularity {
                // The search converged onto a lower bound that was
                // never actually acknowledged (the true PMTU may sit
                // below BASE_PLPMTU, RFC 4821 §7.4): restart the
                // search below it.
                self.high = self.low;
                self.low = 68; // IPv4 minimum
                self.current = self.high;
                self.tries = 0;
                self.send_probe(ctx);
                return;
            }
            // Nothing ever got through; report the floor.
            self.outcome = Some(PlpmtudOutcome {
                pmtu: self.low,
                elapsed: ctx.now - self.started_at,
                probes_sent: self.probes_sent,
                timeouts: self.timeouts,
            });
            return;
        }
        self.current = (self.low + self.high) / 2;
        self.tries = 0;
        self.send_probe(ctx);
    }
}

impl Node for PlpmtudProber {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started_at = ctx.now;
        self.send_probe(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
        if self.outcome.is_some() {
            return;
        }
        let bytes = pkt.as_slice();
        let Ok(ip) = Ipv4Packet::new_checked(bytes) else {
            return;
        };
        // RFC 4821 deliberately does not depend on ICMP; Scamper's
        // PLPMTUD mode ignores it too (it may be absent or forged).
        if ip.protocol() != IpProtocol::Udp {
            return;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return;
        };
        if udp.payload().len() < 4 || udp.payload()[0..4] != ECHO_MAGIC {
            return;
        }
        // Ack for the current size: it fits.
        self.low_confirmed = true;
        if self.current == self.cfg.search_high {
            // The full interface MTU works: done immediately.
            self.outcome = Some(PlpmtudOutcome {
                pmtu: self.current,
                elapsed: ctx.now - self.started_at,
                probes_sent: self.probes_sent,
                timeouts: self.timeouts,
            });
            return;
        }
        self.low = self.current;
        self.next_size(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.outcome.is_some() || token as u32 != self.seq {
            return;
        }
        self.timeouts += 1;
        if self.tries < self.cfg.tries_per_size {
            self.send_probe(ctx);
            return;
        }
        // Concluded: this size does not fit.
        self.high = self.current - 1;
        self.next_size(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpmtud::FpmtudDaemon;
    use crate::topology::{build_path, true_pmtu, Hop, DAEMON_ADDR, PROBER_ADDR};

    fn run(hops: &[Hop], blackholes: bool) -> PlpmtudOutcome {
        let prober = PlpmtudProber::new(PlpmtudConfig::scamper(
            PROBER_ADDR,
            DAEMON_ADDR,
            hops[0].mtu,
        ));
        let daemon = FpmtudDaemon::new(DAEMON_ADDR);
        let (mut net, p, _d) = build_path(13, prober, daemon, hops, blackholes);
        net.run_until(Nanos::from_secs(300));
        net.node_ref::<PlpmtudProber>(p)
            .outcome
            .clone()
            .expect("finished")
    }

    #[test]
    fn converges_to_pmtu_within_granularity() {
        let hops = [
            Hop::new(9000, 100),
            Hop::new(4000, 100),
            Hop::new(1500, 100),
            Hop::new(1500, 100),
        ];
        let out = run(&hops, false);
        let truth = true_pmtu(&hops);
        assert!(
            out.pmtu <= truth && out.pmtu + 8 >= truth - 4,
            "pmtu {} vs true {truth}",
            out.pmtu
        );
        assert!(out.probes_sent > 5, "binary search takes many probes");
        assert!(out.timeouts > 0, "oversize probes time out");
    }

    #[test]
    fn immune_to_blackholes_but_slow() {
        let hops = [
            Hop::new(9000, 100),
            Hop::new(1500, 100),
            Hop::new(1500, 100),
        ];
        let open = run(&hops, false);
        let dark = run(&hops, true);
        assert_eq!(open.pmtu, dark.pmtu, "loss-based: ICMP irrelevant");
        // Every failed size costs tries × timeout.
        assert!(
            dark.elapsed >= Nanos::from_secs(3),
            "elapsed {}",
            dark.elapsed
        );
    }

    #[test]
    fn flat_path_single_probe() {
        let hops = [Hop::new(1500, 100), Hop::new(1500, 100)];
        let out = run(&hops, false);
        assert_eq!(out.pmtu, 1500);
        assert_eq!(out.probes_sent, 1);
        assert_eq!(out.timeouts, 0);
    }
}
