//! Classic PMTUD (RFC 1191): DF probes driven by ICMP *fragmentation
//! needed* feedback.
//!
//! The prober sends a DF-set UDP probe at its current estimate. A router
//! that cannot forward it replies with ICMP type 3 code 4 carrying the
//! next-hop MTU; the prober lowers its estimate and retries. When a probe
//! finally reaches the destination, the daemon's echo confirms it.
//!
//! Against an **ICMP blackhole** the lowering signal never arrives: the
//! probe is silently dropped, every retry times out, and discovery fails
//! — RFC 2923's "TCP problems with path MTU discovery", the paper's §3
//! motivation for F-PMTUD.

use crate::fpmtud::ECHO_MAGIC;
use crate::ECHO_PORT;
use px_sim::node::{Ctx, Node, PortId};
use px_sim::Nanos;
use px_wire::icmpv4::Icmpv4Message;
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, PacketBuf, UdpRepr};
use std::any::Any;
use std::net::Ipv4Addr;

/// The outcome of a classic PMTUD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassicOutcome {
    /// The estimate was confirmed by an echo from the destination.
    Discovered {
        /// Path MTU found.
        pmtu: usize,
        /// Total discovery latency.
        elapsed: Nanos,
        /// Probes sent (≥ number of distinct MTUs on the path).
        probes_sent: u32,
        /// ICMP fragmentation-needed messages consumed.
        icmp_seen: u32,
    },
    /// Probes vanished without ICMP feedback (blackhole): discovery
    /// failed.
    Blackholed {
        /// Probes sent before giving up.
        probes_sent: u32,
        /// The last unconfirmed estimate.
        stuck_at: usize,
    },
}

/// Classic prober configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClassicConfig {
    /// Our address.
    pub addr: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Initial estimate: our own interface MTU.
    pub initial_mtu: usize,
    /// Per-probe timeout.
    pub timeout: Nanos,
    /// Retries per estimate before declaring a blackhole.
    pub max_tries_per_size: u32,
}

/// The RFC 1191 prober node.
pub struct ClassicProber {
    /// Configuration.
    pub cfg: ClassicConfig,
    estimate: usize,
    tries_at_size: u32,
    probes_sent: u32,
    icmp_seen: u32,
    seq: u32,
    ident: u16,
    started_at: Nanos,
    /// Result, once known.
    pub outcome: Option<ClassicOutcome>,
}

impl ClassicProber {
    /// Creates a prober; it starts probing at simulation start.
    pub fn new(cfg: ClassicConfig) -> Self {
        ClassicProber {
            cfg,
            estimate: cfg.initial_mtu,
            tries_at_size: 0,
            probes_sent: 0,
            icmp_seen: 0,
            seq: 0,
            ident: 0x1191,
            started_at: Nanos::ZERO,
            outcome: None,
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<'_>) {
        self.seq += 1;
        self.probes_sent += 1;
        self.tries_at_size += 1;
        let payload_len = self.estimate - 28;
        let mut payload = vec![0u8; payload_len];
        payload[..4.min(payload_len)]
            .copy_from_slice(&self.seq.to_be_bytes()[..4.min(payload_len)]);
        let dg = UdpRepr {
            src_port: ECHO_PORT,
            dst_port: ECHO_PORT,
        }
        .build_datagram(self.cfg.addr, self.cfg.dst, &payload)
        .expect("fits");
        let mut ip = Ipv4Repr::new(self.cfg.addr, self.cfg.dst, IpProtocol::Udp, dg.len());
        ip.dont_frag = true; // the defining property of classic PMTUD
        ip.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        let pkt = ip.build_packet(&dg).expect("fits");
        ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
        ctx.set_timer(self.cfg.timeout, u64::from(self.seq));
    }
}

impl Node for ClassicProber {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started_at = ctx.now;
        self.send_probe(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
        if self.outcome.is_some() {
            return;
        }
        let bytes = pkt.as_slice();
        let Ok(ip) = Ipv4Packet::new_checked(bytes) else {
            return;
        };
        match ip.protocol() {
            IpProtocol::Icmp => {
                if let Ok(Icmpv4Message::FragNeeded { next_hop_mtu, .. }) =
                    Icmpv4Message::parse(ip.payload())
                {
                    self.icmp_seen += 1;
                    // RFC 1191: lower the estimate and try again. A zero
                    // next-hop MTU (old routers) would use the plateau
                    // table; our routers always fill it in.
                    let mtu = usize::from(next_hop_mtu);
                    if mtu >= 68 && mtu < self.estimate {
                        self.estimate = mtu;
                        self.tries_at_size = 0;
                        self.send_probe(ctx);
                    }
                }
            }
            IpProtocol::Udp => {
                let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
                    return;
                };
                if udp.payload().len() >= 4 && udp.payload()[0..4] == ECHO_MAGIC {
                    self.outcome = Some(ClassicOutcome::Discovered {
                        pmtu: self.estimate,
                        elapsed: ctx.now - self.started_at,
                        probes_sent: self.probes_sent,
                        icmp_seen: self.icmp_seen,
                    });
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.outcome.is_some() || token as u32 != self.seq {
            return; // a newer probe is in flight
        }
        if self.tries_at_size >= self.cfg.max_tries_per_size {
            self.outcome = Some(ClassicOutcome::Blackholed {
                probes_sent: self.probes_sent,
                stuck_at: self.estimate,
            });
            return;
        }
        self.send_probe(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpmtud::FpmtudDaemon;
    use crate::topology::{build_path, Hop, DAEMON_ADDR, PROBER_ADDR};

    fn run(hops: &[Hop], blackholes: bool) -> ClassicOutcome {
        let prober = ClassicProber::new(ClassicConfig {
            addr: PROBER_ADDR,
            dst: DAEMON_ADDR,
            initial_mtu: hops[0].mtu,
            timeout: Nanos::from_millis(500),
            max_tries_per_size: 2,
        });
        let daemon = FpmtudDaemon::new(DAEMON_ADDR);
        let (mut net, p, _d) = build_path(11, prober, daemon, hops, blackholes);
        net.run_until(Nanos::from_secs(30));
        net.node_ref::<ClassicProber>(p)
            .outcome
            .clone()
            .expect("finished")
    }

    #[test]
    fn converges_with_icmp_available() {
        let hops = [
            Hop::new(9000, 100),
            Hop::new(4000, 100),
            Hop::new(1500, 100),
            Hop::new(1500, 100),
        ];
        match run(&hops, false) {
            ClassicOutcome::Discovered {
                pmtu,
                probes_sent,
                icmp_seen,
                ..
            } => {
                assert_eq!(pmtu, 1500, "exact PMTU via ICMP feedback");
                assert_eq!(icmp_seen, 2, "one lowering per narrower hop");
                assert_eq!(probes_sent, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blackhole_defeats_classic_pmtud() {
        let hops = [
            Hop::new(9000, 100),
            Hop::new(1500, 100),
            Hop::new(1500, 100),
        ];
        match run(&hops, true) {
            ClassicOutcome::Blackholed {
                stuck_at,
                probes_sent,
            } => {
                assert_eq!(stuck_at, 9000, "never learned the real PMTU");
                assert_eq!(probes_sent, 2);
            }
            other => panic!("expected blackhole failure, got {other:?}"),
        }
    }

    #[test]
    fn flat_path_confirms_first_probe() {
        let hops = [Hop::new(1500, 100), Hop::new(1500, 100)];
        match run(&hops, false) {
            ClassicOutcome::Discovered {
                pmtu,
                probes_sent,
                icmp_seen,
                ..
            } => {
                assert_eq!(pmtu, 1500);
                assert_eq!(probes_sent, 1);
                assert_eq!(icmp_seen, 0);
            }
            other => panic!("{other:?}"),
        }
    }
}
