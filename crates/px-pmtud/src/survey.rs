//! The fragment-delivery survey of §5.3.
//!
//! The paper sends IP-fragmented HTTP requests to 389,428 live servers
//! (from the Cloudflare Radar top-1M domains) and finds 99.98% respond;
//! 59 servers fail on fragmented requests, 15 of them because their last
//! hop AS filters fragments.
//!
//! We cannot scan the Internet. The substitution (DESIGN.md §2): a
//! synthetic server population whose per-server fragment-filtering
//! behaviour is sampled with the *measured* rates, while the code path is
//! identical packet-level work — a real HTTP request packet is really
//! fragmented, really passes a filtering function, and is really
//! reassembled by the server before it answers. Tested invariants (e.g.
//! "unfragmented requests always work, only fragment filtering explains
//! the gap") therefore exercise the same logic the real scan would.

use px_wire::frag::{fragment, Reassembler, ReassemblyResult};
use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
use px_wire::IpProtocol;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Why a server did not respond to the fragmented request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// The last-hop AS drops IP fragments (observable: probes to the AS
    /// show filtering).
    LastHopAsFilters,
    /// The server (or something closer to it) silently ignores
    /// fragmented packets — no responses to our probes at all.
    ServerSilent,
}

/// Survey configuration.
#[derive(Debug, Clone, Copy)]
pub struct SurveyConfig {
    /// Servers probed (the paper: 389,428 live servers).
    pub n_servers: usize,
    /// Probability that a server mishandles fragmented requests
    /// (the paper measured 59 / 389,428).
    pub failure_prob: f64,
    /// Among failures, fraction attributable to last-hop AS filtering
    /// (the paper: 15 / 59).
    pub lasthop_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SurveyConfig {
    /// The paper's population with its measured rates.
    pub fn paper() -> Self {
        SurveyConfig {
            n_servers: 389_428,
            failure_prob: 59.0 / 389_428.0,
            lasthop_frac: 15.0 / 59.0,
            seed: 2025,
        }
    }
}

/// Aggregated survey results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyReport {
    /// Servers probed.
    pub total: usize,
    /// Servers that answered the fragmented request with the same
    /// content as the unfragmented one.
    pub responded: usize,
    /// Servers that answered unfragmented but not fragmented requests.
    pub failed: usize,
    /// Failures where the last-hop AS filtered the fragments.
    pub lasthop_filtered: usize,
}

impl SurveyReport {
    /// Success rate in percent.
    pub fn success_pct(&self) -> f64 {
        100.0 * self.responded as f64 / self.total as f64
    }
}

/// Builds the HTTP GET request as a real IPv4/TCP packet to `dst`.
fn http_request_packet(src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
    let body = b"GET / HTTP/1.1\r\nHost: survey.example\r\nUser-Agent: px-survey/0.1\r\nAccept: */*\r\nConnection: close\r\n\r\n";
    // Pad so the packet must fragment at a 576 B bottleneck (the survey
    // fragments requests deliberately).
    let mut payload = body.to_vec();
    payload.resize(900, b' ');
    let repr = TcpRepr {
        src_port: 54321,
        dst_port: 80,
        seq: SeqNum(1),
        ack: SeqNum(1),
        flags: TcpFlags::ACK,
        window: 65535,
        options: vec![],
    };
    let seg = repr.build_segment(src, dst, &payload);
    let mut ip = Ipv4Repr::new(src, dst, IpProtocol::Tcp, seg.len());
    ip.ident = 0xBEEF;
    ip.build_packet(&seg).expect("fits")
}

/// One simulated server-probe: fragment the request at the bottleneck,
/// apply the path's filtering behaviour, reassemble at the server, and
/// decide whether it responds. Returns `Ok(())` on response.
fn probe_one(
    server_addr: Ipv4Addr,
    drops_fragments: bool,
    bottleneck_mtu: usize,
) -> Result<(), ()> {
    let src = Ipv4Addr::new(203, 0, 113, 7);
    let request = http_request_packet(src, server_addr);
    let frags = fragment(&request, bottleneck_mtu).expect("DF clear");
    debug_assert!(frags.len() >= 2, "the survey sends fragmented requests");
    if drops_fragments {
        // Filtering ASes drop non-initial fragments (a common policy) —
        // the request can never reassemble.
        return Err(());
    }
    let mut reasm = Reassembler::new();
    for f in &frags {
        if let ReassemblyResult::Complete { packet, .. } = reasm.push(f, 0).map_err(|_| ())? {
            // Server got the whole request; check it is intact.
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&packet[..]).map_err(|_| ())?;
            let tcp = px_wire::tcp::TcpSegment::new_checked(ip.payload()).map_err(|_| ())?;
            if tcp.payload().starts_with(b"GET / HTTP/1.1") {
                return Ok(());
            }
            return Err(());
        }
    }
    Err(())
}

/// Runs the survey.
pub fn run_survey(cfg: SurveyConfig) -> SurveyReport {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut responded = 0usize;
    let mut failed = 0usize;
    let mut lasthop = 0usize;
    for i in 0..cfg.n_servers {
        let addr = Ipv4Addr::from(0x0B00_0001u32.wrapping_add(i as u32));
        let fails = rng.gen::<f64>() < cfg.failure_prob;
        let is_lasthop = fails && rng.gen::<f64>() < cfg.lasthop_frac;
        match probe_one(addr, fails, 576) {
            Ok(()) => responded += 1,
            Err(()) => {
                failed += 1;
                if is_lasthop {
                    lasthop += 1;
                }
            }
        }
    }
    SurveyReport {
        total: cfg.n_servers,
        responded,
        failed,
        lasthop_filtered: lasthop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_path_always_responds() {
        for i in 0..50u32 {
            let addr = Ipv4Addr::from(0x0C00_0000 + i);
            assert_eq!(probe_one(addr, false, 576), Ok(()));
        }
    }

    #[test]
    fn filtering_path_never_responds() {
        assert_eq!(probe_one(Ipv4Addr::new(9, 9, 9, 9), true, 576), Err(()));
    }

    #[test]
    fn small_survey_statistics() {
        let report = run_survey(SurveyConfig {
            n_servers: 20_000,
            failure_prob: 0.01,
            lasthop_frac: 0.25,
            seed: 5,
        });
        assert_eq!(report.total, 20_000);
        assert_eq!(report.responded + report.failed, 20_000);
        let rate = report.failed as f64 / 20_000.0;
        assert!((rate - 0.01).abs() < 0.003, "failure rate {rate}");
        assert!(report.lasthop_filtered <= report.failed);
        let lf = report.lasthop_filtered as f64 / report.failed.max(1) as f64;
        assert!((lf - 0.25).abs() < 0.12, "last-hop fraction {lf}");
        assert!(report.success_pct() > 98.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SurveyConfig {
            n_servers: 5000,
            failure_prob: 0.01,
            lasthop_frac: 0.3,
            seed: 9,
        };
        assert_eq!(run_survey(cfg), run_survey(cfg));
    }
}
