//! F-PMTUD: one-round-trip, ICMP-free path-MTU discovery (paper §4.2).
//!
//! The prober sends a single UDP probe, **DF clear**, sized to the MTU of
//! its own first hop. Routers along the path fragment it wherever their
//! egress MTU is smaller — that is ordinary IPv4 behaviour, no special
//! support needed. The daemon at the destination reassembles the probe,
//! *records the size of every fragment it received*, and reports the
//! sizes back in one UDP response. The prober concludes:
//!
//! > PMTU = size of the largest fragment (or the whole probe if it
//! > arrived unfragmented)
//!
//! because the largest surviving fragment is exactly as big as the
//! narrowest link allowed. One RTT, no ICMP, works through blackholes.

use crate::{ECHO_PORT, FPMTUD_PORT};
use px_faults::{splitmix64, DetBackoff};
use px_sim::node::{Ctx, Node, PortId};
use px_sim::Nanos;
pub use px_wire::fpmtud::{
    parse_report, parse_report_tagged, probe_nonce, probe_payload, probe_payload_tagged,
    report_payload, report_payload_tagged, ECHO_MAGIC, PROBE_MAGIC, REPORT_MAGIC,
};
use px_wire::frag::{Reassembler, ReassemblyResult};
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, PacketBuf, UdpRepr};
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The outcome of one probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Discovery succeeded in a single round trip.
    Discovered {
        /// The discovered path MTU.
        pmtu: usize,
        /// Wall-clock (simulated) time from probe to report.
        elapsed: Nanos,
        /// The sizes of all fragments the daemon received.
        fragment_sizes: Vec<usize>,
        /// How many probes were sent (1 unless a probe was lost).
        probes_sent: u32,
    },
    /// All retries timed out (probe or report lost repeatedly).
    TimedOut {
        /// Probes sent before giving up.
        probes_sent: u32,
    },
    /// Every retry timed out *and* a fallback was configured: the
    /// destination is treated as an F-PMTUD blackhole (no daemon, or a
    /// path eating large UDP) and the PMTU clamps to the safe static
    /// eMTU instead of staying unknown.
    BlackholedToFallback {
        /// The clamped PMTU (the configured fallback, i.e. the eMTU).
        pmtu: usize,
        /// Probes sent before clamping.
        probes_sent: u32,
    },
}

/// The F-PMTUD daemon: reassembles probes, reports fragment sizes, and
/// additionally serves DF-probe echoes on [`ECHO_PORT`] for the baseline
/// probers.
pub struct FpmtudDaemon {
    /// The daemon's address.
    pub addr: Ipv4Addr,
    reasm: Reassembler,
    ident: u16,
    /// Probes answered.
    pub reports_sent: u64,
    /// Echo acks served.
    pub echoes_sent: u64,
}

impl FpmtudDaemon {
    /// Creates a daemon bound to `addr`.
    pub fn new(addr: Ipv4Addr) -> Self {
        FpmtudDaemon {
            addr,
            reasm: Reassembler::new(),
            ident: 0x4400,
            reports_sent: 0,
            echoes_sent: 0,
        }
    }

    fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        payload: &[u8],
    ) {
        let dg = UdpRepr {
            src_port: sport,
            dst_port: dport,
        }
        .build_datagram(self.addr, dst, payload)
        .expect("small payload");
        let mut ip = Ipv4Repr::new(self.addr, dst, IpProtocol::Udp, dg.len());
        ip.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        if let Ok(pkt) = ip.build_packet(&dg) {
            ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
        }
    }

    fn handle_complete(&mut self, ctx: &mut Ctx<'_>, packet: &[u8], sizes: Vec<usize>) {
        let Ok(ip) = Ipv4Packet::new_checked(packet) else {
            return;
        };
        if ip.dst() != self.addr || ip.protocol() != IpProtocol::Udp {
            return;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return;
        };
        match udp.dst_port() {
            FPMTUD_PORT => {
                let pl = udp.payload();
                if pl.len() < 8 || pl[0..4] != PROBE_MAGIC {
                    return;
                }
                let probe_id = u32::from_be_bytes(pl[4..8].try_into().unwrap());
                // Echo the probe's attestation nonce (0 for legacy
                // untagged probes; untagged receivers parse the tagged
                // report unchanged since the nonce trails the size list).
                let report = report_payload_tagged(probe_id, probe_nonce(pl), &sizes);
                self.reports_sent += 1;
                self.send_udp(ctx, ip.src(), FPMTUD_PORT, udp.src_port(), &report);
            }
            ECHO_PORT => {
                // DF-probe echo for PLPMTUD/classic verification: ack with
                // the first 8 payload bytes (the prober's id block).
                let mut ack = Vec::with_capacity(12);
                ack.extend_from_slice(&ECHO_MAGIC);
                ack.extend_from_slice(&udp.payload()[..udp.payload().len().min(8)]);
                self.echoes_sent += 1;
                self.send_udp(ctx, ip.src(), ECHO_PORT, udp.src_port(), &ack);
            }
            _ => {}
        }
    }
}

impl Node for FpmtudDaemon {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
        let bytes = pkt.as_slice().to_vec();
        match self.reasm.push(&bytes, ctx.now.0) {
            Ok(ReassemblyResult::NotFragmented(p)) => {
                let size = p.len();
                self.handle_complete(ctx, &p, vec![size]);
            }
            Ok(ReassemblyResult::Complete {
                packet,
                fragment_sizes,
            }) => {
                self.handle_complete(ctx, &packet, fragment_sizes);
            }
            Ok(ReassemblyResult::Incomplete) | Err(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Prober configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProberConfig {
    /// Our address.
    pub addr: Ipv4Addr,
    /// Destination (daemon) address.
    pub dst: Ipv4Addr,
    /// Probe size: the eMTU of our first hop (§4.2 sends "a dummy UDP
    /// packet sized to the eMTU of the next hop").
    pub probe_size: usize,
    /// Timeout for the *first* probe; each retry doubles it
    /// (deterministic exponential backoff, no jitter).
    pub timeout: Nanos,
    /// Max probes before giving up (covers probe/report loss).
    pub max_tries: u32,
    /// Cap for the doubling retry timeout.
    pub backoff_max: Nanos,
    /// PMTU to clamp to when every retry times out (blackhole
    /// detection). `0` keeps the plain [`ProbeOutcome::TimedOut`].
    pub fallback_pmtu: usize,
    /// Hard lower bound on the discovered PMTU: a report claiming a
    /// largest fragment below this clamps to it (and is counted) rather
    /// than being believed — spoofed-shrink damage control.
    pub pmtu_floor: usize,
    /// Seed the per-probe attestation nonces are derived from. Probes
    /// carry the nonce, the daemon echoes it, and a report whose nonce
    /// does not match is rejected as a spoof.
    pub nonce_seed: u64,
}

impl ProberConfig {
    /// The standard schedule: 2 s first timeout, doubling to a 16 s
    /// cap, three tries, no fallback (unknown stays unknown).
    #[must_use]
    pub fn new(addr: Ipv4Addr, dst: Ipv4Addr, probe_size: usize) -> Self {
        ProberConfig {
            addr,
            dst,
            probe_size,
            timeout: Nanos::from_secs(2),
            max_tries: 3,
            backoff_max: Nanos::from_secs(16),
            fallback_pmtu: 0,
            pmtu_floor: 576,
            nonce_seed: 0x5058_4757_F9A7_0001, // deterministic default
        }
    }
}

/// The F-PMTUD prober.
pub struct FpmtudProber {
    /// Configuration.
    pub cfg: ProberConfig,
    next_id: u32,
    /// Outstanding probes: id → (send time, expected attestation nonce).
    sent_at: HashMap<u32, (Nanos, u64)>,
    tries: u32,
    ident: u16,
    started_at: Nanos,
    backoff: DetBackoff,
    /// Result, once known.
    pub outcome: Option<ProbeOutcome>,
    /// Reports rejected for a wrong or missing attestation nonce.
    pub spoof_rejected: u64,
    /// Discoveries clamped up to [`ProberConfig::pmtu_floor`].
    pub floor_clamps: u64,
}

impl FpmtudProber {
    /// Creates a prober; it fires its first probe at simulation start.
    pub fn new(cfg: ProberConfig) -> Self {
        FpmtudProber {
            cfg,
            next_id: 1,
            sent_at: HashMap::new(),
            tries: 0,
            ident: 0x7700,
            started_at: Nanos::ZERO,
            backoff: DetBackoff::new(cfg.timeout.0, cfg.backoff_max.0.max(cfg.timeout.0)),
            outcome: None,
            spoof_rejected: 0,
            floor_clamps: 0,
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<'_>) {
        let id = self.next_id;
        self.next_id += 1;
        self.tries += 1;
        // `| 1` keeps the nonce nonzero: 0 is the untagged-probe marker.
        let nonce = splitmix64(self.cfg.nonce_seed ^ u64::from(id)) | 1;
        let payload = probe_payload_tagged(id, nonce, self.cfg.probe_size);
        let dg = UdpRepr {
            src_port: FPMTUD_PORT,
            dst_port: FPMTUD_PORT,
        }
        .build_datagram(self.cfg.addr, self.cfg.dst, &payload)
        .expect("probe fits UDP");
        let mut ip = Ipv4Repr::new(self.cfg.addr, self.cfg.dst, IpProtocol::Udp, dg.len());
        ip.dont_frag = false; // the whole point: let routers fragment it
        ip.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        let pkt = ip.build_packet(&dg).expect("probe fits IP");
        self.sent_at.insert(id, (ctx.now, nonce));
        ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
        // Deterministic exponential backoff: 1× timeout for the first
        // probe, 2× for the second, … capped at `backoff_max`.
        ctx.set_timer(Nanos(self.backoff.next_delay()), u64::from(id));
    }
}

impl Node for FpmtudProber {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started_at = ctx.now;
        self.send_probe(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
        if self.outcome.is_some() {
            return;
        }
        let bytes = pkt.as_slice();
        let Ok(ip) = Ipv4Packet::new_checked(bytes) else {
            return;
        };
        if ip.protocol() != IpProtocol::Udp || ip.dst() != self.cfg.addr {
            return;
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return;
        };
        let Some((id, nonce, sizes)) = parse_report_tagged(udp.payload()) else {
            return;
        };
        let Some(&(sent, expected)) = self.sent_at.get(&id) else {
            return;
        };
        if nonce != expected {
            // Forged (or mangled) report: the nonce never left this
            // prober and the daemon echoes it verbatim. Keep the probe
            // outstanding so the genuine report is not locked out.
            self.spoof_rejected += 1;
            return;
        }
        self.sent_at.remove(&id);
        let mut pmtu = sizes.iter().copied().max().unwrap_or(0);
        if pmtu < self.cfg.pmtu_floor {
            // Even an attested report never drags the PMTU below the
            // floor — a lying daemon degrades us only so far.
            self.floor_clamps += 1;
            pmtu = self.cfg.pmtu_floor;
        }
        self.outcome = Some(ProbeOutcome::Discovered {
            pmtu,
            elapsed: ctx.now - sent,
            fragment_sizes: sizes,
            probes_sent: self.tries,
        });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.outcome.is_some() {
            return;
        }
        let id = token as u32;
        if self.sent_at.remove(&id).is_none() {
            return; // already answered
        }
        if self.tries >= self.cfg.max_tries {
            // Blackhole detection: the destination never answered any
            // probe. With a fallback configured, clamp to it (the safe
            // static eMTU) rather than reporting nothing.
            self.outcome = Some(if self.cfg.fallback_pmtu > 0 {
                ProbeOutcome::BlackholedToFallback {
                    pmtu: self.cfg.fallback_pmtu,
                    probes_sent: self.tries,
                }
            } else {
                ProbeOutcome::TimedOut {
                    probes_sent: self.tries,
                }
            });
            return;
        }
        self.send_probe(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_path, true_pmtu, Hop, DAEMON_ADDR, PROBER_ADDR};

    fn run(hops: &[Hop], blackholes: bool) -> ProbeOutcome {
        let prober = FpmtudProber::new(ProberConfig::new(PROBER_ADDR, DAEMON_ADDR, hops[0].mtu));
        let daemon = FpmtudDaemon::new(DAEMON_ADDR);
        let (mut net, p, _d) = build_path(7, prober, daemon, hops, blackholes);
        net.run_until(Nanos::from_secs(10));
        net.node_ref::<FpmtudProber>(p)
            .outcome
            .clone()
            .expect("finished")
    }

    #[test]
    fn discovers_pmtu_through_fragmenting_path() {
        // The paper's Fig. 4 scenario: 9 KB probe, hops narrow to 1000 B.
        let hops = [
            Hop::new(9000, 100),
            Hop::new(4000, 200),
            Hop::new(1000, 300),
            Hop::new(1500, 100),
        ];
        match run(&hops, false) {
            ProbeOutcome::Discovered {
                pmtu,
                fragment_sizes,
                probes_sent,
                ..
            } => {
                // Largest fragment ≤ narrowest MTU, within 8-byte rounding.
                let truth = true_pmtu(&hops);
                assert!(pmtu <= truth && pmtu > truth - 28, "pmtu {pmtu} vs {truth}");
                assert!(fragment_sizes.len() > 1);
                assert_eq!(probes_sent, 1, "single round trip");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn works_identically_through_icmp_blackholes() {
        let hops = [
            Hop::new(9000, 100),
            Hop::new(2000, 200),
            Hop::new(1500, 100),
        ];
        let open = run(&hops, false);
        let dark = run(&hops, true);
        let pmtu_of = |o: &ProbeOutcome| match o {
            ProbeOutcome::Discovered { pmtu, .. } => *pmtu,
            _ => panic!("should discover"),
        };
        assert_eq!(pmtu_of(&open), pmtu_of(&dark), "blackholes are irrelevant");
    }

    #[test]
    fn unfragmented_probe_reports_full_size() {
        let hops = [
            Hop::new(1500, 100),
            Hop::new(1500, 100),
            Hop::new(1500, 100),
        ];
        match run(&hops, false) {
            ProbeOutcome::Discovered {
                pmtu,
                fragment_sizes,
                ..
            } => {
                assert_eq!(pmtu, 1500);
                assert_eq!(fragment_sizes, vec![1500]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn one_rtt_latency() {
        let hops = [
            Hop::new(9000, 5000),
            Hop::new(1500, 20_000),
            Hop::new(1500, 5000),
        ];
        match run(&hops, false) {
            ProbeOutcome::Discovered { elapsed, .. } => {
                let one_way = crate::topology::path_delay(&hops);
                // Elapsed ≈ 2 × one-way (serialization is µs-scale here).
                assert!(elapsed >= one_way + one_way);
                assert!(elapsed < one_way + one_way + Nanos::from_millis(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn report_wire_roundtrip() {
        let sizes = vec![996, 996, 996, 532];
        let bytes = report_payload(42, &sizes);
        assert_eq!(parse_report(&bytes), Some((42, sizes)));
        assert_eq!(parse_report(&bytes[..5]), None);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(parse_report(&bad), None);
    }
}
