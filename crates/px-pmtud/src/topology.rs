//! Topology builders for PMTUD experiments: linear WAN paths of routers
//! with per-hop MTUs, optional ICMP blackholes, and per-hop delays.

use px_sim::link::LinkConfig;
use px_sim::network::Network;
use px_sim::node::{Node, NodeId, PortId};
use px_sim::router::Router;
use px_sim::time::Nanos;
use std::net::Ipv4Addr;

/// Address of the probing endpoint in built paths.
pub const PROBER_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// Address of the destination endpoint in built paths.
pub const DAEMON_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 99, 1);

/// Description of one hop (router-to-router or router-to-host link).
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// The link MTU on this hop.
    pub mtu: usize,
    /// One-way propagation delay of this hop.
    pub delay: Nanos,
}

impl Hop {
    /// A hop with the given MTU and delay in microseconds.
    pub fn new(mtu: usize, delay_us: u64) -> Self {
        Hop {
            mtu,
            delay: Nanos::from_micros(delay_us),
        }
    }
}

/// Builds a linear path `prober_node — R1 — R2 … Rn — daemon_node`.
///
/// `hops[i]` is the link *after* router i (so `hops[0]` is the
/// prober-side access link, and each router's egress MTU towards the
/// daemon is the next hop's MTU). With `blackholes`, every router
/// suppresses ICMP.
///
/// Returns the network plus the node ids of the two endpoints.
pub fn build_path<P: Node, D: Node>(
    seed: u64,
    prober: P,
    daemon: D,
    hops: &[Hop],
    blackholes: bool,
) -> (Network, NodeId, NodeId) {
    assert!(hops.len() >= 2, "need at least access + destination hops");
    let mut net = Network::new(seed);
    let p = net.add_node(prober);
    let d = net.add_node(daemon);

    let n_routers = hops.len() - 1;
    let mut routers = Vec::new();
    for i in 0..n_routers {
        let mut r = Router::new(
            Ipv4Addr::new(10, 0, 50, (i + 1) as u8),
            // Port 0 faces the prober side, port 1 the daemon side.
            vec![hops[i].mtu, hops[i + 1].mtu],
        );
        r.add_route(Ipv4Addr::new(10, 0, 0, 0), 24, PortId(0));
        r.add_route(Ipv4Addr::new(10, 0, 99, 0), 24, PortId(1));
        // Router ICMP sources also need reverse routes.
        r.add_route(Ipv4Addr::new(10, 0, 50, 0), 24, PortId(0));
        if blackholes {
            r.icmp_blackhole = true;
        }
        routers.push(net.add_node(r));
    }

    // Wire: prober -(hops[0])- R1 -(hops[1])- R2 ... Rn -(hops[n])- daemon.
    let bw = 10_000_000_000;
    let first = LinkConfig::new(bw, hops[0].delay, hops[0].mtu);
    net.connect((p, PortId(0)), (routers[0], PortId(0)), first);
    for i in 0..n_routers - 1 {
        let cfg = LinkConfig::new(bw, hops[i + 1].delay, hops[i + 1].mtu);
        net.connect((routers[i], PortId(1)), (routers[i + 1], PortId(0)), cfg);
    }
    let last = hops[hops.len() - 1];
    let cfg = LinkConfig::new(bw, last.delay, last.mtu);
    net.connect((routers[n_routers - 1], PortId(1)), (d, PortId(0)), cfg);

    (net, p, d)
}

/// The true path MTU of a hop list (what discovery should find).
pub fn true_pmtu(hops: &[Hop]) -> usize {
    hops.iter().map(|h| h.mtu).min().expect("non-empty")
}

/// The one-way delay of the whole path.
pub fn path_delay(hops: &[Hop]) -> Nanos {
    hops.iter().fold(Nanos::ZERO, |acc, h| acc + h.delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        let hops = [Hop::new(9000, 10), Hop::new(1500, 20), Hop::new(4000, 5)];
        assert_eq!(true_pmtu(&hops), 1500);
        assert_eq!(path_delay(&hops), Nanos::from_micros(35));
    }
}
