//! Report attestation and sanity band for hardened F-PMTUD.
//!
//! F-PMTUD's report channel is plain UDP: an off-path attacker who can
//! guess `(addresses, ports, probe_id)` could forge a report claiming a
//! tiny largest-fragment size and talk the prober down to a pathological
//! PMTU (the classic PMTUD-spoofing degradation attack, transplanted).
//! [`PmtudGuard`] closes that hole with three independent checks:
//!
//! 1. **Nonce attestation** — every probe carries a 64-bit nonce derived
//!    from a private seed ([`px_faults::splitmix64`]); the daemon echoes
//!    it in the report. A report with an unknown probe id or a wrong
//!    nonce is rejected outright: off-path forgery now requires guessing
//!    64 random bits per attempt.
//! 2. **Absolute floor** — a discovered PMTU is never allowed below
//!    [`GuardConfig::pmtu_floor`] (default 576 B, the IPv4 minimum-reassembly
//!    datagram), no matter what the report claims. Claims below the
//!    floor clamp to it and are counted.
//! 3. **Hysteretic shrink** — a *shrink* only takes effect after
//!    [`GuardConfig::confirm_reports`] consecutive attested reports agree
//!    on the same size band, and each confirmed step shrinks by at most
//!    half (the monotone-shrink rate limit). A single spoofed-but-lucky
//!    report therefore moves nothing; the guard flags the flow as
//!    *suspect* and asks for a recovery re-probe instead
//!    ([`PmtudGuard::wants_reprobe`]). Growth back toward the true PMTU
//!    needs no confirmation — an attested report can only describe
//!    fragments that actually traversed the path.
//!
//! The guard is pure protocol logic (no sockets, no clock): the prober
//! feeds it parsed reports and sends whatever probes it asks for, which
//! is also what makes it drivable by the seeded attack matrix.

use px_faults::splitmix64;
use std::collections::HashMap;

/// Tuning for [`PmtudGuard`].
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Starting PMTU estimate (typically the first-hop MTU / probe size).
    pub init_pmtu: usize,
    /// Hard lower bound: no report can drag the PMTU below this.
    pub pmtu_floor: usize,
    /// Consecutive agreeing, attested reports required before a shrink
    /// is applied. `1` disables hysteresis (first attested report wins).
    pub confirm_reports: u32,
    /// Private seed the per-probe nonces are derived from.
    pub nonce_seed: u64,
}

impl GuardConfig {
    /// Defaults: 576 B floor (IPv4 minimum reassembly size), two
    /// confirming reports per shrink.
    #[must_use]
    pub fn new(init_pmtu: usize, nonce_seed: u64) -> Self {
        GuardConfig {
            init_pmtu,
            pmtu_floor: 576,
            confirm_reports: 2,
            nonce_seed,
        }
    }
}

/// What [`PmtudGuard::on_report`] decided about one report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportVerdict {
    /// Attested and sane: the PMTU estimate moved (or was confirmed) to
    /// `pmtu`.
    Accepted {
        /// The new (post-clamp, post-rate-limit) PMTU estimate.
        pmtu: usize,
    },
    /// Unknown probe id or wrong nonce — dropped, estimate untouched.
    SpoofRejected,
    /// The report claimed a size below the floor; the estimate stopped
    /// at `pmtu` (the floor) instead.
    FloorClamped {
        /// The floored PMTU the estimate was clamped to.
        pmtu: usize,
    },
    /// An attested shrink claim that is not yet confirmed: the estimate
    /// is unchanged and the guard wants a recovery re-probe.
    Suspect {
        /// The claimed (unconfirmed) largest-fragment size.
        claimed: usize,
    },
}

/// Counters the guard keeps; mirror the Prometheus series
/// `pmtud_spoof_rejected_total` and `pmtu_floor_clamps_total`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GuardStats {
    /// Reports that passed attestation and moved/confirmed the estimate.
    pub accepted: u64,
    /// Reports rejected for an unknown probe id or a nonce mismatch.
    pub spoof_rejected: u64,
    /// Shrink claims clamped at the configured floor.
    pub floor_clamps: u64,
    /// Attested shrink claims held back awaiting confirmation.
    pub suspect_holds: u64,
    /// Upward estimate moves after a suspected-spoof episode.
    pub recoveries: u64,
}

/// Nonce book-keeping plus the sanity band over a single probed path.
#[derive(Debug)]
pub struct PmtudGuard {
    cfg: GuardConfig,
    pmtu: usize,
    next_id: u32,
    /// Outstanding probes: id → expected nonce.
    outstanding: HashMap<u32, u64>,
    /// A shrink awaiting confirmation: (claimed band, attested reports
    /// seen so far agreeing with it).
    pending_shrink: Option<(usize, u32)>,
    /// Counters.
    pub stats: GuardStats,
}

/// Two largest-fragment claims belong to the same shrink band when they
/// differ by at most 12.5 % — generous enough to absorb the ≤ 8-byte
/// fragment-boundary rounding, tight enough that a forged 600 B claim
/// cannot "confirm" a genuine 1500 B one.
fn same_band(a: usize, b: usize) -> bool {
    a.abs_diff(b) * 8 <= a.max(b)
}

impl PmtudGuard {
    /// Creates a guard; the initial estimate is `init_pmtu`, floored.
    #[must_use]
    pub fn new(cfg: GuardConfig) -> Self {
        PmtudGuard {
            pmtu: cfg.init_pmtu.max(cfg.pmtu_floor),
            cfg,
            next_id: 1,
            outstanding: HashMap::new(),
            pending_shrink: None,
            stats: GuardStats::default(),
        }
    }

    /// The current PMTU estimate. Never below the floor.
    pub fn pmtu(&self) -> usize {
        self.pmtu
    }

    /// Registers the next probe and returns `(probe_id, nonce)` for the
    /// wire encoder ([`px_wire::fpmtud::probe_payload_tagged`]).
    pub fn next_probe(&mut self) -> (u32, u64) {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let nonce = splitmix64(self.cfg.nonce_seed ^ u64::from(id)) | 1;
        self.outstanding.insert(id, nonce);
        (id, nonce)
    }

    /// True while a shrink claim sits unconfirmed: the prober should
    /// send a recovery probe so the claim is confirmed or refuted by an
    /// attested report rather than lingering.
    pub fn wants_reprobe(&self) -> bool {
        self.pending_shrink.is_some()
    }

    /// Judges one parsed report (`px_wire::fpmtud::parse_report_tagged`
    /// output) and updates the estimate per the rules above.
    pub fn on_report(&mut self, probe_id: u32, nonce: u64, sizes: &[usize]) -> ReportVerdict {
        let Some(expected) = self.outstanding.get(&probe_id).copied() else {
            self.stats.spoof_rejected += 1;
            return ReportVerdict::SpoofRejected;
        };
        if nonce != expected {
            // Leave the entry outstanding: the genuine report for this
            // probe may still arrive and must not be locked out by a
            // racing forgery.
            self.stats.spoof_rejected += 1;
            return ReportVerdict::SpoofRejected;
        }
        self.outstanding.remove(&probe_id);
        let claimed = sizes.iter().copied().max().unwrap_or(0);
        if claimed == 0 {
            self.stats.spoof_rejected += 1;
            return ReportVerdict::SpoofRejected;
        }

        if claimed >= self.pmtu {
            // Growth (or exact confirmation). An attested report only
            // describes fragments that really crossed the path, so this
            // is safe to take immediately — it is how the estimate
            // recovers after a suspected-spoof hold. Capped at the probe
            // size: nothing larger can physically have been measured.
            let grew = claimed > self.pmtu;
            self.pmtu = claimed.min(self.cfg.init_pmtu).max(self.cfg.pmtu_floor);
            if grew {
                self.stats.recoveries += 1;
            }
            self.pending_shrink = None;
            self.stats.accepted += 1;
            return ReportVerdict::Accepted { pmtu: self.pmtu };
        }

        // A shrink claim. Count floor violations even while unconfirmed —
        // they are the attack signature the matrix asserts on.
        let floored = claimed < self.cfg.pmtu_floor;
        if floored {
            self.stats.floor_clamps += 1;
        }
        let target = claimed.max(self.cfg.pmtu_floor);

        let confirms = match self.pending_shrink {
            Some((band, n)) if same_band(band, target) => n + 1,
            _ => 1,
        };
        if confirms < self.cfg.confirm_reports {
            self.pending_shrink = Some((target, confirms));
            self.stats.suspect_holds += 1;
            return ReportVerdict::Suspect { claimed };
        }

        // Confirmed: apply, but shrink at most half-way per confirmed
        // step. A still-smaller true PMTU walks down over further
        // confirmed rounds instead of cratering in one report.
        let stepped = target.max(self.pmtu / 2).max(self.cfg.pmtu_floor);
        self.pmtu = stepped;
        self.pending_shrink = if stepped > target {
            Some((target, self.cfg.confirm_reports.saturating_sub(1)))
        } else {
            None
        };
        self.stats.accepted += 1;
        if floored && stepped == self.cfg.pmtu_floor {
            ReportVerdict::FloorClamped { pmtu: self.pmtu }
        } else {
            ReportVerdict::Accepted { pmtu: self.pmtu }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> PmtudGuard {
        PmtudGuard::new(GuardConfig::new(9000, 0xDEAD_BEEF))
    }

    #[test]
    fn attested_report_moves_the_estimate() {
        let mut g = guard();
        let (id, nonce) = g.next_probe();
        // First shrink claim is held (hysteresis)…
        assert_eq!(
            g.on_report(id, nonce, &[1500, 1500, 996]),
            ReportVerdict::Suspect { claimed: 1500 }
        );
        assert_eq!(g.pmtu(), 9000);
        assert!(g.wants_reprobe());
        // …the confirming report applies it (9000/2 = 4500 rate limit,
        // then 4500/2 ≥ 1500 ⇒ two more rounds to land).
        let (id, nonce) = g.next_probe();
        assert_eq!(
            g.on_report(id, nonce, &[1500]),
            ReportVerdict::Accepted { pmtu: 4500 }
        );
        let (id, nonce) = g.next_probe();
        assert_eq!(
            g.on_report(id, nonce, &[1500]),
            ReportVerdict::Accepted { pmtu: 2250 }
        );
        let (id, nonce) = g.next_probe();
        assert_eq!(
            g.on_report(id, nonce, &[1500]),
            ReportVerdict::Accepted { pmtu: 1500 }
        );
        assert!(!g.wants_reprobe());
        assert_eq!(g.stats.accepted, 3);
    }

    #[test]
    fn wrong_nonce_is_rejected_and_does_not_lock_out_the_real_report() {
        let mut g = guard();
        let (id, nonce) = g.next_probe();
        assert_eq!(
            g.on_report(id, nonce ^ 1, &[100]),
            ReportVerdict::SpoofRejected
        );
        assert_eq!(g.pmtu(), 9000, "forgery moved nothing");
        // The genuine report still lands.
        assert_eq!(
            g.on_report(id, nonce, &[9000]),
            ReportVerdict::Accepted { pmtu: 9000 }
        );
        assert_eq!(g.stats.spoof_rejected, 1);
    }

    #[test]
    fn unknown_probe_id_is_rejected() {
        let mut g = guard();
        assert_eq!(g.on_report(77, 1, &[100]), ReportVerdict::SpoofRejected);
        assert_eq!(g.stats.spoof_rejected, 1);
    }

    #[test]
    fn floor_is_absolute() {
        let mut g = guard();
        for _ in 0..16 {
            let (id, nonce) = g.next_probe();
            g.on_report(id, nonce, &[8]);
            assert!(g.pmtu() >= 576, "pmtu {} fell through the floor", g.pmtu());
        }
        assert_eq!(g.pmtu(), 576);
        assert!(g.stats.floor_clamps >= 1);
    }

    #[test]
    fn single_spoofed_shrink_is_held_and_recovery_restores() {
        let mut g = guard();
        let (id, nonce) = g.next_probe();
        // One lucky forgery (attacker somehow got the nonce once).
        assert!(matches!(
            g.on_report(id, nonce, &[600]),
            ReportVerdict::Suspect { .. }
        ));
        assert_eq!(g.pmtu(), 9000, "held, not applied");
        // The recovery probe's genuine report disagrees ⇒ estimate
        // restored/kept, pending claim dissolved.
        let (id, nonce) = g.next_probe();
        assert_eq!(
            g.on_report(id, nonce, &[9000]),
            ReportVerdict::Accepted { pmtu: 9000 }
        );
        assert!(!g.wants_reprobe());
        assert_eq!(g.stats.suspect_holds, 1);
    }

    #[test]
    fn disagreeing_shrink_claims_do_not_confirm_each_other() {
        let mut g = guard();
        let (id, nonce) = g.next_probe();
        g.on_report(id, nonce, &[1500]);
        let (id, nonce) = g.next_probe();
        // A very different claim restarts the confirmation count.
        assert!(matches!(
            g.on_report(id, nonce, &[700]),
            ReportVerdict::Suspect { .. }
        ));
        assert_eq!(g.pmtu(), 9000);
    }

    #[test]
    fn nonces_are_distinct_and_nonzero() {
        let mut g = guard();
        let (_, a) = g.next_probe();
        let (_, b) = g.next_probe();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
    }
}
