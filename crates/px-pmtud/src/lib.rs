//! # px-pmtud — path-MTU discovery for PacketExpress
//!
//! Three discovery mechanisms, all implemented as real protocols over the
//! simulator, plus the Internet fragment-delivery survey of §5.3:
//!
//! * [`fpmtud`] — **F-PMTUD**, the paper's contribution: the prober sends
//!   one DF-clear UDP probe sized to the first-hop MTU; routers fragment
//!   it en route; the daemon at the destination reports every fragment's
//!   size back; the PMTU is the largest fragment (or the whole probe).
//!   One round trip, no ICMP dependence, immune to blackholes.
//! * [`classic`] — RFC 1191 PMTUD: DF probes + ICMP *fragmentation
//!   needed* feedback. Fails forever against ICMP blackholes — the
//!   motivating failure.
//! * [`plpmtud`] — RFC 4821-style packetization-layer search (what
//!   Scamper implements): DF probes acknowledged by the destination,
//!   binary search over sizes, timeout-driven — correct but slow.
//! * [`guard`] — hardening for F-PMTUD's report channel: per-probe
//!   nonce attestation, an absolute PMTU floor, and hysteretic
//!   confirm-before-shrink against spoofed reports.
//! * [`survey`] — the 389k-server fragmented-request survey, reproduced
//!   over a synthetic population with the same packet-level code path.
//! * [`topology`] — helpers that build multi-router WAN paths with
//!   per-hop MTUs, blackholes, and delays.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classic;
pub mod fpmtud;
pub mod guard;
pub mod plpmtud;
pub mod survey;
pub mod topology;

pub use fpmtud::{FpmtudDaemon, FpmtudProber, ProbeOutcome};
pub use guard::{GuardConfig, GuardStats, PmtudGuard, ReportVerdict};

/// Well-known UDP port of the F-PMTUD daemon (single source of truth in
/// [`px_wire::fpmtud`], shared with PXGW and daemon-capable hosts).
pub const FPMTUD_PORT: u16 = px_wire::fpmtud::FPMTUD_PORT;

/// UDP echo port the daemon serves for DF-probe acknowledgments
/// (PLPMTUD and the classic prober's verification step).
pub const ECHO_PORT: u16 = px_wire::fpmtud::ECHO_PORT;
