//! Continuous profiling — tier 2 of the flight recorder.
//!
//! Two always-on, fixed-footprint structures per core:
//!
//! * A **space-saving top-K sketch** ([`TopK`]) of hot flows by packet
//!   count, with bytes and cumulative dwell carried along. K is small
//!   (default 16) so the update is a linear scan over a preallocated
//!   array — no hashing, no allocation, bounded error `err` per the
//!   classic Metwally et al. algorithm (an evicted minimum's count is
//!   inherited by its replacement and remembered as overestimation).
//! * A **batch-profile ring** ([`ProfileRing`]) of the most recent
//!   per-batch stage attributions ([`BatchProfile`]): wall time split
//!   into the batch-front parse/checksum phase and the merge/emit
//!   phase, stamped from the worker's existing wall-clock reads (no new
//!   clock calls on the datapath).
//!
//! Wall times never feed back into the datapath or the deterministic
//! event/span streams; they are report-side only, exactly like the
//! latency histograms.

/// Per-flow totals tracked by the top-K sketch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStat {
    /// The flow ([`crate::flow_id`] packing).
    pub flow: u32,
    /// Packets attributed to the flow (may overestimate by `err`).
    pub pkts: u64,
    /// Bytes attributed to the flow.
    pub bytes: u64,
    /// Cumulative logical dwell attributed to the flow's aggregates.
    pub dwell_ns: u64,
    /// Space-saving overestimation bound inherited at replacement.
    pub err: u64,
}

/// A space-saving top-K sketch of hot flows. Fixed footprint: the
/// entry array is preallocated at construction and updates never
/// allocate (px-analyze R5).
#[derive(Debug, Clone, Default)]
pub struct TopK {
    entries: Vec<FlowStat>,
    k: usize,
}

impl TopK {
    /// A sketch tracking up to `k` flows (0 disables it; every observe
    /// becomes a no-op).
    pub fn new(k: usize) -> Self {
        TopK {
            entries: Vec::with_capacity(k),
            k,
        }
    }

    /// Attributes `pkts`/`bytes`/`dwell_ns` to `flow`. Alloc-free: the
    /// entry array never grows past its preallocated capacity.
    #[inline]
    pub fn observe(&mut self, flow: u32, pkts: u64, bytes: u64, dwell_ns: u64) {
        if self.k == 0 {
            return;
        }
        let mut min_at = 0usize;
        let mut min_pkts = u64::MAX;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.flow == flow {
                // Saturating: dwell fed from a drained hold queue can be
                // arbitrarily large, and a diagnostic sketch must never
                // be the thing that panics on overflow.
                e.pkts = e.pkts.saturating_add(pkts);
                e.bytes = e.bytes.saturating_add(bytes);
                e.dwell_ns = e.dwell_ns.saturating_add(dwell_ns);
                return;
            }
            if e.pkts < min_pkts {
                min_pkts = e.pkts;
                min_at = i;
            }
        }
        if self.entries.len() < self.k {
            // Capacity was reserved up front: this push cannot allocate.
            self.entries.push(FlowStat {
                flow,
                pkts,
                bytes,
                dwell_ns,
                err: 0,
            });
            return;
        }
        // Space-saving replacement: the evicted minimum's count carries
        // over as the newcomer's base and error bound.
        if let Some(e) = self.entries.get_mut(min_at) {
            *e = FlowStat {
                flow,
                pkts: min_pkts.saturating_add(pkts),
                bytes,
                dwell_ns,
                err: min_pkts,
            };
        }
    }

    /// Flows currently tracked (≤ K).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The sketch's K (maximum flows tracked).
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Whether the sketch has seen nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tracked flows, hottest (most packets) first. Allocates
    /// (report side only).
    pub fn top(&self) -> Vec<FlowStat> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.pkts.cmp(&a.pkts).then(a.flow.cmp(&b.flow)));
        v
    }

    /// Folds another core's sketch into this one (report side only;
    /// may allocate via the iteration order but each observe is
    /// in-place).
    pub fn merge(&mut self, other: &TopK) {
        for e in &other.entries {
            self.observe(e.flow, e.pkts, e.bytes, e.dwell_ns);
        }
    }
}

/// One batch's stage-time attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchProfile {
    /// Batch ordinal on the owning core.
    pub batch: u64,
    /// Packets in the batch.
    pub pkts: u32,
    /// Total wall nanoseconds for the batch.
    pub wall_ns: u64,
    /// Wall nanoseconds spent in the batch-front parse + checksum
    /// phase ([`parse_batch_with`]-style classification).
    pub parse_ns: u64,
}

impl BatchProfile {
    /// Wall nanoseconds left to the merge/emit phase.
    pub fn process_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.parse_ns)
    }
}

/// A fixed-capacity overwrite-oldest ring of recent [`BatchProfile`]s.
#[derive(Debug, Clone, Default)]
pub struct ProfileRing {
    buf: Box<[BatchProfile]>,
    next: usize,
    written: u64,
}

impl ProfileRing {
    /// Creates a ring of `capacity` batch profiles (0 = no-op pushes,
    /// no allocation).
    pub fn with_capacity(capacity: usize) -> Self {
        ProfileRing {
            buf: vec![BatchProfile::default(); capacity].into_boxed_slice(),
            next: 0,
            written: 0,
        }
    }

    /// Records one batch profile, overwriting the oldest. Alloc-free.
    #[inline]
    pub fn push(&mut self, p: BatchProfile) {
        let cap = self.buf.len();
        if cap == 0 {
            return;
        }
        if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = p;
        }
        self.next += 1;
        if self.next == cap {
            self.next = 0;
        }
        self.written = self.written.wrapping_add(1);
    }

    /// Ring capacity in batch profiles.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Total profiles ever pushed.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Profiles currently held (≤ capacity).
    pub fn len(&self) -> usize {
        usize::try_from(self.written)
            .unwrap_or(usize::MAX)
            .min(self.buf.len())
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// The last `n` profiles, oldest first. Allocates (cold path).
    pub fn recent(&self, n: usize) -> Vec<BatchProfile> {
        let held = self.len();
        let take = n.min(held);
        let cap = self.buf.len();
        let mut out = Vec::with_capacity(take);
        for i in 0..take {
            let idx = (self.next + cap - take + i) % cap.max(1);
            if let Some(p) = self.buf.get(idx) {
                out.push(*p);
            }
        }
        out
    }
}

/// The per-core continuous profiler: top-K flow sketch, recent batch
/// profiles, and whole-run stage totals.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// Hot-flow sketch.
    pub topk: TopK,
    /// Recent batch profiles.
    pub ring: ProfileRing,
    /// Whole-run parse-phase wall nanoseconds.
    pub parse_ns_total: u64,
    /// Whole-run total batch wall nanoseconds.
    pub wall_ns_total: u64,
    /// Batches profiled.
    pub batches: u64,
}

impl Profiler {
    /// Builds a profiler with a `k`-entry sketch and a `ring`-entry
    /// batch-profile ring (both 0 = disabled, nothing allocated).
    pub fn new(k: usize, ring: usize) -> Self {
        Profiler {
            topk: TopK::new(k),
            ring: ProfileRing::with_capacity(ring),
            parse_ns_total: 0,
            wall_ns_total: 0,
            batches: 0,
        }
    }

    /// Attributes emission work to a flow (sketch update). Alloc-free.
    #[inline]
    pub fn observe_flow(&mut self, flow: u32, pkts: u64, bytes: u64, dwell_ns: u64) {
        self.topk.observe(flow, pkts, bytes, dwell_ns);
    }

    /// Records one batch's stage attribution. Alloc-free.
    #[inline]
    pub fn observe_batch_profile(&mut self, p: BatchProfile) {
        self.parse_ns_total += p.parse_ns;
        self.wall_ns_total += p.wall_ns;
        self.batches += 1;
        self.ring.push(p);
    }

    /// Parse-phase share of total batch wall time (0 when idle).
    pub fn parse_share(&self) -> f64 {
        if self.wall_ns_total == 0 {
            0.0
        } else {
            self.parse_ns_total as f64 / self.wall_ns_total as f64
        }
    }

    /// Folds another core's profiler into this one (report side).
    pub fn merge(&mut self, other: &Profiler) {
        self.topk.merge(&other.topk);
        for p in other.ring.recent(other.ring.len()) {
            self.ring.push(p);
        }
        self.parse_ns_total += other.parse_ns_total;
        self.wall_ns_total += other.wall_ns_total;
        self.batches += other.batches;
    }

    /// Renders the profiler as a JSON object: stage shares, hot flows,
    /// and the most recent `recent` batch profiles.
    pub fn to_json(&self, indent: &str, recent: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!(
            "{indent}  \"batches\": {}, \"wall_ns_total\": {}, \"parse_ns_total\": {}, \"parse_share\": {:.4},\n",
            self.batches, self.wall_ns_total, self.parse_ns_total, self.parse_share()
        ));
        out.push_str(&format!("{indent}  \"hot_flows\": [\n"));
        let top = self.topk.top();
        for (i, f) in top.iter().enumerate() {
            let comma = if i + 1 < top.len() { "," } else { "" };
            out.push_str(&format!(
                "{indent}    {{\"flow\": {}, \"pkts\": {}, \"bytes\": {}, \"dwell_ns\": {}, \"err\": {}}}{comma}\n",
                f.flow, f.pkts, f.bytes, f.dwell_ns, f.err
            ));
        }
        out.push_str(&format!("{indent}  ],\n"));
        out.push_str(&format!("{indent}  \"recent_batches\": [\n"));
        let rec = self.ring.recent(recent);
        for (i, p) in rec.iter().enumerate() {
            let comma = if i + 1 < rec.len() { "," } else { "" };
            out.push_str(&format!(
                "{indent}    {{\"batch\": {}, \"pkts\": {}, \"wall_ns\": {}, \"parse_ns\": {}, \"process_ns\": {}}}{comma}\n",
                p.batch, p.pkts, p.wall_ns, p.parse_ns, p.process_ns()
            ));
        }
        out.push_str(&format!("{indent}  ]\n"));
        out.push_str(&format!("{indent}}}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_tracks_heavy_hitters() {
        let mut t = TopK::new(2);
        for _ in 0..100 {
            t.observe(1, 1, 1500, 0);
        }
        for _ in 0..50 {
            t.observe(2, 1, 1500, 0);
        }
        // A stream of distinct mice cannot displace the elephants'
        // dominance: the top entry stays flow 1.
        for f in 10..40u32 {
            t.observe(f, 1, 100, 0);
        }
        let top = t.top();
        assert_eq!(top[0].flow, 1);
        assert_eq!(top[0].pkts, 100);
        // The second slot churned through mice; space-saving guarantees
        // its count ≥ true count with err carrying the overestimate.
        assert!(top[1].pkts >= 1);
        assert!(top[1].err > 0, "replacement must inherit the min count");
    }

    #[test]
    fn topk_zero_k_is_noop_and_merge_folds() {
        let mut off = TopK::new(0);
        off.observe(1, 1, 1, 1);
        assert!(off.is_empty());

        let mut a = TopK::new(4);
        a.observe(1, 10, 100, 5);
        let mut b = TopK::new(4);
        b.observe(1, 5, 50, 5);
        b.observe(2, 7, 70, 0);
        a.merge(&b);
        let top = a.top();
        assert_eq!(
            top[0],
            FlowStat {
                flow: 1,
                pkts: 15,
                bytes: 150,
                dwell_ns: 10,
                err: 0
            }
        );
        assert_eq!(top[1].flow, 2);
    }

    #[test]
    fn profiler_accumulates_stage_shares() {
        let mut p = Profiler::new(8, 4);
        for b in 0..10u64 {
            p.observe_batch_profile(BatchProfile {
                batch: b,
                pkts: 32,
                wall_ns: 1000,
                parse_ns: 250,
            });
        }
        assert_eq!(p.batches, 10);
        assert!((p.parse_share() - 0.25).abs() < 1e-9);
        assert_eq!(p.ring.len(), 4, "ring keeps only the most recent");
        let rec = p.ring.recent(64);
        assert_eq!(rec.first().map(|b| b.batch), Some(6));
        assert_eq!(rec.last().map(|b| b.process_ns()), Some(750));
    }

    #[test]
    fn profiler_json_shape() {
        let mut p = Profiler::new(4, 4);
        p.observe_flow(crate::flow_id(5000, 80), 3, 4380, 1000);
        p.observe_batch_profile(BatchProfile {
            batch: 0,
            pkts: 32,
            wall_ns: 1000,
            parse_ns: 100,
        });
        let json = p.to_json("", 8);
        assert!(json.contains("\"hot_flows\""));
        assert!(json.contains("\"recent_batches\""));
        assert!(json.contains("\"parse_share\": 0.1000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
