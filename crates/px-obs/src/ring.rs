//! The fixed-capacity event ring behind the flight recorder.
//!
//! One ring per core, preallocated when observability is enabled, so
//! the recording path ([`EventRing::push`]) is a bounds-checked store
//! plus two integer bumps — no allocation, no branching beyond the
//! wrap test (px-analyze rule R5 enforces this statically).
//!
//! The ring is single-producer/single-consumer with *time-separated*
//! roles: the owning worker thread is the only producer during a run,
//! and consumers ([`EventRing::recent`], drains) only touch it after
//! the worker has finished (join) or on the worker's own thread (test
//! failure paths). That separation is why no atomics are needed — the
//! handoff happens through the thread join, which is already a
//! synchronization point.

use crate::event::Event;

/// A fixed-capacity overwrite-oldest ring of [`Event`]s.
///
/// Capacity 0 (the disabled configuration) makes every push a no-op
/// without allocating anything.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    buf: Box<[Event]>,
    /// Next slot to write (== oldest slot once the ring has wrapped).
    next: usize,
    /// Total events ever pushed (keeps counting past capacity).
    written: u64,
}

impl EventRing {
    /// Creates a ring holding up to `capacity` events, preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: vec![Event::EMPTY; capacity].into_boxed_slice(),
            next: 0,
            written: 0,
        }
    }

    /// Records one event, overwriting the oldest when full. Alloc-free.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        let cap = self.buf.len();
        if cap == 0 {
            return;
        }
        if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = ev;
        }
        self.next += 1;
        if self.next == cap {
            self.next = 0;
        }
        self.written = self.written.wrapping_add(1);
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        usize::try_from(self.written)
            .unwrap_or(usize::MAX)
            .min(self.buf.len())
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// The last `n` events, oldest first. Allocates (cold path only).
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let held = self.len();
        let take = n.min(held);
        let cap = self.buf.len();
        let mut out = Vec::with_capacity(take);
        for i in 0..take {
            // The `take` newest entries end just before `next`; walk them
            // oldest-first with wraparound.
            let idx = (self.next + cap - take + i) % cap.max(1);
            if let Some(ev) = self.buf.get(idx) {
                out.push(*ev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts,
            kind: EventKind::PktIn,
            ..Event::EMPTY
        }
    }

    #[test]
    fn zero_capacity_ring_is_a_noop() {
        let mut r = EventRing::with_capacity(0);
        r.push(ev(1));
        assert_eq!(r.written(), 0);
        assert!(r.recent(10).is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn recent_returns_oldest_first_before_wrap() {
        let mut r = EventRing::with_capacity(8);
        for t in 0..5 {
            r.push(ev(t));
        }
        let got: Vec<u64> = r.recent(3).iter().map(|e| e.ts).collect();
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(r.len(), 5);
        assert_eq!(r.written(), 5);
    }

    #[test]
    fn wraparound_overwrites_oldest() {
        let mut r = EventRing::with_capacity(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.written(), 10);
        let got: Vec<u64> = r.recent(64).iter().map(|e| e.ts).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
    }
}
