//! # px-obs — observability for the PXGW datapath
//!
//! Three pillars, all engineered to coexist with the repo's hot-path
//! invariants (zero steady-state allocation, bit-identical deterministic
//! digests, px-analyze clean):
//!
//! * **Flight recorder** ([`Recorder`], [`EventRing`]) — a
//!   fixed-capacity per-core ring of compact binary [`Event`]s
//!   (`PktIn`, `MergeEmit`, `SplitEmit`, `CaravanPack`,
//!   `DropMalformed`, `FlowEvict`, `BatchDone`; ≤ 32 bytes each),
//!   preallocated when observability is enabled so recording on the
//!   emission path is a bounds-checked store and two integer bumps.
//!   [`Recorder::drain`] decodes the last N events into a
//!   human-readable timeline for post-mortem dumps on test failure.
//! * **Histograms** ([`Histo64`], [`HistSet`]) — log₂-bucketed
//!   HDR-style fixed 64-bucket `Copy` arrays for batch processing
//!   time, per-packet cost, merge-aggregate dwell time, and output
//!   packet sizes, mergeable across cores with p50/p90/p99/max
//!   summaries.
//! * **Metrics export** ([`MetricsSnapshot`], [`TimeSample`]) —
//!   registry snapshots serialized to Prometheus text exposition
//!   format and JSON, plus per-interval time-series samples collected
//!   by the engine's in-run sampler thread.
//!
//! Determinism is preserved by construction: events are stamped with
//! *logical* time (trace arrival timestamps derived from packet index
//! and offered load, or per-engine packet counters), never wall-clock,
//! so enabling the recorder cannot perturb deterministic-mode digests.
//! Wall-clock only ever enters the (incomparable) latency histograms.
//!
//! [`ObsConfig::disabled`] short-circuits everything to no-ops: the
//! ring has zero capacity (no allocation at all) and every `record`/
//! `observe_*` call is a single predicted branch.
//!
//! **Tier 2** adds four more pillars with the same discipline:
//!
//! * **Flow-scoped span tracing** ([`Span`], [`SpanRing`]) — logical-time
//!   lifecycle intervals (classify → steer/merge → emit → split/caravan
//!   → evict, plus degrade/restart crossings) with causal links from
//!   merge/caravan emissions to the split spans consuming them,
//!   exportable as Perfetto JSON ([`perfetto_json`]).
//! * **Continuous profiling** ([`Profiler`], [`TopK`]) — a space-saving
//!   top-K sketch of hot flows plus a ring of per-batch stage
//!   attributions, fixed footprint, alloc-free updates.
//! * **SLO watchdog** ([`SloSpec`], [`SloWatchdog`]) — declarative
//!   objectives evaluated at batch boundaries, edge-triggered alert
//!   spans, deterministic where digests must be.
//! * **Live endpoint** ([`serve`]) — a dependency-free HTTP listener on
//!   the control thread serving `/metrics`, `/healthz`, and
//!   `/trace?flow=` from a running Parallel-mode engine.
//!
//! px-analyze rule **R5** statically audits this crate's recording
//! paths (`record*`, `observe*`, `push`) for allocation, the same way
//! R3 audits the engines' emission paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod profile;
pub mod recorder;
pub mod ring;
pub mod serve;
pub mod slo;
pub mod snapshot;
pub mod span;

pub use event::{flow_id, Event, EventKind};
pub use hist::{HistSet, Histo64};
pub use profile::{BatchProfile, FlowStat, ProfileRing, Profiler, TopK};
pub use recorder::{ObsConfig, ObsReport, Recorder};
pub use ring::EventRing;
pub use serve::{http_get, serve, Response, ServeHandle};
pub use slo::{evaluate_snapshot, BatchObs, SloSpec, SloVerdict, SloWatchdog};
pub use snapshot::{time_series_json, MetricsSnapshot, TimeSample};
pub use span::{perfetto_json, Span, SpanCat, SpanRing};
