//! # px-obs — observability for the PXGW datapath
//!
//! Three pillars, all engineered to coexist with the repo's hot-path
//! invariants (zero steady-state allocation, bit-identical deterministic
//! digests, px-analyze clean):
//!
//! * **Flight recorder** ([`Recorder`], [`EventRing`]) — a
//!   fixed-capacity per-core ring of compact binary [`Event`]s
//!   (`PktIn`, `MergeEmit`, `SplitEmit`, `CaravanPack`,
//!   `DropMalformed`, `FlowEvict`, `BatchDone`; ≤ 32 bytes each),
//!   preallocated when observability is enabled so recording on the
//!   emission path is a bounds-checked store and two integer bumps.
//!   [`Recorder::drain`] decodes the last N events into a
//!   human-readable timeline for post-mortem dumps on test failure.
//! * **Histograms** ([`Histo64`], [`HistSet`]) — log₂-bucketed
//!   HDR-style fixed 64-bucket `Copy` arrays for batch processing
//!   time, per-packet cost, merge-aggregate dwell time, and output
//!   packet sizes, mergeable across cores with p50/p90/p99/max
//!   summaries.
//! * **Metrics export** ([`MetricsSnapshot`], [`TimeSample`]) —
//!   registry snapshots serialized to Prometheus text exposition
//!   format and JSON, plus per-interval time-series samples collected
//!   by the engine's in-run sampler thread.
//!
//! Determinism is preserved by construction: events are stamped with
//! *logical* time (trace arrival timestamps derived from packet index
//! and offered load, or per-engine packet counters), never wall-clock,
//! so enabling the recorder cannot perturb deterministic-mode digests.
//! Wall-clock only ever enters the (incomparable) latency histograms.
//!
//! [`ObsConfig::disabled`] short-circuits everything to no-ops: the
//! ring has zero capacity (no allocation at all) and every `record`/
//! `observe_*` call is a single predicted branch.
//!
//! px-analyze rule **R5** statically audits this crate's recording
//! paths (`record*`, `observe*`, `push`) for allocation, the same way
//! R3 audits the engines' emission paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod recorder;
pub mod ring;
pub mod snapshot;

pub use event::{flow_id, Event, EventKind};
pub use hist::{HistSet, Histo64};
pub use recorder::{ObsConfig, ObsReport, Recorder};
pub use ring::EventRing;
pub use snapshot::{time_series_json, MetricsSnapshot, TimeSample};
