//! The per-engine recorder: one event ring + one histogram set, with a
//! disabled mode that compiles down to predicted-branch no-ops.

use crate::event::{Event, EventKind};
use crate::hist::HistSet;
use crate::profile::{BatchProfile, Profiler};
use crate::ring::EventRing;
use crate::slo::SloSpec;
use crate::snapshot::TimeSample;
use crate::span::{Span, SpanCat, SpanRing};

/// Observability configuration, embedded (by `Copy`) in engine configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When false nothing allocates and every recording
    /// call is a single predicted branch.
    pub enabled: bool,
    /// Flight-recorder capacity per engine, in events.
    pub ring_capacity: usize,
    /// Span-tracer capacity per engine, in spans (tier 2; 0 disables
    /// span tracing while keeping events on).
    pub span_capacity: usize,
    /// Continuous-profiler top-K sketch size (hot flows tracked per
    /// core; 0 disables the sketch).
    pub profile_topk: usize,
    /// Continuous-profiler batch-profile ring capacity (0 disables the
    /// per-batch stage attribution ring).
    pub profile_ring: usize,
    /// The SLO watchdog objectives evaluated at batch boundaries.
    pub slo: SloSpec,
    /// In Parallel mode, workers publish their counters to the shared
    /// registry every this many batches (0 = only at the end) so
    /// mid-run snapshots and the sampler thread see progress.
    pub publish_every_batches: u64,
    /// Sampler thread interval in microseconds for Parallel-mode
    /// time-series collection (0 disables the sampler).
    pub sample_interval_us: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            ring_capacity: 256,
            span_capacity: 1024,
            profile_topk: 16,
            profile_ring: 64,
            slo: SloSpec::default(),
            publish_every_batches: 16,
            sample_interval_us: 1000,
        }
    }
}

impl ObsConfig {
    /// The all-off configuration: no rings, no histograms, no sampler,
    /// no profiler, no watchdog.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 0,
            span_capacity: 0,
            profile_topk: 0,
            profile_ring: 0,
            slo: SloSpec::off(),
            publish_every_batches: 0,
            sample_interval_us: 0,
        }
    }
}

/// A flight recorder plus histogram set for one engine/core.
///
/// The default value is the disabled recorder (zero-capacity ring, no
/// heap), so embedding one in an engine costs nothing until
/// observability is switched on.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    enabled: bool,
    ring: EventRing,
    spans: SpanRing,
    profile: Profiler,
    hists: HistSet,
}

impl Recorder {
    /// Builds a recorder for `cfg`, preallocating the event/span rings
    /// and the profiler when enabled (so nothing on the recording path
    /// ever allocates).
    pub fn new(cfg: ObsConfig) -> Self {
        let on = cfg.enabled;
        Recorder {
            enabled: on,
            ring: EventRing::with_capacity(if on { cfg.ring_capacity } else { 0 }),
            spans: SpanRing::with_capacity(if on { cfg.span_capacity } else { 0 }),
            profile: if on {
                Profiler::new(cfg.profile_topk, cfg.profile_ring)
            } else {
                Profiler::default()
            },
            hists: HistSet::default(),
        }
    }

    /// The disabled recorder (same as `Recorder::default()`).
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event. Alloc-free; no-op when disabled.
    #[inline]
    pub fn record(&mut self, kind: EventKind, ts: u64, len: u32, flow: u32, aux: u64) {
        if !self.enabled {
            return;
        }
        self.ring.push(Event {
            ts,
            aux,
            flow,
            len,
            kind,
        });
    }

    /// Records one flow-lifecycle span. Alloc-free; no-op when
    /// disabled. `start_ns`/`dur_ns` must be logical time.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &mut self,
        cat: SpanCat,
        start_ns: u64,
        dur_ns: u64,
        len: u32,
        flow: u32,
        aux: u64,
        link: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            start_ns,
            dur_ns,
            aux,
            link,
            flow,
            len,
            cat,
        });
    }

    /// Attributes emission work to a flow in the continuous profiler's
    /// top-K sketch. Alloc-free; no-op when disabled.
    #[inline]
    pub fn observe_flow(&mut self, flow: u32, pkts: u64, bytes: u64, dwell_ns: u64) {
        if !self.enabled {
            return;
        }
        self.profile.observe_flow(flow, pkts, bytes, dwell_ns);
    }

    /// Records one batch's stage-time attribution in the continuous
    /// profiler. Alloc-free; no-op when disabled.
    #[inline]
    pub fn observe_batch_profile(&mut self, p: BatchProfile) {
        if !self.enabled {
            return;
        }
        self.profile.observe_batch_profile(p);
    }

    /// Records one batch's wall time and derives the per-packet cost.
    #[inline]
    pub fn observe_batch(&mut self, wall_ns: u64, pkts: u64) {
        if !self.enabled {
            return;
        }
        self.hists.batch_ns.record(wall_ns);
        if let Some(per_pkt) = wall_ns.checked_div(pkts) {
            self.hists.pkt_ns.record(per_pkt);
        }
    }

    /// Records a merge-aggregate / caravan-bundle dwell time (logical
    /// ns held before emission).
    #[inline]
    pub fn observe_dwell(&mut self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.hists.dwell_ns.record(ns);
    }

    /// Records an output packet's size.
    #[inline]
    pub fn observe_out_size(&mut self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.hists.out_bytes.record(bytes);
    }

    /// The accumulated histograms.
    pub fn hists(&self) -> &HistSet {
        &self.hists
    }

    /// Total events recorded (including ones the ring overwrote).
    pub fn events_recorded(&self) -> u64 {
        self.ring.written()
    }

    /// Total spans recorded (including ones the ring overwrote).
    pub fn spans_recorded(&self) -> u64 {
        self.spans.written()
    }

    /// The last `n` spans, oldest first (cold path; allocates).
    pub fn recent_spans(&self, n: usize) -> Vec<Span> {
        self.spans.recent(n)
    }

    /// The continuous profiler's current state.
    pub fn profiler(&self) -> &Profiler {
        &self.profile
    }

    /// The last `n` events, oldest first (cold path; allocates).
    pub fn recent(&self, n: usize) -> Vec<Event> {
        self.ring.recent(n)
    }

    /// Decodes the last `n` events into a human-readable timeline, one
    /// line per event — the post-mortem dump format.
    pub fn render_recent(&self, n: usize) -> String {
        let evs = self.ring.recent(n);
        if evs.is_empty() {
            return String::from("  (no events recorded)");
        }
        let mut out = String::with_capacity(evs.len() * 48);
        for ev in &evs {
            out.push_str("  ");
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Drains the recorder: renders the last `n` events as a timeline
    /// and resets the ring (histograms are kept — they merge upward).
    pub fn drain(&mut self, n: usize) -> String {
        let rendered = self.render_recent(n);
        let cap = self.ring.capacity();
        self.ring = EventRing::with_capacity(cap);
        rendered
    }

    /// Consumes the recorder's contents for report assembly: every held
    /// event (oldest first) plus the histogram set.
    pub fn take(&mut self) -> (Vec<Event>, HistSet) {
        let events = self.ring.recent(self.ring.capacity().max(self.ring.len()));
        let hists = self.hists;
        self.ring = EventRing::with_capacity(self.ring.capacity());
        self.hists = HistSet::default();
        (events, hists)
    }

    /// Consumes the span ring for report assembly (oldest first).
    pub fn take_spans(&mut self) -> Vec<Span> {
        let spans = self
            .spans
            .recent(self.spans.capacity().max(self.spans.len()));
        self.spans = SpanRing::with_capacity(self.spans.capacity());
        spans
    }

    /// Consumes the profiler for report assembly, leaving an empty one
    /// of the same shape behind.
    pub fn take_profiler(&mut self) -> Profiler {
        let k = self.profile.topk.capacity();
        let ring = self.profile.ring.capacity();
        std::mem::replace(&mut self.profile, Profiler::new(k, ring))
    }
}

/// Observability results attached to an engine run report.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Whether the run recorded anything.
    pub enabled: bool,
    /// Histograms merged over every core.
    pub hists: HistSet,
    /// Each core's flight-recorder contents (oldest first).
    pub per_core_events: Vec<Vec<Event>>,
    /// Each core's span-tracer contents (oldest first; tier 2).
    pub per_core_spans: Vec<Vec<Span>>,
    /// The continuous profiler, merged over every core (tier 2).
    pub profile: Profiler,
    /// The SLO watchdog tallies, merged over every core (tier 2).
    pub slo: crate::slo::SloWatchdog,
    /// Periodic whole-engine samples from the in-run sampler thread
    /// (Parallel mode; a single final sample otherwise).
    pub time_series: Vec<TimeSample>,
}

impl ObsReport {
    /// The empty report for disabled-observability runs.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Renders the last `n` events of every core as a post-mortem
    /// timeline — what failing engine tests print.
    pub fn dump_recent(&self, n: usize) -> String {
        if !self.enabled {
            return String::from("(observability disabled for this run)");
        }
        let mut out = String::new();
        for (core, evs) in self.per_core_events.iter().enumerate() {
            out.push_str(&format!(
                "core {core} (last {} of {} events):\n",
                n.min(evs.len()),
                evs.len()
            ));
            let start = evs.len().saturating_sub(n);
            for ev in evs.iter().skip(start) {
                out.push_str("  ");
                out.push_str(&ev.render());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::new(ObsConfig::disabled());
        r.record(EventKind::PktIn, 1, 1500, 0, 0);
        r.observe_batch(100, 32);
        r.observe_out_size(9000);
        assert_eq!(r.events_recorded(), 0);
        assert_eq!(r.hists().batch_ns.count(), 0);
        assert_eq!(r.hists().out_bytes.count(), 0);
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_accumulates_and_drains() {
        let mut r = Recorder::new(ObsConfig::default());
        for t in 0..10 {
            r.record(EventKind::PktIn, t, 1500, crate::flow_id(5000, 80), 0);
        }
        r.observe_batch(3200, 32);
        assert_eq!(r.events_recorded(), 10);
        assert_eq!(r.hists().pkt_ns.count(), 1);
        let timeline = r.drain(4);
        assert_eq!(timeline.lines().count(), 4, "{timeline}");
        assert!(timeline.contains("PktIn"));
        assert_eq!(r.events_recorded(), 0, "drain resets the ring");
        assert_eq!(r.hists().batch_ns.count(), 1, "histograms survive drain");
    }

    #[test]
    fn take_hands_over_events_and_hists() {
        let mut r = Recorder::new(ObsConfig {
            ring_capacity: 8,
            ..ObsConfig::default()
        });
        for t in 0..20 {
            r.record(EventKind::BatchDone, t, 32, 0, 0);
        }
        r.observe_dwell(500);
        let (events, hists) = r.take();
        assert_eq!(events.len(), 8, "capacity-bounded");
        assert_eq!(events.first().map(|e| e.ts), Some(12));
        assert_eq!(hists.dwell_ns.count(), 1);
        assert_eq!(r.hists().dwell_ns.count(), 0);
    }

    #[test]
    fn tier2_records_spans_and_profiles() {
        let mut r = Recorder::new(ObsConfig::default());
        r.record_span(
            SpanCat::Merge,
            100,
            50_000,
            8760,
            crate::flow_id(5000, 80),
            6,
            1,
        );
        r.observe_flow(crate::flow_id(5000, 80), 6, 8760, 50_000);
        r.observe_batch_profile(BatchProfile {
            batch: 0,
            pkts: 32,
            wall_ns: 4000,
            parse_ns: 1000,
        });
        assert_eq!(r.spans_recorded(), 1);
        assert_eq!(r.recent_spans(4).len(), 1);
        assert_eq!(r.profiler().batches, 1);
        assert_eq!(r.profiler().topk.len(), 1);
        let spans = r.take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].cat, SpanCat::Merge);
        assert_eq!(r.spans_recorded(), 0, "take resets the span ring");
        let prof = r.take_profiler();
        assert_eq!(prof.batches, 1);
        assert_eq!(r.profiler().batches, 0, "take resets the profiler");
        assert_eq!(r.profiler().topk.capacity(), 16, "shape survives take");

        let mut off = Recorder::new(ObsConfig::disabled());
        off.record_span(SpanCat::Split, 1, 0, 0, 0, 0, 0);
        off.observe_flow(1, 1, 1, 1);
        assert_eq!(off.spans_recorded(), 0);
        assert!(off.profiler().topk.is_empty());
    }

    #[test]
    fn obs_report_dump_groups_by_core() {
        let report = ObsReport {
            enabled: true,
            per_core_events: vec![
                vec![Event::EMPTY; 3],
                vec![Event {
                    ts: 7,
                    ..Event::EMPTY
                }],
            ],
            ..ObsReport::disabled()
        };
        let dump = report.dump_recent(2);
        assert!(dump.contains("core 0 (last 2 of 3 events):"), "{dump}");
        assert!(dump.contains("core 1 (last 1 of 1 events):"), "{dump}");
        assert!(dump.contains("[t=7ns]"), "{dump}");
    }
}
