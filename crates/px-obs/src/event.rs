//! The flight-recorder event schema: one compact, `Copy`, ≤ 32-byte
//! record per datapath happening.
//!
//! Events are stamped with **logical time** (`ts`): the trace arrival
//! timestamp the engine was driven with (derived from packet index ×
//! inter-arrival time in the sharded engine) or a per-engine packet
//! counter for engines driven without a clock (split). Wall-clock never
//! appears in an event, so recording is bit-identical across reruns and
//! across `Parallel`/`Deterministic` scheduling.

/// What happened. `#[repr(u8)]` keeps [`Event`] compact.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An input packet entered a core's engine. `len` = wire bytes.
    PktIn = 0,
    /// The merge engine emitted a (possibly multi-segment) aggregate.
    /// `aux` = dwell time in logical ns (emission ts − first-segment ts).
    MergeEmit = 1,
    /// The split engine emitted one wire packet from an oversize input.
    /// `ts` is the split engine's input-packet counter.
    SplitEmit = 2,
    /// The caravan engine emitted a multi-datagram bundle.
    /// `aux` = inner datagram count.
    CaravanPack = 3,
    /// A packet was dropped as malformed (corrupt bundle, unparsable
    /// oversize packet, failed header emit).
    DropMalformed = 4,
    /// A flow-table insertion evicted the LRU victim. `flow` identifies
    /// the *victim*; `aux` is the eviction reason: 1 = idle (a
    /// classifier slot churned out, nothing pending), 2 = pressure (the
    /// victim held unflushed merge/bundle bytes and was rescue-flushed,
    /// never dropped).
    FlowEvict = 5,
    /// A worker finished one batch. `len` = packets in the batch, `ts` =
    /// the last packet's logical arrival. The batch's wall time goes to
    /// the histograms only — wall-clock never enters an event.
    BatchDone = 6,
    /// An engine entered degraded (passthrough) mode: an aggregate
    /// could not be created — pool dry or flow-table denial — so the
    /// packet was forwarded unmerged instead of dropped. `aux` = 1 for
    /// pool exhaustion, 2 for table denial (DESIGN.md §12 ladder).
    DegradeEnter = 7,
    /// The pressure subsided: the next aggregate creation succeeded and
    /// the engine resumed merging.
    DegradeExit = 8,
    /// The supervisor restarted a worker after a panic or stall. `aux`
    /// = flows rescued (flushed) from the dead worker's table, `len` =
    /// the batch index the fault hit.
    WorkerRestart = 9,
    /// The merge engine refused a data segment whose bytes conflicted
    /// with what its flow's aggregate already attests. `aux` = 0 for an
    /// inconsistent overlap (same range, different bytes — injection),
    /// 1 for overlap evasion (a segment straddling the aggregate's base,
    /// smuggling bytes the engine can no longer verify).
    DropInconsistentOverlap = 10,
    /// The F-PMTUD prober/guard rejected a report that failed its nonce
    /// check or sanity band. `aux` = the rejected report's claimed
    /// fragment size (0 when unparsable).
    PmtudSpoofRejected = 11,
}

impl EventKind {
    /// Short display name used by timeline rendering.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PktIn => "PktIn",
            EventKind::MergeEmit => "MergeEmit",
            EventKind::SplitEmit => "SplitEmit",
            EventKind::CaravanPack => "CaravanPack",
            EventKind::DropMalformed => "DropMalformed",
            EventKind::FlowEvict => "FlowEvict",
            EventKind::BatchDone => "BatchDone",
            EventKind::DegradeEnter => "DegradeEnter",
            EventKind::DegradeExit => "DegradeExit",
            EventKind::WorkerRestart => "WorkerRestart",
            EventKind::DropInconsistentOverlap => "DropInconsistentOverlap",
            EventKind::PmtudSpoofRejected => "PmtudSpoofRejected",
        }
    }
}

/// One flight-recorder entry. 25 bytes of payload, padded to 32 by the
/// compiler — small enough that a 256-slot per-core ring is two pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Logical timestamp (trace arrival ns, or a packet index for
    /// engines driven without a clock). Never wall-clock.
    pub ts: u64,
    /// Kind-specific payload: dwell ns ([`EventKind::MergeEmit`]),
    /// inner count ([`EventKind::CaravanPack`]), batch wall ns
    /// ([`EventKind::BatchDone`]), 0 otherwise.
    pub aux: u64,
    /// Flow identity as `src_port << 16 | dst_port` (see [`flow_id`]);
    /// 0 when the flow is unknown or not applicable.
    pub flow: u32,
    /// Packet length in bytes (or packet count for
    /// [`EventKind::BatchDone`]).
    pub len: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The all-zero placeholder used to prefill ring slots.
    pub const EMPTY: Event = Event {
        ts: 0,
        aux: 0,
        flow: 0,
        len: 0,
        kind: EventKind::PktIn,
    };

    /// Renders one event as a timeline line, e.g.
    /// `[t=1290ns] MergeEmit len=8800 flow=5000->80 aux=41280`.
    pub fn render(&self) -> String {
        let src = self.flow >> 16;
        let dst = self.flow & 0xFFFF;
        format!(
            "[t={}ns] {} len={} flow={}->{} aux={}",
            self.ts,
            self.kind.name(),
            self.len,
            src,
            dst,
            self.aux
        )
    }
}

/// Packs a port pair into the [`Event::flow`] field.
#[inline]
pub fn flow_id(src_port: u16, dst_port: u16) -> u32 {
    (u32::from(src_port) << 16) | u32::from(dst_port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_fits_the_32_byte_budget() {
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event is {} bytes",
            std::mem::size_of::<Event>()
        );
    }

    #[test]
    fn flow_id_packs_ports() {
        assert_eq!(flow_id(5000, 80), (5000u32 << 16) | 80);
        let ev = Event {
            flow: flow_id(5000, 80),
            ..Event::EMPTY
        };
        let line = ev.render();
        assert!(line.contains("5000->80"), "{line}");
        assert!(line.contains("PktIn"), "{line}");
    }
}
