//! Flow-scoped span tracing — tier 2 of the flight recorder.
//!
//! Where [`Event`](crate::Event)s are point samples, a [`Span`] covers
//! an *interval* of a flow's lifecycle: the dwell of a merge aggregate
//! from first segment to emission, a caravan bundle's fill window, a
//! degradation episode from enter to exit, a worker-restart crossing.
//! Spans carry **logical time only** (trace arrival timestamps or
//! per-engine packet counters), so recording them in Deterministic mode
//! cannot perturb digests and span streams are bit-identical across
//! reruns.
//!
//! Spans live in per-core [`SpanRing`]s with the same discipline as the
//! event ring: preallocated at enable time, recording is a
//! bounds-checked store (px-analyze R5), overwrite-oldest when full.
//!
//! Causality: an emission span (category [`SpanCat::Merge`] or
//! [`SpanCat::Caravan`]) carries a nonzero `link` identifier; the split
//! spans consuming that jumbo on the egress side carry the same `link`.
//! [`perfetto_json`] turns each shared identifier into a
//! chrome://tracing flow arrow (`ph:"s"` / `ph:"f"`), so the producing
//! merge and the consuming split render connected in Perfetto.

/// What stage of a flow's lifecycle a span covers.
///
/// The discriminants are stable (they appear in exported traces) and
/// the names double as Perfetto categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanCat {
    /// First sighting of a flow: classifier verdict on table insert
    /// (`aux`: 0 = default/merge, 1 = elephant, 2 = not-mergeable).
    Classify = 0,
    /// A packet steered past merging by the mice/elephant classifier.
    Steer = 1,
    /// A TCP merge aggregate's dwell: first held segment → emission
    /// (`aux` = segments merged, `link` = causal emission id).
    Merge = 2,
    /// A UDP caravan bundle's fill window: first datagram → emission
    /// (`aux` = inner datagrams, `link` = causal emission id).
    Caravan = 3,
    /// A split-engine emission consuming a jumbo (`link` matches the
    /// producing Merge/Caravan span when known).
    Split = 4,
    /// A flow-table eviction (`aux`: 1 = idle, 2 = pressure).
    Evict = 5,
    /// A degradation episode: ladder enter → exit (`aux` = packets
    /// forwarded on the passthrough rung during the episode).
    Degrade = 6,
    /// A worker-restart crossing (`aux` = flows rescue-flushed).
    Restart = 7,
    /// An SLO watchdog alert (`aux` = breach bitmask, see
    /// [`crate::slo`]).
    Slo = 8,
}

impl SpanCat {
    /// The category's display name (also the Perfetto `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanCat::Classify => "classify",
            SpanCat::Steer => "steer",
            SpanCat::Merge => "merge",
            SpanCat::Caravan => "caravan",
            SpanCat::Split => "split",
            SpanCat::Evict => "evict",
            SpanCat::Degrade => "degrade",
            SpanCat::Restart => "restart",
            SpanCat::Slo => "slo",
        }
    }
}

/// One flow-lifecycle span. `Copy`, 40 bytes, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Logical start time (trace-arrival ns or per-engine counter).
    pub start_ns: u64,
    /// Logical duration (0 for instantaneous markers).
    pub dur_ns: u64,
    /// Category-specific payload (segment counts, eviction reason,
    /// breach bitmask — see [`SpanCat`]).
    pub aux: u64,
    /// Causal link identifier (0 = unlinked). Shared between a
    /// merge/caravan emission span and the split spans consuming it.
    pub link: u64,
    /// The flow the span belongs to ([`crate::flow_id`] packing).
    pub flow: u32,
    /// Bytes involved (emitted packet length, bundle size, …).
    pub len: u32,
    /// Lifecycle stage.
    pub cat: SpanCat,
}

impl Span {
    /// The all-zero placeholder used to prefill rings.
    pub const EMPTY: Span = Span {
        start_ns: 0,
        dur_ns: 0,
        aux: 0,
        link: 0,
        flow: 0,
        len: 0,
        cat: SpanCat::Classify,
    };

    /// One-line human-readable rendering (post-mortem dumps).
    pub fn render(&self) -> String {
        let src = (self.flow >> 16) as u16;
        let dst = (self.flow & 0xFFFF) as u16;
        format!(
            "[t={}ns +{}ns] {} len={} flow={src}->{dst} aux={} link={}",
            self.start_ns,
            self.dur_ns,
            self.cat.name(),
            self.len,
            self.aux,
            self.link
        )
    }
}

/// A fixed-capacity overwrite-oldest ring of [`Span`]s — the span-side
/// twin of [`crate::EventRing`], with the same time-separated
/// single-producer/single-consumer discipline (no atomics needed; the
/// handoff is the worker-thread join).
#[derive(Debug, Clone, Default)]
pub struct SpanRing {
    buf: Box<[Span]>,
    /// Next slot to write (== oldest slot once the ring has wrapped).
    next: usize,
    /// Total spans ever pushed (keeps counting past capacity).
    written: u64,
}

impl SpanRing {
    /// Creates a ring holding up to `capacity` spans, preallocated.
    /// Capacity 0 (the disabled configuration) makes pushes no-ops
    /// without allocating.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRing {
            buf: vec![Span::EMPTY; capacity].into_boxed_slice(),
            next: 0,
            written: 0,
        }
    }

    /// Records one span, overwriting the oldest when full. Alloc-free.
    #[inline]
    pub fn push(&mut self, sp: Span) {
        let cap = self.buf.len();
        if cap == 0 {
            return;
        }
        if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = sp;
        }
        self.next += 1;
        if self.next == cap {
            self.next = 0;
        }
        self.written = self.written.wrapping_add(1);
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Total spans ever pushed (including overwritten ones).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        usize::try_from(self.written)
            .unwrap_or(usize::MAX)
            .min(self.buf.len())
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// The last `n` spans, oldest first. Allocates (cold path only).
    pub fn recent(&self, n: usize) -> Vec<Span> {
        let held = self.len();
        let take = n.min(held);
        let cap = self.buf.len();
        let mut out = Vec::with_capacity(take);
        for i in 0..take {
            let idx = (self.next + cap - take + i) % cap.max(1);
            if let Some(sp) = self.buf.get(idx) {
                out.push(*sp);
            }
        }
        out
    }
}

/// Escapes nothing: span fields are all numeric and category names are
/// static identifiers, so the JSON below needs no string escaping.
fn push_span_json(out: &mut String, sp: &Span, tid: usize, first: &mut bool) {
    let src = (sp.flow >> 16) as u16;
    let dst = (sp.flow & 0xFFFF) as u16;
    let ts_us = sp.start_ns as f64 / 1000.0;
    let dur_us = sp.dur_ns as f64 / 1000.0;
    let sep = if *first { "" } else { ",\n" };
    *first = false;
    out.push_str(&format!(
        "{sep}  {{\"name\": \"{name} {src}->{dst}\", \"cat\": \"{cat}\", \"ph\": \"X\", \
         \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \"pid\": 1, \"tid\": {tid}, \
         \"args\": {{\"flow\": {flow}, \"len\": {len}, \"aux\": {aux}, \"link\": {link}}}}}",
        name = sp.cat.name(),
        cat = sp.cat.name(),
        flow = sp.flow,
        len = sp.len,
        aux = sp.aux,
        link = sp.link,
    ));
    if sp.link != 0 {
        // Producer side starts the flow arrow; consumers finish it.
        let (ph, extra) = match sp.cat {
            SpanCat::Merge | SpanCat::Caravan => ("s", ""),
            _ => ("f", ", \"bp\": \"e\""),
        };
        out.push_str(&format!(
            ",\n  {{\"name\": \"jumbo\", \"cat\": \"link\", \"ph\": \"{ph}\", \"id\": {link}, \
             \"ts\": {ts:.3}, \"pid\": 1, \"tid\": {tid}{extra}}}",
            link = sp.link,
            ts = ts_us + dur_us,
        ));
    }
}

/// Renders per-core span streams as Perfetto / chrome://tracing JSON
/// (the `traceEvents` object form). `flow_filter` restricts the export
/// to one flow id; links are emitted as chrome flow-event pairs.
pub fn perfetto_json(per_core: &[Vec<Span>], flow_filter: Option<u32>) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for (core, spans) in per_core.iter().enumerate() {
        let sep = if first { "" } else { ",\n" };
        out.push_str(&format!(
            "{sep}  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {core}, \
             \"args\": {{\"name\": \"core {core}\"}}}}",
        ));
        first = false;
        for sp in spans {
            if flow_filter.is_some_and(|f| sp.flow != f) {
                continue;
            }
            push_span_json(&mut out, sp, core, &mut first);
        }
    }
    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(start: u64, cat: SpanCat) -> Span {
        Span {
            start_ns: start,
            dur_ns: 10,
            cat,
            flow: crate::flow_id(5000, 80),
            len: 1460,
            ..Span::EMPTY
        }
    }

    #[test]
    fn zero_capacity_ring_is_a_noop() {
        let mut r = SpanRing::with_capacity(0);
        r.push(sp(1, SpanCat::Merge));
        assert_eq!(r.written(), 0);
        assert!(r.recent(10).is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn wraparound_keeps_newest_oldest_first() {
        let mut r = SpanRing::with_capacity(4);
        for t in 0..9 {
            r.push(sp(t, SpanCat::Split));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.written(), 9);
        let got: Vec<u64> = r.recent(64).iter().map(|s| s.start_ns).collect();
        assert_eq!(got, vec![5, 6, 7, 8]);
    }

    #[test]
    fn span_render_decodes_ports() {
        let s = sp(42, SpanCat::Caravan);
        let line = s.render();
        assert!(line.contains("caravan"), "{line}");
        assert!(line.contains("5000->80"), "{line}");
        assert!(line.contains("t=42ns"), "{line}");
    }

    #[test]
    fn perfetto_json_is_valid_and_linked() {
        let mut producer = sp(100, SpanCat::Merge);
        producer.link = 7;
        let mut consumer = sp(200, SpanCat::Split);
        consumer.link = 7;
        let text = perfetto_json(&[vec![producer], vec![consumer]], None);
        assert!(text.starts_with("{\"traceEvents\": ["));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ph\": \"s\""), "{text}");
        assert!(text.contains("\"ph\": \"f\""), "{text}");
        assert!(text.contains("\"cat\": \"merge\""));
        assert!(text.contains("\"cat\": \"split\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes, "{text}");
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn flow_filter_restricts_export() {
        let a = sp(1, SpanCat::Merge);
        let mut b = sp(2, SpanCat::Merge);
        b.flow = crate::flow_id(6000, 80);
        let text = perfetto_json(&[vec![a, b]], Some(a.flow));
        assert!(text.contains(&format!("\"flow\": {}", a.flow)));
        assert!(!text.contains(&format!("\"flow\": {}", b.flow)));
    }
}
