//! The SLO watchdog — declarative service-level objectives evaluated at
//! batch boundaries.
//!
//! An [`SloSpec`] states what "healthy" means for the gateway: a p99
//! per-packet latency ceiling, a conversion-yield floor, a budget on
//! consecutive batches spent on the degradation ladder, and a budget on
//! pressure evictions. A per-core [`SloWatchdog`] evaluates the spec
//! once per batch (at the [`process_batch`] boundary, where locks and
//! bookkeeping legitimately live) and reports *rising edges*: a breach
//! emits exactly one alert span when it starts, not one per batch while
//! it persists.
//!
//! Determinism: the yield, degrade-residency, and eviction checks are
//! pure functions of logical datapath state, so in Deterministic mode
//! they fire identically across reruns. The latency check reads the
//! wall-clock histograms, so workers arm it **only in Parallel mode**
//! (the caller passes `p99_pkt_ns: None` in Deterministic mode) —
//! alert streams stay bit-identical where digests must.
//!
//! The same evaluation backs the live endpoint's `/healthz` verdict via
//! [`evaluate_snapshot`].

/// Breach bit: p99 per-packet latency over the ceiling.
pub const BREACH_P99: u32 = 1 << 0;
/// Breach bit: conversion yield under the floor.
pub const BREACH_YIELD: u32 = 1 << 1;
/// Breach bit: degrade-ladder residency over budget.
pub const BREACH_DEGRADE: u32 = 1 << 2;
/// Breach bit: pressure evictions over budget.
pub const BREACH_EVICT: u32 = 1 << 3;

/// Names of the breach bits, for rendering.
pub fn breach_names(mask: u32) -> Vec<&'static str> {
    let mut v = Vec::new();
    if mask & BREACH_P99 != 0 {
        v.push("p99_pkt_ns");
    }
    if mask & BREACH_YIELD != 0 {
        v.push("yield");
    }
    if mask & BREACH_DEGRADE != 0 {
        v.push("degrade_residency");
    }
    if mask & BREACH_EVICT != 0 {
        v.push("evicted_pressure");
    }
    v
}

/// A declarative SLO. All-integer so the spec is `Copy + Eq` and can
/// ride inside engine configs; "off" thresholds are the identity
/// values (`u64::MAX` ceilings, `0` floors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SloSpec {
    /// Master switch for the watchdog.
    pub enabled: bool,
    /// p99 per-packet wall-time ceiling in nanoseconds
    /// (`u64::MAX` = unchecked). Wall-clock: Parallel mode only.
    pub p99_pkt_ns_max: u64,
    /// Conversion-yield floor in parts per million (`0` = unchecked).
    pub yield_min_ppm: u32,
    /// Maximum consecutive batches the core may spend degraded
    /// (`u64::MAX` = unchecked).
    pub degrade_batches_max: u64,
    /// Maximum pressure evictions over the run (`u64::MAX` =
    /// unchecked).
    pub evicted_pressure_max: u64,
}

impl Default for SloSpec {
    /// Armed but permissive: the watchdog runs (so its cost is always
    /// measured) with thresholds that a healthy gateway never crosses.
    fn default() -> Self {
        SloSpec {
            enabled: true,
            p99_pkt_ns_max: u64::MAX,
            yield_min_ppm: 0,
            degrade_batches_max: u64::MAX,
            evicted_pressure_max: u64::MAX,
        }
    }
}

impl SloSpec {
    /// The disabled spec: no evaluation at all.
    pub fn off() -> Self {
        SloSpec {
            enabled: false,
            ..SloSpec::default()
        }
    }

    /// The paper-shaped demo objectives used by `figures` and the
    /// tracing bench: generous enough that a healthy full-scale run
    /// stays green, tight enough that injected faults trip them.
    pub fn demo() -> Self {
        SloSpec {
            enabled: true,
            p99_pkt_ns_max: 5_000_000,
            yield_min_ppm: 500_000,
            degrade_batches_max: 64,
            evicted_pressure_max: 100_000,
        }
    }
}

/// The facts one batch presents to the watchdog. Logical fields come
/// straight from counters; `p99_pkt_ns` is `None` whenever wall-clock
/// readings must not influence the alert stream (Deterministic mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchObs {
    /// Batch ordinal on the owning core.
    pub batch: u64,
    /// Logical time of the batch's last packet (alert span stamp).
    pub logical_now: u64,
    /// Conversion yield so far, in parts per million.
    pub yield_ppm: u32,
    /// Whether yield is meaningful yet (enough steady-state output).
    pub yield_valid: bool,
    /// Whether the core is currently on the degradation ladder.
    pub degraded: bool,
    /// Cumulative pressure evictions on this core.
    pub evicted_pressure: u64,
    /// p99 per-packet wall time, when wall-clock checks are armed.
    pub p99_pkt_ns: Option<u64>,
}

/// Edge-triggered per-core watchdog state.
#[derive(Debug, Clone, Default)]
pub struct SloWatchdog {
    spec: SloSpec,
    /// Consecutive batches spent degraded.
    degrade_run: u64,
    /// Conditions currently breached (level state for edge detection).
    level: u32,
    /// Total alert edges emitted.
    alerts: u64,
    /// Batches evaluated.
    evaluated: u64,
    /// Per-condition breach-edge counts, indexed by bit position.
    breach_edges: [u64; 4],
}

impl SloWatchdog {
    /// A watchdog for `spec` (an `enabled: false` spec never fires).
    pub fn new(spec: SloSpec) -> Self {
        SloWatchdog {
            spec,
            ..SloWatchdog::default()
        }
    }

    /// The spec being enforced.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Batches evaluated so far.
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Alert edges emitted so far.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Conditions currently in breach.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Per-condition breach-edge counts as
    /// `(p99, yield, degrade, evict)`.
    pub fn breach_edges(&self) -> (u64, u64, u64, u64) {
        (
            self.breach_edges[0],
            self.breach_edges[1],
            self.breach_edges[2],
            self.breach_edges[3],
        )
    }

    /// Evaluates one batch. Returns the mask of conditions that *newly*
    /// entered breach (rising edges) — the caller records one alert
    /// span per nonzero return. Alloc- and panic-free: this runs inside
    /// the batch boundary of the hot loop.
    #[inline]
    pub fn evaluate(&mut self, obs: &BatchObs) -> u32 {
        if !self.spec.enabled {
            return 0;
        }
        self.evaluated += 1;
        if obs.degraded {
            self.degrade_run += 1;
        } else {
            self.degrade_run = 0;
        }
        let mut now = 0u32;
        if let Some(p99) = obs.p99_pkt_ns {
            if p99 > self.spec.p99_pkt_ns_max {
                now |= BREACH_P99;
            }
        }
        if obs.yield_valid && self.spec.yield_min_ppm > 0 && obs.yield_ppm < self.spec.yield_min_ppm
        {
            now |= BREACH_YIELD;
        }
        if self.degrade_run > self.spec.degrade_batches_max {
            now |= BREACH_DEGRADE;
        }
        if obs.evicted_pressure > self.spec.evicted_pressure_max {
            now |= BREACH_EVICT;
        }
        let rising = now & !self.level;
        self.level = now;
        if rising != 0 {
            self.alerts += 1;
            for bit in 0..4u32 {
                if rising & (1 << bit) != 0 {
                    if let Some(c) = self.breach_edges.get_mut(bit as usize) {
                        *c += 1;
                    }
                }
            }
        }
        rising
    }

    /// Folds another core's watchdog tallies into this one (report
    /// side).
    pub fn merge(&mut self, other: &SloWatchdog) {
        self.alerts += other.alerts;
        self.evaluated += other.evaluated;
        self.level |= other.level;
        for (a, b) in self.breach_edges.iter_mut().zip(other.breach_edges.iter()) {
            *a += b;
        }
    }
}

/// A whole-engine SLO verdict (the `/healthz` payload and the metrics
/// `slo` block).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloVerdict {
    /// Whether every checked objective currently holds.
    pub ok: bool,
    /// Mask of objectives in breach.
    pub mask: u32,
    /// Observed p99 per-packet wall time (0 when unavailable).
    pub p99_pkt_ns: u64,
    /// Observed conversion yield.
    pub conversion_yield: f64,
    /// Observed pressure evictions.
    pub evicted_pressure: u64,
}

/// Evaluates a spec against whole-engine aggregates — the snapshot
/// form used by `/healthz` and the metrics exporter. `p99_pkt_ns = 0`
/// skips the latency check (no samples yet).
pub fn evaluate_snapshot(
    spec: &SloSpec,
    p99_pkt_ns: u64,
    conversion_yield: f64,
    evicted_pressure: u64,
) -> SloVerdict {
    let mut mask = 0u32;
    if spec.enabled {
        if p99_pkt_ns > 0 && p99_pkt_ns > spec.p99_pkt_ns_max {
            mask |= BREACH_P99;
        }
        let yield_ppm = (conversion_yield.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        if spec.yield_min_ppm > 0 && yield_ppm < spec.yield_min_ppm {
            mask |= BREACH_YIELD;
        }
        if evicted_pressure > spec.evicted_pressure_max {
            mask |= BREACH_EVICT;
        }
    }
    SloVerdict {
        ok: mask == 0,
        mask,
        p99_pkt_ns,
        conversion_yield,
        evicted_pressure,
    }
}

impl SloVerdict {
    /// Renders the verdict as the `/healthz` JSON body.
    pub fn to_json(&self, indent: &str) -> String {
        let breaches = breach_names(self.mask);
        let list = breaches
            .iter()
            .map(|b| format!("\"{b}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{indent}{{\"ok\": {}, \"breaches\": [{list}], \"p99_pkt_ns\": {}, \
             \"conversion_yield\": {:.6}, \"evicted_pressure\": {}}}",
            self.ok, self.p99_pkt_ns, self.conversion_yield, self.evicted_pressure
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(batch: u64) -> BatchObs {
        BatchObs {
            batch,
            logical_now: batch * 1000,
            yield_ppm: 900_000,
            yield_valid: true,
            degraded: false,
            evicted_pressure: 0,
            p99_pkt_ns: None,
        }
    }

    #[test]
    fn permissive_default_never_fires() {
        let mut w = SloWatchdog::new(SloSpec::default());
        for b in 0..100 {
            let mut o = obs(b);
            o.degraded = b % 2 == 0;
            o.p99_pkt_ns = Some(u64::MAX - 1);
            assert_eq!(w.evaluate(&o), 0);
        }
        assert_eq!(w.alerts(), 0);
        assert_eq!(w.evaluated(), 100);
    }

    #[test]
    fn disabled_spec_is_inert() {
        let mut w = SloWatchdog::new(SloSpec::off());
        let mut o = obs(0);
        o.yield_ppm = 0;
        assert_eq!(w.evaluate(&o), 0);
        assert_eq!(w.evaluated(), 0);
    }

    #[test]
    fn breaches_are_edge_triggered() {
        let spec = SloSpec {
            yield_min_ppm: 500_000,
            ..SloSpec::default()
        };
        let mut w = SloWatchdog::new(spec);
        let mut o = obs(0);
        o.yield_ppm = 100_000;
        assert_eq!(w.evaluate(&o), BREACH_YIELD, "rising edge fires");
        assert_eq!(w.evaluate(&o), 0, "sustained breach stays silent");
        o.yield_ppm = 900_000;
        assert_eq!(w.evaluate(&o), 0, "recovery is silent");
        o.yield_ppm = 100_000;
        assert_eq!(w.evaluate(&o), BREACH_YIELD, "re-entry fires again");
        assert_eq!(w.alerts(), 2);
        assert_eq!(w.breach_edges().1, 2);
    }

    #[test]
    fn degrade_residency_counts_consecutive_batches() {
        let spec = SloSpec {
            degrade_batches_max: 3,
            ..SloSpec::default()
        };
        let mut w = SloWatchdog::new(spec);
        for b in 0..3 {
            let mut o = obs(b);
            o.degraded = true;
            assert_eq!(w.evaluate(&o), 0, "within budget at batch {b}");
        }
        let mut o = obs(3);
        o.degraded = true;
        assert_eq!(w.evaluate(&o), BREACH_DEGRADE);
        // A clean batch resets the run.
        assert_eq!(w.evaluate(&obs(4)), 0);
        assert_eq!(w.level(), 0);
    }

    #[test]
    fn latency_check_only_when_armed() {
        let spec = SloSpec {
            p99_pkt_ns_max: 1000,
            ..SloSpec::default()
        };
        let mut w = SloWatchdog::new(spec);
        let mut o = obs(0);
        o.p99_pkt_ns = None; // Deterministic mode: wall checks unarmed.
        assert_eq!(w.evaluate(&o), 0);
        o.p99_pkt_ns = Some(5000);
        assert_eq!(w.evaluate(&o), BREACH_P99);
    }

    #[test]
    fn snapshot_verdict_and_json() {
        let spec = SloSpec {
            yield_min_ppm: 800_000,
            evicted_pressure_max: 10,
            ..SloSpec::default()
        };
        let v = evaluate_snapshot(&spec, 500, 0.75, 20);
        assert!(!v.ok);
        assert_eq!(v.mask, BREACH_YIELD | BREACH_EVICT);
        let json = v.to_json("");
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"yield\""));
        assert!(json.contains("\"evicted_pressure\""));

        let healthy = evaluate_snapshot(&spec, 500, 0.9, 3);
        assert!(healthy.ok);
        assert!(healthy.to_json("").contains("\"breaches\": []"));
    }

    #[test]
    fn merge_folds_core_tallies() {
        let spec = SloSpec {
            yield_min_ppm: 500_000,
            ..SloSpec::default()
        };
        let mut a = SloWatchdog::new(spec);
        let mut b = SloWatchdog::new(spec);
        let mut bad = obs(0);
        bad.yield_ppm = 0;
        a.evaluate(&bad);
        b.evaluate(&bad);
        a.merge(&b);
        assert_eq!(a.alerts(), 2);
        assert_eq!(a.evaluated(), 2);
        assert_eq!(a.breach_edges().1, 2);
    }
}
