//! A minimal dependency-free HTTP/1.1 listener for the live
//! observability endpoint.
//!
//! One background thread (the *control* thread — never the datapath)
//! accepts loopback connections and answers `GET` requests through a
//! caller-supplied routing closure. The engine wires `/metrics`
//! (Prometheus text exposition), `/healthz` (SLO verdict JSON), and
//! `/trace?flow=` (Perfetto span JSON) on top of this.
//!
//! Design constraints, in order:
//!
//! * **std::net only** — the workspace takes no new dependencies, and
//!   this crate keeps `#![forbid(unsafe_code)]`.
//! * **Isolated from the datapath** — the serving thread touches only
//!   the shared stats registry behind its own locks at its own pace;
//!   px-analyze R9 proves no serving function is reachable from any
//!   per-packet entry point.
//! * **Prompt shutdown** — the listener runs non-blocking with a short
//!   accept poll so dropping the [`ServeHandle`] stops the thread
//!   within one poll interval, without needing a wake-up connection.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One HTTP response from the routing closure.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 404, 503, …).
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// The catch-all `404 Not Found` response.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            content_type: "text/plain",
            body: String::from("not found\n"),
        }
    }
}

/// The routing closure: `(path, query) -> response`. `query` is the
/// raw string after `?`, if any.
pub type Handler = dyn Fn(&str, Option<&str>) -> Response + Send + Sync;

/// A running endpoint: the bound address plus the stop switch. Dropping
/// the handle (or calling [`ServeHandle::stop`]) shuts the serving
/// thread down.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-connection read/write deadline: a stalled scraper cannot wedge
/// the control thread.
const IO_TIMEOUT: Duration = Duration::from_millis(500);
/// Longest request head accepted.
const MAX_REQUEST: usize = 4096;

/// Binds `127.0.0.1:port` (0 picks a free port) and serves `handler`
/// on a background thread until the returned handle is dropped.
pub fn serve(port: u16, handler: Box<Handler>) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name(String::from("px-obs-serve"))
        .spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // One request per connection, served inline: the
                        // endpoint is a diagnostics tap, not a web server.
                        let _ = handle_connection(stream, handler.as_ref());
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        })?;
    Ok(ServeHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Reads one request head, routes it, writes one response.
fn handle_connection(mut stream: TcpStream, handler: &Handler) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        head.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST {
            break;
        }
    }
    let response = route(&head, handler);
    write_response(&mut stream, &response)
}

/// Parses the request line out of `head` and routes it. Anything that
/// is not a well-formed `GET` becomes a 400.
fn route(head: &[u8], handler: &Handler) -> Response {
    let text = String::from_utf8_lossy(head);
    let Some(request_line) = text.lines().next() else {
        return bad_request();
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return bad_request();
    };
    if method != "GET" {
        return Response {
            status: 405,
            content_type: "text/plain",
            body: String::from("only GET is supported\n"),
        };
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    handler(path, query)
}

fn bad_request() -> Response {
    Response {
        status: 400,
        content_type: "text/plain",
        body: String::from("bad request\n"),
    }
}

fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let reason = match r.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Response",
    };
    let head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        r.status,
        r.content_type,
        r.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(r.body.as_bytes())?;
    stream.flush()
}

/// A tiny client for tests and CLI smoke checks: one `GET` to a local
/// endpoint, returning `(status, body)`.
pub fn http_get(addr: SocketAddr, path_and_query: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let req =
        format!("GET {path_and_query} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    let status = buf
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or(0);
    let body = match buf.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> ServeHandle {
        serve(
            0,
            Box::new(|path, query| match path {
                "/metrics" => Response::ok("text/plain", String::from("pxgw_up 1\n")),
                "/healthz" => Response::ok("application/json", String::from("{\"ok\": true}")),
                "/echo" => Response::ok("text/plain", format!("q={}", query.unwrap_or("<none>"))),
                _ => Response::not_found(),
            }),
        )
        .expect("bind loopback")
    }

    #[test]
    fn serves_routes_and_queries() {
        let h = start();
        let (status, body) = http_get(h.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "pxgw_up 1\n");
        let (status, body) = http_get(h.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\": true"));
        let (status, body) = http_get(h.addr(), "/echo?flow=327680080").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "q=flow=327680080");
        let (status, _) = http_get(h.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        h.stop();
    }

    #[test]
    fn non_get_is_rejected_and_shutdown_is_prompt() {
        let h = start();
        let addr = h.addr();
        {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert!(buf.starts_with("HTTP/1.1 405"), "{buf}");
        }
        h.stop();
        // The port is released: a fresh bind to the same address works
        // (or connect fails) — either way the thread is gone quickly.
        assert!(TcpListener::bind(addr).is_ok() || TcpStream::connect(addr).is_err());
    }
}
