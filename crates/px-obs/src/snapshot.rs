//! Metrics export: registry snapshots rendered as Prometheus text
//! exposition format and as JSON (hand-rolled — this workspace has no
//! serde), plus the per-interval [`TimeSample`] the engine's sampler
//! thread collects.

use crate::hist::Histo64;

/// One periodic whole-engine sample taken mid-run by the sampler
/// thread. Counters are cumulative; per-interval rates come from
/// adjacent-sample deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSample {
    /// Wall nanoseconds since the sampler started.
    pub t_ns: u64,
    /// Cumulative input packets across all cores.
    pub pkts_in: u64,
    /// Cumulative input bytes across all cores.
    pub bytes_in: u64,
    /// Cumulative output packets across all cores.
    pub pkts_out: u64,
    /// Cumulative output bytes across all cores.
    pub bytes_out: u64,
    /// Conversion yield over the steady-state output so far.
    pub conversion_yield: f64,
}

/// A point-in-time metrics snapshot: named counters, gauges, and
/// histograms, assembled from the stats registry (mid-run or final).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters (`_total`-suffixed by convention).
    pub counters: Vec<(&'static str, u64)>,
    /// Labelled counter samples: `(family, label_set, value)` where
    /// `label_set` is the raw inside-the-braces text (e.g.
    /// `reason="idle"`). Consecutive entries sharing a family render
    /// under one `HELP`/`TYPE` header, per the exposition format.
    pub labelled: Vec<(&'static str, &'static str, u64)>,
    /// Point-in-time gauges.
    pub gauges: Vec<(&'static str, f64)>,
    /// Named histograms.
    pub hists: Vec<(&'static str, Histo64)>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    /// Every metric name is prefixed with `prefix_`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "# HELP {prefix}_{name} Cumulative {name} over all cores.\n"
            ));
            out.push_str(&format!("# TYPE {prefix}_{name} counter\n"));
            out.push_str(&format!("{prefix}_{name} {v}\n"));
        }
        let mut open_family: Option<&str> = None;
        for (family, labels, v) in &self.labelled {
            if open_family != Some(family) {
                out.push_str(&format!(
                    "# HELP {prefix}_{family} Cumulative {family} by label.\n"
                ));
                out.push_str(&format!("# TYPE {prefix}_{family} counter\n"));
                open_family = Some(family);
            }
            out.push_str(&format!("{prefix}_{family}{{{labels}}} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# HELP {prefix}_{name} Current {name}.\n"));
            out.push_str(&format!("# TYPE {prefix}_{name} gauge\n"));
            out.push_str(&format!("{prefix}_{name} {v}\n"));
        }
        for (name, h) in &self.hists {
            out.push_str(&format!(
                "# HELP {prefix}_{name} Log2-bucketed {name} distribution.\n"
            ));
            out.push_str(&format!("# TYPE {prefix}_{name} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets().iter().enumerate() {
                cum += c;
                let upper = Histo64::bucket_upper(i);
                out.push_str(&format!("{prefix}_{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
                if upper >= h.max() {
                    break;
                }
            }
            out.push_str(&format!(
                "{prefix}_{name}_bucket{{le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!("{prefix}_{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{prefix}_{name}_count {}\n", h.count()));
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`,
    /// and `histograms` (each histogram as count/sum/max/p50/p90/p99).
    /// `indent` is the leading indentation applied to every line.
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!("{indent}  \"counters\": {{\n"));
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            out.push_str(&format!("{indent}    \"{name}\": {v}{comma}\n"));
        }
        out.push_str(&format!("{indent}  }},\n"));
        out.push_str(&format!("{indent}  \"labelled\": {{\n"));
        for (i, (family, labels, v)) in self.labelled.iter().enumerate() {
            let comma = if i + 1 < self.labelled.len() { "," } else { "" };
            let key = format!("{family}{{{labels}}}").replace('"', "\\\"");
            out.push_str(&format!("{indent}    \"{key}\": {v}{comma}\n"));
        }
        out.push_str(&format!("{indent}  }},\n"));
        out.push_str(&format!("{indent}  \"gauges\": {{\n"));
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let comma = if i + 1 < self.gauges.len() { "," } else { "" };
            out.push_str(&format!("{indent}    \"{name}\": {v:.6}{comma}\n"));
        }
        out.push_str(&format!("{indent}  }},\n"));
        out.push_str(&format!("{indent}  \"histograms\": {{\n"));
        for (i, (name, h)) in self.hists.iter().enumerate() {
            let comma = if i + 1 < self.hists.len() { "," } else { "" };
            out.push_str(&format!(
                "{indent}    \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}{comma}\n",
                h.count(),
                h.sum(),
                h.max(),
                h.p50(),
                h.p90(),
                h.p99()
            ));
        }
        out.push_str(&format!("{indent}  }}\n"));
        out.push_str(&format!("{indent}}}"));
        out
    }
}

/// Renders a time series as a JSON array of per-sample objects, with
/// per-interval throughput derived from adjacent-sample deltas.
pub fn time_series_json(series: &[TimeSample], indent: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{indent}[\n"));
    let mut prev: Option<&TimeSample> = None;
    for (i, s) in series.iter().enumerate() {
        let (dt_ns, d_bytes) = match prev {
            Some(p) => (
                s.t_ns.saturating_sub(p.t_ns),
                s.bytes_in.saturating_sub(p.bytes_in),
            ),
            None => (s.t_ns, s.bytes_in),
        };
        let interval_bps = if dt_ns > 0 {
            d_bytes as f64 * 8.0 / (dt_ns as f64 / 1e9)
        } else {
            0.0
        };
        let comma = if i + 1 < series.len() { "," } else { "" };
        out.push_str(&format!(
            "{indent}  {{\"t_ns\": {}, \"pkts_in\": {}, \"bytes_in\": {}, \"pkts_out\": {}, \"bytes_out\": {}, \"yield\": {:.6}, \"interval_bps\": {:.1}}}{comma}\n",
            s.t_ns, s.pkts_in, s.bytes_in, s.pkts_out, s.bytes_out, s.conversion_yield, interval_bps
        ));
        prev = Some(s);
    }
    out.push_str(&format!("{indent}]"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> MetricsSnapshot {
        let mut h = Histo64::new();
        h.record(100);
        h.record(200);
        MetricsSnapshot {
            counters: vec![("pkts_in_total", 42), ("dropped_malformed_total", 0)],
            labelled: vec![
                ("flow_evictions_total", "reason=\"idle\"", 5),
                ("flow_evictions_total", "reason=\"pressure\"", 2),
                ("degrade_ladder_pkts_total", "rung=\"passthrough\"", 9),
            ],
            gauges: vec![("conversion_yield", 0.93)],
            hists: vec![("batch_ns", h)],
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = snap().to_prometheus("pxgw");
        assert!(text.contains("# TYPE pxgw_pkts_in_total counter"));
        assert!(text.contains("pxgw_pkts_in_total 42"));
        assert!(text.contains("# TYPE pxgw_conversion_yield gauge"));
        // Labelled families: one HELP/TYPE header, one sample per label
        // set, rendered between plain counters and gauges.
        assert!(text.contains("# TYPE pxgw_flow_evictions_total counter"));
        assert!(text.contains("pxgw_flow_evictions_total{reason=\"idle\"} 5"));
        assert!(text.contains("pxgw_flow_evictions_total{reason=\"pressure\"} 2"));
        assert!(
            text.contains("pxgw_degrade_ladder_pkts_total{rung=\"passthrough\"} 9"),
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE pxgw_flow_evictions_total counter")
                .count(),
            1,
            "one TYPE header per labelled family"
        );
        assert!(text.contains("# TYPE pxgw_batch_ns histogram"));
        assert!(text.contains("pxgw_batch_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pxgw_batch_ns_sum 300"));
        assert!(text.contains("pxgw_batch_ns_count 2"));
        // Bucket lines are cumulative and end at a bound >= max.
        let last_le = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=\"") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_le.contains("} 2"), "{last_le}");
    }

    #[test]
    fn json_shape() {
        let json = snap().to_json("");
        assert!(json.contains("\"pkts_in_total\": 42"));
        assert!(json.contains("\"flow_evictions_total{reason=\\\"idle\\\"}\": 5"));
        assert!(json.contains("\"conversion_yield\": 0.93"));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"p99\": "));
    }

    #[test]
    fn time_series_interval_rates() {
        let series = vec![
            TimeSample {
                t_ns: 1_000_000,
                pkts_in: 100,
                bytes_in: 125_000,
                pkts_out: 10,
                bytes_out: 90_000,
                conversion_yield: 0.5,
            },
            TimeSample {
                t_ns: 2_000_000,
                pkts_in: 300,
                bytes_in: 375_000,
                pkts_out: 30,
                bytes_out: 270_000,
                conversion_yield: 0.9,
            },
        ];
        let json = time_series_json(&series, "");
        // Second interval: 250 KB over 1 ms = 2 Gbps.
        assert!(json.contains("\"interval_bps\": 2000000000.0"), "{json}");
        assert!(json.lines().count() >= 4);
    }
}
