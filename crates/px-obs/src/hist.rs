//! Log₂-bucketed (HDR-style) fixed-size histograms.
//!
//! [`Histo64`] is a plain `Copy` value — 64 buckets plus count/sum/max
//! — so per-core workers keep one on the stack with zero sharing, and
//! the registry merges them with a loop of integer adds. Bucket `i`
//! holds values whose floor(log₂) is `i` (bucket 0 additionally holds
//! 0), giving ≤ 2× relative quantile error over the full `u64` range,
//! which is plenty for latency distributions spanning nanoseconds to
//! seconds.

/// A 64-bucket log₂ histogram of `u64` samples. `Copy`, alloc-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histo64 {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histo64 {
    fn default() -> Self {
        Histo64 {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histo64 {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: floor(log₂(v)), with 0 in bucket 0.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Records one sample. Alloc-free (px-analyze R5 audited).
    #[inline]
    pub fn record(&mut self, v: u64) {
        if let Some(b) = self.buckets.get_mut(Self::bucket_of(v)) {
            *b += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Folds `other` into `self`. Commutative and associative (the
    /// property tests in `tests/obs_props.rs` prove it), so per-core
    /// histograms can merge in any order.
    pub fn merge(&mut self, other: &Histo64) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative bucket counts, for exposition-format export.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Estimated quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket containing the ⌈q·count⌉-th smallest sample, capped
    /// at the exact max. Monotone in `q`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// One-line `count/p50/p90/p99/max` summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// The fixed set of datapath histograms every core maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSet {
    /// Wall time per processed batch (Parallel mode measurement; not
    /// part of any deterministic comparison).
    pub batch_ns: Histo64,
    /// Batch wall time divided by batch size: per-packet cost.
    pub pkt_ns: Histo64,
    /// Merge-aggregate / caravan-bundle dwell time in *logical* ns
    /// (emission timestamp − first-segment timestamp).
    pub dwell_ns: Histo64,
    /// Output packet sizes in bytes.
    pub out_bytes: Histo64,
}

impl HistSet {
    /// Folds another core's histograms into this one.
    pub fn merge(&mut self, other: &HistSet) {
        self.batch_ns.merge(&other.batch_ns);
        self.pkt_ns.merge(&other.pkt_ns);
        self.dwell_ns.merge(&other.dwell_ns);
        self.out_bytes.merge(&other.out_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_and_bounds() {
        assert_eq!(Histo64::bucket_of(0), 0);
        assert_eq!(Histo64::bucket_of(1), 0);
        assert_eq!(Histo64::bucket_of(2), 1);
        assert_eq!(Histo64::bucket_of(3), 1);
        assert_eq!(Histo64::bucket_of(4), 2);
        assert_eq!(Histo64::bucket_of(u64::MAX), 63);
        assert_eq!(Histo64::bucket_upper(0), 1);
        assert_eq!(Histo64::bucket_upper(1), 3);
        assert_eq!(Histo64::bucket_upper(2), 7);
        assert_eq!(Histo64::bucket_upper(63), u64::MAX);
    }

    /// Exhaustive bucket-edge audit: every power of two, both
    /// neighbours of every bucket boundary, 0, and `u64::MAX`. Pins the
    /// invariant that bucket `i` holds exactly `[2^i, 2^(i+1) - 1]`
    /// (with 0 folded into bucket 0) and that `bucket_upper` is the
    /// true inclusive upper edge — no off-by-one survives on either
    /// side of any boundary.
    #[test]
    fn bucket_edges_are_exhaustively_pinned() {
        assert_eq!(Histo64::bucket_of(0), 0);
        assert_eq!(Histo64::bucket_of(u64::MAX), 63);
        for i in 0..64usize {
            let p = 1u64 << i;
            // The power itself opens bucket i …
            assert_eq!(Histo64::bucket_of(p), i, "bucket_of(2^{i})");
            // … and its predecessor closes bucket i-1 (1 - 1 = 0 stays
            // in bucket 0 by the zero rule).
            if i > 0 {
                assert_eq!(Histo64::bucket_of(p - 1), i - 1, "bucket_of(2^{i}-1)");
                if i < 63 {
                    assert_eq!(Histo64::bucket_of(p + 1), i, "bucket_of(2^{i}+1)");
                }
            }
            // bucket_upper(i) is in bucket i; its successor is not.
            let upper = Histo64::bucket_upper(i);
            assert_eq!(Histo64::bucket_of(upper), i, "bucket_of(upper({i}))");
            if i < 63 {
                assert_eq!(upper, (p << 1) - 1, "upper({i}) == 2^{}-1", i + 1);
                assert_eq!(
                    Histo64::bucket_of(upper + 1),
                    i + 1,
                    "bucket_of(upper({i})+1)"
                );
            } else {
                assert_eq!(upper, u64::MAX);
            }
        }
    }

    /// Quantile interpolation pinned against a known one-sample-per-
    /// bucket distribution, plus the degenerate 0-valued and single-
    /// sample cases, plus monotonicity over a q grid.
    #[test]
    fn quantile_interpolation_is_pinned_at_boundaries() {
        // One sample at the lower edge of every bucket: 2^0 .. 2^63.
        let mut h = Histo64::new();
        for i in 0..64 {
            h.record(1u64 << i);
        }
        assert_eq!(h.count(), 64);
        // target = ceil(q * 64) picks the target-th smallest sample,
        // which lives in bucket target-1.
        assert_eq!(h.quantile(1.0 / 64.0), Histo64::bucket_upper(0));
        assert_eq!(h.quantile(0.5), Histo64::bucket_upper(31));
        assert_eq!(h.quantile(33.0 / 64.0), Histo64::bucket_upper(32));
        // The top bucket's upper edge is capped at the exact max.
        assert_eq!(h.quantile(1.0), 1u64 << 63);
        // q <= 0 clamps to the first sample, q >= 1 to the last.
        assert_eq!(h.quantile(0.0), Histo64::bucket_upper(0));

        // Monotone over a fine grid.
        let mut prev = 0u64;
        for k in 0..=100 {
            let v = h.quantile(k as f64 / 100.0);
            assert!(v >= prev, "quantile not monotone at q={}", k as f64 / 100.0);
            prev = v;
        }

        // All-zero samples: every quantile is exactly 0 (bucket 0's
        // upper edge is 1, but the max cap brings it back to 0).
        let mut z = Histo64::new();
        for _ in 0..10 {
            z.record(0);
        }
        assert_eq!(z.quantile(0.5), 0);
        assert_eq!(z.quantile(1.0), 0);

        // Single sample: every quantile is that sample's bucket upper
        // capped at the sample itself.
        let mut s = Histo64::new();
        s.record(u64::MAX);
        assert_eq!(s.quantile(0.01), u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = Histo64::new();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper 127
        }
        h.record(1_000_000); // the tail
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p90(), 127);
        assert_eq!(h.max(), 1_000_000);
        // p100 == exact max via the cap.
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert!((h.mean() - (99.0 * 100.0 + 1e6) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histo64::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), "n=0 p50=0 p90=0 p99=0 max=0");
    }

    #[test]
    fn histset_merge_folds_all_four() {
        let mut a = HistSet::default();
        a.batch_ns.record(10);
        a.out_bytes.record(9000);
        let mut b = HistSet::default();
        b.batch_ns.record(20);
        b.dwell_ns.record(5);
        a.merge(&b);
        assert_eq!(a.batch_ns.count(), 2);
        assert_eq!(a.dwell_ns.count(), 1);
        assert_eq!(a.out_bytes.count(), 1);
        assert_eq!(a.pkt_ns.count(), 0);
    }
}
