//! Property tests for the observability primitives: histogram merge is
//! commutative and associative (so per-core histograms can be folded in
//! any order without changing the aggregate), quantiles are monotone in
//! `q`, and the flight-recorder ring preserves recency ordering across
//! arbitrary wrap patterns.

use proptest::prelude::*;
use px_obs::{Event, EventKind, EventRing, Histo64};

fn build(values: &[u64]) -> Histo64 {
    let mut h = Histo64::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) == merge(b, a), field for field.
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (a, b) = (build(&xs), build(&ys));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)).
    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..48),
        ys in proptest::collection::vec(any::<u64>(), 0..48),
        zs in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging is the same as recording the concatenation.
    #[test]
    fn merge_equals_concatenated_recording(
        xs in proptest::collection::vec(any::<u64>(), 0..64),
        ys in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = build(&xs);
        merged.merge(&build(&ys));
        let mut concat = xs.clone();
        concat.extend_from_slice(&ys);
        prop_assert_eq!(merged, build(&concat));
    }

    /// quantile(q) is monotone non-decreasing in q, bounded by max.
    #[test]
    fn quantiles_are_monotone(
        xs in proptest::collection::vec(any::<u64>(), 1..128),
        // Quantiles in permille (the vendored proptest shim has no f64
        // range strategy).
        qs in proptest::collection::vec(0u64..=1000, 2..16),
    ) {
        let h = build(&xs);
        let mut sorted_q = qs.clone();
        sorted_q.sort_unstable();
        let mut prev = 0u64;
        for &permille in &sorted_q {
            let q = permille as f64 / 1000.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!(v <= h.max());
            prev = v;
        }
        // The top quantile is the exact max.
        prop_assert_eq!(h.quantile(1.0), h.max());
    }

    /// The ring's `recent(n)` always returns the true last-n pushes in
    /// push order, regardless of capacity/overflow interplay.
    #[test]
    fn ring_recent_matches_reference(
        cap in 1usize..32,
        ts in proptest::collection::vec(any::<u64>(), 0..96),
        n in 0usize..48,
    ) {
        let mut ring = EventRing::with_capacity(cap);
        for &t in &ts {
            ring.push(Event { ts: t, kind: EventKind::PktIn, ..Event::EMPTY });
        }
        let got: Vec<u64> = ring.recent(n).iter().map(|e| e.ts).collect();
        let take = n.min(ts.len().min(cap));
        let want: Vec<u64> = ts[ts.len() - take..].to_vec();
        prop_assert_eq!(got, want);
        prop_assert_eq!(ring.written(), ts.len() as u64);
    }
}
