//! Congestion control.
//!
//! [`Reno`] implements RFC 5681 with Appropriate Byte Counting (RFC 3465)
//! — the algorithm the paper's §2.1 reasons about: "the congestion window
//! increases by one maximum segment size (MSS) per acknowledgment [in slow
//! start], and in the congestion avoidance phase, the window grows by one
//! MSS per round-trip time". With ABC, growth is per *byte acknowledged*,
//! so a 9000 B MSS ramps the window 6× faster than 1500 B — the mechanism
//! behind the 2.5× sender-side gain of §5.2.
//!
//! [`Cubic`] is included as the modern default for comparison/ablation.

/// The congestion-control interface a [`crate::TcpConnection`] drives.
///
/// All quantities are in bytes. `now_ns` is simulated time.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u64;

    /// Called for every ACK that advances `snd_una` by `acked` bytes
    /// while not in recovery.
    fn on_ack(&mut self, now_ns: u64, acked: u64, rtt_ns: Option<u64>);

    /// Called when fast retransmit triggers (3 duplicate ACKs).
    /// `flight` is the number of bytes outstanding.
    fn on_fast_retransmit(&mut self, now_ns: u64, flight: u64);

    /// Called when the retransmission timer fires.
    fn on_rto(&mut self, now_ns: u64, flight: u64);

    /// Whether the sender is in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }
}

/// RFC 5681 NewReno-style congestion control with RFC 3465 ABC.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// ABC limit: at most `limit × MSS` of growth per ACK in slow start
    /// (L = 2·MSS per RFC 3465).
    abc_limit: u64,
    /// Accumulated acked bytes for congestion-avoidance growth.
    bytes_acked: u64,
}

impl Reno {
    /// Creates Reno with the standard initial window (RFC 6928: IW10).
    pub fn new(mss: u64) -> Self {
        debug_assert!(mss > 0);
        Reno {
            mss,
            cwnd: 10 * mss,
            ssthresh: u64::MAX / 2,
            abc_limit: 2 * mss,
            bytes_acked: 0,
        }
    }

    /// The connection's MSS.
    pub fn mss(&self) -> u64 {
        self.mss
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now_ns: u64, acked: u64, _rtt_ns: Option<u64>) {
        if self.cwnd < self.ssthresh {
            // Slow start with ABC: cwnd += min(acked, L).
            self.cwnd += acked.min(self.abc_limit);
        } else {
            // Congestion avoidance with byte counting: one MSS per cwnd
            // of acknowledged bytes (≈ one MSS per RTT).
            self.bytes_acked += acked;
            while self.bytes_acked >= self.cwnd {
                self.bytes_acked -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.bytes_acked = 0;
    }

    fn on_rto(&mut self, _now_ns: u64, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.bytes_acked = 0;
    }
}

/// CUBIC (RFC 9438), the Linux default — implemented as the ablation
/// comparator for the WAN experiments (the paper's testbed runs Linux
/// defaults).
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    w_max: f64,
    epoch_start_ns: Option<u64>,
    k: f64,
    /// CUBIC C constant (RFC 9438 §4.1), in segments/sec³.
    c: f64,
    beta: f64,
}

impl Cubic {
    /// Creates CUBIC with standard constants (C = 0.4, β = 0.7).
    pub fn new(mss: u64) -> Self {
        Cubic {
            mss,
            cwnd: 10 * mss,
            ssthresh: u64::MAX / 2,
            w_max: 0.0,
            epoch_start_ns: None,
            k: 0.0,
            c: 0.4,
            beta: 0.7,
        }
    }

    fn w_cubic(&self, t_secs: f64) -> f64 {
        // In segments.
        self.c * (t_secs - self.k).powi(3) + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, now_ns: u64, acked: u64, _rtt_ns: Option<u64>) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked.min(2 * self.mss);
            return;
        }
        let epoch = *self.epoch_start_ns.get_or_insert_with(|| {
            // New epoch: compute K from the current state.
            let w_max_seg = (self.w_max / self.mss as f64).max(1.0);
            let cwnd_seg = self.cwnd as f64 / self.mss as f64;
            self.k = ((w_max_seg - cwnd_seg).max(0.0) / self.c).cbrt();
            now_ns
        });
        let t = (now_ns - epoch) as f64 / 1e9;
        let target_seg = self
            .w_cubic(t)
            .max(self.cwnd as f64 / self.mss as f64 + 0.01);
        let target = (target_seg * self.mss as f64) as u64;
        // Approach the target, at most doubling per RTT-ish step.
        if target > self.cwnd {
            let inc = ((target - self.cwnd) as f64 * acked as f64 / self.cwnd as f64) as u64;
            self.cwnd += inc.min(acked);
        }
    }

    fn on_fast_retransmit(&mut self, _now_ns: u64, flight: u64) {
        self.w_max = flight as f64;
        self.ssthresh = ((flight as f64 * self.beta) as u64).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.epoch_start_ns = None;
    }

    fn on_rto(&mut self, _now_ns: u64, flight: u64) {
        self.w_max = flight as f64;
        self.ssthresh = ((flight as f64 * self.beta) as u64).max(2 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start_ns = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mss = 1500;
        let mut cc = Reno::new(mss);
        assert!(cc.in_slow_start());
        let start = cc.cwnd();
        // One RTT: ack everything in flight, one ack per 2 segments.
        let mut acked = 0;
        while acked < start {
            let chunk = (2 * mss).min(start - acked);
            cc.on_ack(0, chunk, None);
            acked += chunk;
        }
        assert_eq!(cc.cwnd(), 2 * start, "slow start doubles cwnd per RTT");
    }

    #[test]
    fn reno_ca_grows_one_mss_per_rtt() {
        let mss = 1500;
        let mut cc = Reno::new(mss);
        cc.on_fast_retransmit(0, 100 * mss); // -> CA at 50 MSS
        let w = cc.cwnd();
        assert!(!cc.in_slow_start());
        // Ack one full window.
        let mut acked = 0;
        while acked < w {
            cc.on_ack(0, mss, None);
            acked += mss;
        }
        assert_eq!(cc.cwnd(), w + mss, "CA adds one MSS per window acked");
    }

    #[test]
    fn larger_mss_ramps_proportionally_faster() {
        // The §2.1 claim: growth per RTT scales with MSS.
        let mut small = Reno::new(1500);
        let mut big = Reno::new(9000);
        small.on_fast_retransmit(0, 200 * 1500);
        big.on_fast_retransmit(0, (200.0 * 9000.0) as u64);
        let (w_s, w_b) = (small.cwnd(), big.cwnd());
        for _ in 0..100 {
            small.on_ack(0, w_s, None);
            big.on_ack(0, w_b, None);
        }
        let growth_small = small.cwnd() - w_s;
        let growth_big = big.cwnd() - w_b;
        assert_eq!(growth_big / growth_small, 6, "9000/1500 = 6× faster ramp");
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let mut cc = Reno::new(1500);
        cc.on_ack(0, 30000, None);
        cc.on_rto(0, 60000);
        assert_eq!(cc.cwnd(), 1500);
        assert_eq!(cc.ssthresh(), 30000);
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut cc = Reno::new(1500);
        cc.on_fast_retransmit(0, 100_000);
        assert_eq!(cc.cwnd(), 50_000);
        assert_eq!(cc.ssthresh(), 50_000);
        // Floor at 2 MSS.
        cc.on_fast_retransmit(0, 1000);
        assert_eq!(cc.cwnd(), 3000);
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mss = 1500u64;
        let mut cc = Cubic::new(mss);
        // Leave slow start via a loss at 100 segments in flight.
        cc.on_fast_retransmit(0, 100 * mss);
        let after_loss = cc.cwnd();
        assert!(after_loss < 100 * mss);
        // Ack steadily for simulated seconds; cwnd must grow back above
        // the post-loss value and approach/exceed w_max eventually.
        let mut now = 0u64;
        for _ in 0..4000 {
            now += 5_000_000; // 5 ms per ack
            let w = cc.cwnd();
            cc.on_ack(now, mss, None);
            assert!(cc.cwnd() >= w, "cubic never shrinks on ACK");
        }
        assert!(cc.cwnd() > after_loss);
        assert!(cc.cwnd() as f64 >= 0.95 * (100 * mss) as f64);
    }

    #[test]
    fn cubic_slow_start_grows() {
        let mut cc = Cubic::new(1500);
        let w0 = cc.cwnd();
        cc.on_ack(0, 3000, None);
        assert!(cc.cwnd() > w0);
        assert!(cc.in_slow_start());
    }
}
