//! UDP sockets for simulated hosts, including UDP_GRO-style reception and
//! PX-caravan unbundling.
//!
//! The paper modifies receiver network stacks to "interpret the PX-caravan
//! packets for UDP as UDP_GRO payload" (§5). [`UdpSocket::deliver_bundle`]
//! is that modification: one outer packet arrives, every inner datagram is
//! delivered to the application individually, boundaries intact.

use px_wire::caravan;
use px_wire::udp::UdpDatagram;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Receive-side statistics for one UDP socket.
#[derive(Debug, Clone, Default)]
pub struct UdpFlowStats {
    /// Application datagrams received (inner datagrams for caravans).
    pub datagrams: u64,
    /// Application payload bytes received.
    pub payload_bytes: u64,
    /// Caravan bundles unbundled.
    pub bundles: u64,
    /// Datagrams that arrived malformed (bad length fields, etc.).
    pub malformed: u64,
    /// Distribution of received datagram payload sizes.
    pub size_counts: BTreeMap<usize, u64>,
    /// Sent datagrams.
    pub sent: u64,
    /// Sent payload bytes.
    pub sent_bytes: u64,
}

/// A bound UDP socket on a [`crate::Host`].
#[derive(Debug)]
pub struct UdpSocket {
    /// The local port this socket is bound to.
    pub port: u16,
    /// Whether to keep received payloads (tests/examples).
    pub record: bool,
    /// Recorded payloads, in delivery order (only when `record`).
    pub received: Vec<Vec<u8>>,
    /// Statistics.
    pub stats: UdpFlowStats,
}

impl UdpSocket {
    /// Creates a socket bound to `port`.
    pub fn bind(port: u16) -> Self {
        UdpSocket {
            port,
            record: false,
            received: Vec::new(),
            stats: UdpFlowStats::default(),
        }
    }

    /// Enables payload recording.
    pub fn recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// Delivers one plain UDP datagram (header + payload), verifying its
    /// checksum against the pseudo-header — corruption anywhere on the
    /// path (including inside a caravan bundle) is caught here.
    pub fn deliver(&mut self, src: Ipv4Addr, dst: Ipv4Addr, datagram: &[u8]) {
        match UdpDatagram::new_checked(datagram) {
            Ok(dg) => {
                if !dg.verify_checksum(src, dst) {
                    self.stats.malformed += 1;
                    return;
                }
                let payload = dg.payload();
                self.stats.datagrams += 1;
                self.stats.payload_bytes += payload.len() as u64;
                *self.stats.size_counts.entry(payload.len()).or_insert(0) += 1;
                if self.record {
                    self.received.push(payload.to_vec());
                }
            }
            Err(_) => self.stats.malformed += 1,
        }
    }

    /// Delivers a PX-caravan bundle (the payload of the outer UDP): every
    /// inner datagram reaches the application individually — the UDP_GRO
    /// receive path of the paper's modified stack.
    pub fn deliver_bundle(&mut self, src: Ipv4Addr, dst: Ipv4Addr, bundle: &[u8]) {
        match caravan::split_bundle(bundle) {
            Ok(inner) => {
                self.stats.bundles += 1;
                for dg in inner {
                    self.deliver(src, dst, dg);
                }
            }
            Err(_) => self.stats.malformed += 1,
        }
    }

    /// Records an application send of `payload_len` bytes.
    pub fn note_sent(&mut self, payload_len: usize) {
        self.stats.sent += 1;
        self.stats.sent_bytes += payload_len as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::caravan::CaravanBuilder;
    use px_wire::udp::UdpRepr;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(1, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(1, 0, 0, 2);

    fn dg(payload: &[u8]) -> Vec<u8> {
        UdpRepr {
            src_port: 1111,
            dst_port: 5001,
        }
        .build_datagram(A, B, payload)
        .unwrap()
    }

    #[test]
    fn plain_delivery_counts_and_records() {
        let mut s = UdpSocket::bind(5001).recording();
        s.deliver(A, B, &dg(b"one"));
        s.deliver(A, B, &dg(b"four"));
        assert_eq!(s.stats.datagrams, 2);
        assert_eq!(s.stats.payload_bytes, 7);
        assert_eq!(s.received, vec![b"one".to_vec(), b"four".to_vec()]);
        assert_eq!(s.stats.size_counts[&3], 1);
    }

    #[test]
    fn bundle_delivery_preserves_boundaries_and_order() {
        let mut b = CaravanBuilder::new(9000);
        b.push(&dg(b"alpha")).unwrap();
        b.push(&dg(b"beta")).unwrap();
        b.push(&dg(b"gamma")).unwrap();
        let bundle = b.finish();
        let mut s = UdpSocket::bind(5001).recording();
        s.deliver_bundle(A, B, &bundle);
        assert_eq!(s.stats.bundles, 1);
        assert_eq!(s.stats.datagrams, 3);
        assert_eq!(
            s.received,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
    }

    #[test]
    fn malformed_input_counted_not_panicking() {
        let mut s = UdpSocket::bind(5001);
        s.deliver(A, B, &[1, 2, 3]); // truncated header
        let mut junk = dg(b"x");
        junk[4..6].copy_from_slice(&1u16.to_be_bytes()); // bad length
        s.deliver_bundle(A, B, &junk);
        assert_eq!(s.stats.malformed, 2);
        assert_eq!(s.stats.datagrams, 0);
    }

    #[test]
    fn corrupted_datagram_rejected_by_checksum() {
        let mut s = UdpSocket::bind(5001).recording();
        let mut d = dg(b"payload-bytes");
        let n = d.len() - 3;
        d[n] ^= 0x40; // flip a payload bit
        s.deliver(A, B, &d);
        assert_eq!(s.stats.malformed, 1);
        assert!(s.received.is_empty());
    }
}
