//! The TCP connection state machine.
//!
//! A [`TcpConnection`] is a *pure* state machine: packets in, packets out,
//! no simulator types. The [`crate::Host`] node drives it from the event
//! loop. It implements the pieces the PacketExpress evaluation depends on:
//!
//! * handshake with **MSS negotiation** — the sender's segment size is
//!   `min(own MTU − 40, peer-advertised MSS)`, which is exactly the value
//!   PXGW manipulates;
//! * RFC 5681/3465 congestion control (pluggable, Reno or CUBIC);
//! * RFC 6298 RTO with Karn's rule and exponential backoff;
//! * fast retransmit / NewReno-style recovery on 3 duplicate ACKs;
//! * window scaling, delayed ACKs, FIN teardown.
//!
//! Payload bytes are the deterministic stream pattern
//! ([`crate::pattern_byte`]); receivers verify every in-order byte, so the
//! whole test suite doubles as an end-to-end integrity check on anything
//! (PXGW!) that rewrites packets in flight.

use crate::cc::{CongestionControl, Cubic, Reno};
use crate::{fill_pattern, verify_pattern};
use px_wire::ipv4::Ipv4Repr;
use px_wire::tcp::{SeqNum, TcpFlags, TcpOption, TcpRepr, TcpSegment};
use px_wire::IpProtocol;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Which congestion-control algorithm a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// RFC 5681 + ABC.
    Reno,
    /// RFC 9438.
    Cubic,
}

/// Connection configuration.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Local address and port.
    pub local: (Ipv4Addr, u16),
    /// Remote address and port.
    pub remote: (Ipv4Addr, u16),
    /// Local interface MTU; our advertised MSS is `mtu − 40`.
    pub mtu: usize,
    /// Total bytes this side will send (`u64::MAX` = unlimited).
    pub tx_total: u64,
    /// Congestion control algorithm.
    pub cc: CcAlgo,
    /// Our window-scale shift (RFC 7323).
    pub window_scale: u8,
    /// Receive window we advertise, in bytes (pre-scaling).
    pub rcv_window: u32,
    /// Minimum RTO in nanoseconds (Linux default: 200 ms).
    pub min_rto_ns: u64,
    /// Delayed-ACK timeout in nanoseconds (0 = ACK immediately).
    pub delack_ns: u64,
    /// Build TSO super-segments (up to 64 KB) instead of MSS-sized ones.
    /// The host NIC model splits them to wire MTU on transmit.
    pub tso: bool,
    /// Record received payload bytes (for content assertions in tests).
    pub record_rx: bool,
}

impl ConnConfig {
    /// A sensible default configuration for the given endpoints and MTU.
    pub fn new(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), mtu: usize) -> Self {
        ConnConfig {
            local,
            remote,
            mtu,
            tx_total: 0,
            cc: CcAlgo::Reno,
            window_scale: 10,
            rcv_window: 64 << 20,
            min_rto_ns: 200_000_000,
            delack_ns: 40_000_000,
            tso: false,
            record_rx: false,
        }
    }

    /// Sets the bytes to transmit.
    pub fn sending(mut self, bytes: u64) -> Self {
        self.tx_total = bytes;
        self
    }
}

/// TCP connection states (RFC 793 §3.2, TIME-WAIT collapsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Passive open, waiting for SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We sent FIN, awaiting its ACK.
    FinWait1,
    /// Our FIN is acked, awaiting peer FIN.
    FinWait2,
    /// Peer sent FIN first; we still may send.
    CloseWait,
    /// We sent FIN after CloseWait.
    LastAck,
    /// Both FINs crossed.
    Closing,
    /// Fully closed.
    Closed,
}

/// Aggregate counters a connection maintains.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnStats {
    /// Bytes the peer has acknowledged (sender goodput).
    pub bytes_acked: u64,
    /// In-order bytes received.
    pub bytes_received: u64,
    /// Data segments sent (excluding retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments (fast + timeout).
    pub retransmits: u64,
    /// RTO firings.
    pub rtos: u64,
    /// Fast retransmits.
    pub fast_retransmits: u64,
    /// Payload bytes that failed pattern verification.
    pub integrity_errors: u64,
    /// When the connection reached Established (ns), if ever.
    pub established_at_ns: Option<u64>,
}

const TSO_MAX: usize = 65536 - 120; // leave room for headers within u16 IP len

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct TcpConnection {
    /// Configuration this connection was created with.
    pub cfg: ConnConfig,
    state: ConnState,
    cc: Box<dyn CongestionControl>,

    // --- sender ---
    iss: u32,
    snd_una: u64,
    snd_nxt: u64,
    fin_sent: bool,
    fin_acked: bool,
    peer_mss: usize,
    peer_wscale: u8,
    peer_wnd: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    /// SACK scoreboard: disjoint, merged (stream offset → length) ranges
    /// the peer has reported holding above `snd_una`.
    sacked: BTreeMap<u64, u64>,
    sacked_bytes: u64,
    /// Hole-retransmission cursor for the current recovery episode.
    rtx_next: u64,

    // --- RTT/RTO (RFC 6298) ---
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    rto_ns: u64,
    rto_backoff: u32,
    rto_deadline: Option<u64>,
    timing: Option<(u64, u64)>, // (stream offset end, sent_at)

    // --- receiver ---
    irs: Option<u32>,
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Vec<u8>>, // offset -> payload (or empty Vec when not recording)
    ooo_len: BTreeMap<u64, usize>,
    fin_received_at: Option<u64>, // stream offset of peer FIN
    pending_ack_segs: u32,
    ack_deadline: Option<u64>,
    rx_record: Vec<u8>,

    ip_ident: u16,
    app_closed: bool,
    syn_sent_at: u64,
    /// Path-MTU clamp learned from ICMP fragmentation-needed (RFC 1191):
    /// caps the effective MSS below the negotiated value.
    path_mtu_clamp: Option<usize>,
    /// Counters.
    pub stats: ConnStats,
}

impl TcpConnection {
    /// Creates a connection in `Listen` (passive) state.
    pub fn listen(cfg: ConnConfig, iss: u32) -> Self {
        Self::new_inner(cfg, iss, ConnState::Listen)
    }

    /// Creates a connection ready for an active open (call [`Self::open`]).
    pub fn client(cfg: ConnConfig, iss: u32) -> Self {
        Self::new_inner(cfg, iss, ConnState::Closed)
    }

    fn new_inner(cfg: ConnConfig, iss: u32, state: ConnState) -> Self {
        let own_mss = cfg.mtu.saturating_sub(40).max(64);
        let cc: Box<dyn CongestionControl> = match cfg.cc {
            CcAlgo::Reno => Box::new(Reno::new(own_mss as u64)),
            CcAlgo::Cubic => Box::new(Cubic::new(own_mss as u64)),
        };
        TcpConnection {
            cfg,
            state,
            cc,
            iss,
            snd_una: 0,
            snd_nxt: 0,
            fin_sent: false,
            fin_acked: false,
            peer_mss: own_mss, // refined at handshake
            peer_wscale: 0,
            peer_wnd: 65535,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            sacked: BTreeMap::new(),
            sacked_bytes: 0,
            rtx_next: 0,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto_ns: 1_000_000_000,
            rto_backoff: 1,
            rto_deadline: None,
            timing: None,
            irs: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_len: BTreeMap::new(),
            fin_received_at: None,
            pending_ack_segs: 0,
            ack_deadline: None,
            rx_record: Vec::new(),
            ip_ident: iss as u16,
            app_closed: false,
            syn_sent_at: 0,
            path_mtu_clamp: None,
            stats: ConnStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the connection has fully closed.
    pub fn is_closed(&self) -> bool {
        self.state == ConnState::Closed
    }

    /// Our advertised MSS (own MTU − 40).
    pub fn own_mss(&self) -> usize {
        self.cfg.mtu.saturating_sub(40).max(64)
    }

    /// The segment size actually in use after negotiation:
    /// `min(own MSS, peer MSS)` — the value PXGW's rewriting raises —
    /// further capped by any RFC 1191 path-MTU clamp.
    pub fn effective_mss(&self) -> usize {
        let negotiated = self.own_mss().min(self.peer_mss);
        match self.path_mtu_clamp {
            Some(mtu) => negotiated.min(mtu.saturating_sub(40).max(64)),
            None => negotiated,
        }
    }

    /// RFC 1191 reaction to an ICMP *fragmentation needed*: clamp the
    /// effective MSS to the reported next-hop MTU and retransmit from
    /// the cumulative ACK so oversized in-flight segments are replaced.
    pub fn clamp_path_mtu(&mut self, now: u64, next_hop_mtu: usize) -> Vec<Vec<u8>> {
        if next_hop_mtu < 68 {
            return vec![]; // implausible (attack or garbage)
        }
        let current = self.path_mtu_clamp.unwrap_or(usize::MAX);
        if next_hop_mtu >= current {
            return vec![]; // stale/duplicate report
        }
        self.path_mtu_clamp = Some(next_hop_mtu);
        // Everything beyond snd_una may have been dropped at the narrow
        // hop; rewind and resend at the new segment size.
        self.snd_nxt = self.snd_una;
        self.sacked.clear();
        self.sacked_bytes = 0;
        self.rtx_next = self.snd_una;
        self.in_recovery = false;
        self.pump(now)
    }

    /// The peer's advertised MSS (what arrived in its SYN, possibly
    /// rewritten by a PXGW on the path).
    pub fn peer_mss(&self) -> usize {
        self.peer_mss
    }

    /// Recorded received bytes (only when `record_rx`).
    pub fn received_data(&self) -> &[u8] {
        &self.rx_record
    }

    /// Current congestion window, bytes.
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Marks the application side closed; a FIN goes out once all data is
    /// delivered.
    pub fn close(&mut self, now: u64) -> Vec<Vec<u8>> {
        self.app_closed = true;
        self.pump(now)
    }

    /// Stops producing data immediately (iPerf's duration elapsing): caps
    /// the stream at what has already been sent and closes.
    pub fn stop_sending(&mut self, now: u64) -> Vec<Vec<u8>> {
        if self.cfg.tx_total > self.snd_nxt {
            self.cfg.tx_total = self.snd_nxt;
        }
        self.app_closed = true;
        self.pump(now)
    }

    // ------------------------------------------------------------------
    // Packet construction
    // ------------------------------------------------------------------

    fn wire_seq(&self, off: u64) -> SeqNum {
        SeqNum(self.iss.wrapping_add(1).wrapping_add(off as u32))
    }

    /// Maps a wire sequence number to a receive-stream offset, computed
    /// relative to `rcv_nxt` so streams longer than 2^31 bytes never
    /// overflow the 32-bit wire space diff.
    fn rx_stream_off(&self, seq: SeqNum) -> i64 {
        let irs = self.irs.expect("established");
        let ref_wire = SeqNum(irs.wrapping_add(1).wrapping_add(self.rcv_nxt as u32));
        self.rcv_nxt as i64 + seq.diff(ref_wire)
    }

    /// Maps a wire sequence number to a send-stream offset, relative to
    /// `snd_una` (same wrap-safety argument).
    fn tx_stream_off(&self, seq: SeqNum) -> i64 {
        let ref_wire = self.wire_seq(self.snd_una);
        self.snd_una as i64 + seq.diff(ref_wire)
    }

    fn wire_ack(&self) -> SeqNum {
        match self.irs {
            Some(irs) => {
                let fin_extra = match self.fin_received_at {
                    Some(f) if self.rcv_nxt >= f => 1,
                    _ => 0,
                };
                SeqNum(
                    irs.wrapping_add(1)
                        .wrapping_add(self.rcv_nxt as u32)
                        .wrapping_add(fin_extra),
                )
            }
            None => SeqNum(0),
        }
    }

    fn adv_window(&self) -> u16 {
        let w = (self.cfg.rcv_window as u64) >> self.cfg.window_scale;
        w.min(65535) as u16
    }

    fn build(
        &mut self,
        flags: TcpFlags,
        seq: SeqNum,
        payload: &[u8],
        opts: Vec<TcpOption>,
    ) -> Vec<u8> {
        let repr = TcpRepr {
            src_port: self.cfg.local.1,
            dst_port: self.cfg.remote.1,
            seq,
            ack: if flags.ack {
                self.wire_ack()
            } else {
                SeqNum(0)
            },
            flags,
            window: self.adv_window(),
            options: opts,
        };
        let seg = repr.build_segment(self.cfg.local.0, self.cfg.remote.0, payload);
        let mut ip = Ipv4Repr::new(
            self.cfg.local.0,
            self.cfg.remote.0,
            IpProtocol::Tcp,
            seg.len(),
        );
        ip.ident = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1);
        // Endpoint TCP sets DF (PMTUD behaviour); PXGW-translated paths
        // rely on MSS rewriting rather than fragmentation for TCP.
        ip.dont_frag = true;
        ip.build_packet(&seg).expect("segment within IP limits")
    }

    fn syn_options(&self) -> Vec<TcpOption> {
        vec![
            TcpOption::Mss(self.own_mss() as u16),
            TcpOption::WindowScale(self.cfg.window_scale),
            TcpOption::SackPermitted,
        ]
    }

    /// Active open: emits the SYN.
    pub fn open(&mut self, now: u64) -> Vec<Vec<u8>> {
        assert_eq!(self.state, ConnState::Closed, "open() on a used connection");
        self.state = ConnState::SynSent;
        self.syn_sent_at = now;
        let syn = self.build(TcpFlags::SYN, SeqNum(self.iss), &[], self.syn_options());
        self.arm_rto(now);
        vec![syn]
    }

    // ------------------------------------------------------------------
    // RTO machinery
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, now: u64) {
        let rto = self.rto_ns.saturating_mul(u64::from(self.rto_backoff));
        self.rto_deadline = Some(now.saturating_add(rto));
    }

    fn disarm_rto(&mut self) {
        self.rto_deadline = None;
    }

    fn rtt_sample(&mut self, sample_ns: u64) {
        const ALPHA: f64 = 1.0 / 8.0;
        const BETA: f64 = 1.0 / 4.0;
        let r = sample_ns as f64;
        match self.srtt_ns {
            None => {
                self.srtt_ns = Some(r);
                self.rttvar_ns = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ns = (1.0 - BETA) * self.rttvar_ns + BETA * (srtt - r).abs();
                self.srtt_ns = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        let rto = self.srtt_ns.unwrap() + (4.0 * self.rttvar_ns).max(1e6);
        self.rto_ns = (rto as u64).clamp(self.cfg.min_rto_ns, 60_000_000_000);
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Outstanding bytes, RFC 6675 "pipe"-style: what was sent but is
    /// neither cumulatively acked nor SACKed.
    fn flight(&self) -> u64 {
        (self.snd_nxt - self.snd_una).saturating_sub(self.sacked_bytes)
    }

    /// Inserts a SACKed range (merging neighbours) into the scoreboard.
    fn sack_insert(&mut self, mut start: u64, mut end: u64) {
        start = start.max(self.snd_una);
        end = end.min(self.snd_nxt);
        if start >= end {
            return;
        }
        // Absorb every overlapping/adjacent existing range.
        let overlapping: Vec<u64> = self
            .sacked
            .range(..=end)
            .filter(|(&o, &l)| o + l >= start)
            .map(|(&o, _)| o)
            .collect();
        for o in overlapping {
            let l = self.sacked.remove(&o).expect("present");
            self.sacked_bytes -= l;
            start = start.min(o);
            end = end.max(o + l);
        }
        self.sacked.insert(start, end - start);
        self.sacked_bytes += end - start;
    }

    /// Drops scoreboard state at or below `snd_una`.
    fn sack_prune(&mut self) {
        let una = self.snd_una;
        let stale: Vec<u64> = self.sacked.range(..una).map(|(&o, _)| o).collect();
        for o in stale {
            let l = self.sacked.remove(&o).expect("present");
            self.sacked_bytes -= l;
            if o + l > una {
                // Partially covered: keep the tail.
                self.sacked.insert(una, o + l - una);
                self.sacked_bytes += o + l - una;
            }
        }
        self.rtx_next = self.rtx_next.max(una);
    }

    /// SACK-based loss repair: retransmits up to `budget` un-SACKed
    /// segments between the cursor and the *highest SACKed byte* — data
    /// above the last SACK block is merely in flight, not lost
    /// (RFC 6675's IsLost condition, simplified).
    fn retransmit_holes(&mut self, now: u64, budget: usize, out: &mut Vec<Vec<u8>>) {
        let mss = self.effective_mss() as u64;
        let high_sacked = self
            .sacked
            .last_key_value()
            .map(|(&o, &l)| o + l)
            .unwrap_or(self.snd_una);
        let limit = self.recover.min(high_sacked);
        let mut cursor = self.rtx_next.max(self.snd_una);
        let mut sent = 0usize;
        while sent < budget && cursor < limit {
            // Skip any SACKed range covering the cursor.
            if let Some((&o, &l)) = self.sacked.range(..=cursor).next_back() {
                if cursor < o + l {
                    cursor = o + l;
                    continue;
                }
            }
            // The hole ends at the next SACKed block or the repair limit.
            let next_sacked = self
                .sacked
                .range(cursor..)
                .next()
                .map(|(&o, _)| o)
                .unwrap_or(limit);
            let end = (cursor + mss).min(next_sacked).min(limit);
            if end <= cursor {
                break;
            }
            let len = (end - cursor) as usize;
            let mut payload = vec![0u8; len];
            fill_pattern(cursor, &mut payload);
            let mut flags = TcpFlags::ACK;
            flags.psh = true;
            let seq = self.wire_seq(cursor);
            out.push(self.build(flags, seq, &payload, vec![]));
            self.stats.retransmits += 1;
            self.timing = None; // Karn's rule
            sent += 1;
            cursor = end;
        }
        self.rtx_next = cursor;
        if sent > 0 {
            self.arm_rto(now);
        }
    }

    fn sender_done(&self) -> bool {
        self.snd_nxt >= self.cfg.tx_total
    }

    /// RFC 3042: one new MSS-sized segment beyond cwnd on an early
    /// duplicate ACK (bounded by the peer window and available data).
    fn limited_transmit(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mss = self.effective_mss();
        if self.snd_nxt >= self.cfg.tx_total {
            return vec![];
        }
        if self.snd_nxt - self.snd_una + mss as u64 > self.peer_wnd {
            return vec![];
        }
        let remaining = (self.cfg.tx_total - self.snd_nxt).min(mss as u64) as usize;
        let off = self.snd_nxt;
        let mut payload = vec![0u8; remaining];
        fill_pattern(off, &mut payload);
        let mut flags = TcpFlags::ACK;
        flags.psh = true;
        let seq = self.wire_seq(off);
        let pkt = self.build(flags, seq, &payload, vec![]);
        self.snd_nxt += remaining as u64;
        self.stats.segments_sent += 1;
        self.arm_rto(now);
        vec![pkt]
    }

    /// Sends whatever the window currently allows. Returns wire packets.
    fn pump(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if !matches!(
            self.state,
            ConnState::Established | ConnState::CloseWait | ConnState::FinWait1
        ) {
            return out;
        }
        let wnd = self.cc.cwnd().min(self.peer_wnd.max(1));
        let mss = self.effective_mss();
        while self.snd_nxt < self.cfg.tx_total && self.flight() < wnd {
            let avail = (wnd - self.flight()) as usize;
            let remaining = (self.cfg.tx_total - self.snd_nxt).min(usize::MAX as u64) as usize;
            let chunk_cap = if self.cfg.tso {
                // Super-segment: a whole number of MSS units, up to 64 KB.
                let cap = TSO_MAX.min(avail).min(remaining);
                if cap >= mss {
                    (cap / mss) * mss
                } else {
                    cap
                }
            } else {
                mss.min(avail).min(remaining)
            };
            if chunk_cap == 0 {
                break;
            }
            // Don't send a runt just because the window has a sliver left,
            // unless it finishes the stream (simplified Nagle).
            if chunk_cap < mss && (remaining > chunk_cap) {
                break;
            }
            let off = self.snd_nxt;
            let mut payload = vec![0u8; chunk_cap];
            fill_pattern(off, &mut payload);
            let mut flags = TcpFlags::ACK;
            flags.psh = true;
            let seq = self.wire_seq(off);
            let pkt = self.build(flags, seq, &payload, vec![]);
            out.push(pkt);
            self.snd_nxt += chunk_cap as u64;
            self.stats.segments_sent += 1;
            if self.timing.is_none() {
                self.timing = Some((self.snd_nxt, now));
            }
        }
        // FIN once everything is sent and the app closed (or tx_total is
        // finite and fully sent).
        if self.app_closed && self.sender_done() && !self.fin_sent && self.snd_una == self.snd_nxt {
            self.fin_sent = true;
            let mut flags = TcpFlags::ACK;
            flags.fin = true;
            let seq = self.wire_seq(self.snd_nxt);
            let pkt = self.build(flags, seq, &[], vec![]);
            out.push(pkt);
            self.state = match self.state {
                ConnState::CloseWait => ConnState::LastAck,
                _ => ConnState::FinWait1,
            };
        }
        if (!out.is_empty() || self.flight() > 0) && self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        out
    }

    /// Retransmits one segment starting at `snd_una`.
    fn retransmit_head(&mut self, now: u64) -> Option<Vec<u8>> {
        if self.state == ConnState::SynSent {
            let syn = self.build(TcpFlags::SYN, SeqNum(self.iss), &[], self.syn_options());
            return Some(syn);
        }
        if self.fin_sent && self.snd_una == self.snd_nxt {
            // Only the FIN is outstanding.
            let mut flags = TcpFlags::ACK;
            flags.fin = true;
            let seq = self.wire_seq(self.snd_nxt);
            return Some(self.build(flags, seq, &[], vec![]));
        }
        if self.snd_una >= self.snd_nxt {
            return None;
        }
        let off = self.snd_una;
        let len = self.effective_mss().min((self.snd_nxt - off) as usize);
        let mut payload = vec![0u8; len];
        fill_pattern(off, &mut payload);
        let mut flags = TcpFlags::ACK;
        flags.psh = true;
        let seq = self.wire_seq(off);
        self.timing = None; // Karn's rule
        self.stats.retransmits += 1;
        let _ = now;
        Some(self.build(flags, seq, &payload, vec![]))
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Handles one TCP segment (the IP payload). Returns packets to emit.
    pub fn on_segment(&mut self, now: u64, seg_bytes: &[u8]) -> Vec<Vec<u8>> {
        let Ok(seg) = TcpSegment::new_checked(seg_bytes) else {
            return vec![];
        };
        let Ok(repr) = TcpRepr::parse(&seg) else {
            return vec![];
        };
        let payload = seg.payload();
        let mut out = Vec::new();

        match self.state {
            ConnState::Listen => {
                if repr.flags.syn && !repr.flags.ack {
                    self.irs = Some(repr.seq.0);
                    if let Some(mss) = repr.mss() {
                        self.peer_mss = usize::from(mss);
                    }
                    self.peer_wscale = repr
                        .options
                        .iter()
                        .find_map(|o| match o {
                            TcpOption::WindowScale(s) => Some(*s),
                            _ => None,
                        })
                        .unwrap_or(0);
                    self.peer_wnd = u64::from(repr.window) << self.peer_wscale;
                    self.state = ConnState::SynRcvd;
                    let synack =
                        self.build(TcpFlags::SYN_ACK, SeqNum(self.iss), &[], self.syn_options());
                    out.push(synack);
                    self.arm_rto(now);
                }
                return out;
            }
            ConnState::SynSent => {
                if repr.flags.syn && repr.flags.ack {
                    // Validate the ack of our SYN.
                    if repr.ack != SeqNum(self.iss.wrapping_add(1)) {
                        return out;
                    }
                    self.irs = Some(repr.seq.0);
                    if let Some(mss) = repr.mss() {
                        self.peer_mss = usize::from(mss);
                    }
                    self.peer_wscale = repr
                        .options
                        .iter()
                        .find_map(|o| match o {
                            TcpOption::WindowScale(s) => Some(*s),
                            _ => None,
                        })
                        .unwrap_or(0);
                    self.peer_wnd = u64::from(repr.window) << self.peer_wscale;
                    self.state = ConnState::Established;
                    self.stats.established_at_ns = Some(now);
                    self.disarm_rto();
                    self.rto_backoff = 1;
                    // Handshake RTT sample.
                    self.rtt_sample(now.saturating_sub(self.syn_sent_at).max(1));
                    let ack = self.build(TcpFlags::ACK, self.wire_seq(0), &[], vec![]);
                    out.push(ack);
                    out.extend(self.pump(now));
                }
                return out;
            }
            ConnState::SynRcvd => {
                if repr.flags.rst {
                    self.state = ConnState::Closed;
                    self.disarm_rto();
                    return out;
                }
                if repr.flags.ack && repr.ack == SeqNum(self.iss.wrapping_add(1)) {
                    self.state = ConnState::Established;
                    self.stats.established_at_ns = Some(now);
                    self.disarm_rto();
                    self.rto_backoff = 1;
                    out.extend(self.pump(now));
                    // Fall through to process any piggybacked data below.
                } else if !repr.flags.syn {
                    return out;
                }
            }
            ConnState::Closed => return out,
            _ => {}
        }

        if repr.flags.rst {
            self.state = ConnState::Closed;
            self.disarm_rto();
            self.ack_deadline = None;
            return out;
        }

        // --- ACK processing (sender side) ---
        if repr.flags.ack {
            self.peer_wnd = u64::from(repr.window) << self.peer_wscale;
            // Ingest SACK blocks into the scoreboard.
            for opt in &repr.options {
                if let TcpOption::Sack(blocks) = opt {
                    for &(s, e) in blocks {
                        let (so, eo) = (self.tx_stream_off(s), self.tx_stream_off(e));
                        if so >= 0 && eo > so {
                            self.sack_insert(so as u64, eo as u64);
                        }
                    }
                }
            }
            // Wire ack relative to snd_una, tolerant of 32-bit wrap.
            let una_wire = self.wire_seq(self.snd_una);
            let delta = repr.ack.diff(una_wire);
            if delta > 0 {
                let mut advance = delta as u64;
                let flight_total = self.snd_nxt - self.snd_una;
                // FIN occupies one sequence number.
                let fin_covered = self.fin_sent && advance > flight_total;
                if fin_covered {
                    advance -= 1;
                    self.fin_acked = true;
                }
                if advance > flight_total {
                    if self.fin_sent {
                        advance = flight_total;
                    } else {
                        // The ACK covers data beyond snd_nxt: an RTO
                        // rewound the send pointer (go-back-N) but the
                        // original transmissions arrived after all. Jump
                        // forward instead of resending what the receiver
                        // already holds.
                        self.snd_nxt = self.snd_una + advance;
                    }
                }
                self.snd_una += advance;
                self.sack_prune();
                self.stats.bytes_acked = self.snd_una;
                self.dup_acks = 0;
                self.rto_backoff = 1;
                // RTT sample.
                if let Some((end, sent_at)) = self.timing {
                    if self.snd_una >= end {
                        self.rtt_sample(now.saturating_sub(sent_at).max(1));
                        self.timing = None;
                    }
                }
                if self.in_recovery {
                    if self.snd_una >= self.recover {
                        self.in_recovery = false;
                    } else {
                        // Partial ack: repair further holes (SACK-guided).
                        self.retransmit_holes(now, 2, &mut out);
                    }
                } else if advance > 0 {
                    self.cc.on_ack(now, advance, None);
                }
                if self.flight() == 0 && (!self.fin_sent || self.fin_acked) {
                    self.disarm_rto();
                } else {
                    self.arm_rto(now);
                }
                if fin_covered || self.fin_acked {
                    self.state = match self.state {
                        ConnState::FinWait1 => ConnState::FinWait2,
                        ConnState::LastAck => ConnState::Closed,
                        ConnState::Closing => ConnState::Closed,
                        s => s,
                    };
                    if self.state == ConnState::Closed {
                        self.disarm_rto();
                        self.ack_deadline = None;
                    }
                }
            } else if delta == 0 && payload.is_empty() && !repr.flags.syn && !repr.flags.fin {
                // Duplicate ACK. Count it as a loss signal only when it
                // carries SACK blocks — a real hole means the receiver
                // holds out-of-order data and reports it (RFC 2018). A
                // bare duplicate number without SACK is the signature of
                // *duplicate data* (e.g. a spurious retransmission), and
                // reacting to it creates retransmission storms.
                let has_sack = repr
                    .options
                    .iter()
                    .any(|o| matches!(o, TcpOption::Sack(b) if !b.is_empty()));
                if self.snd_nxt > self.snd_una && has_sack {
                    self.dup_acks += 1;
                    if self.dup_acks < 3 && !self.in_recovery {
                        // RFC 3042 limited transmit: send one new segment
                        // per early duplicate ACK to keep the ACK clock
                        // alive — without it, small windows (common at
                        // jumbo MSS) never produce the third dupack and
                        // fall back to a full RTO.
                        out.extend(self.limited_transmit(now));
                    }
                    if self.dup_acks == 3 && !self.in_recovery {
                        self.in_recovery = true;
                        self.recover = self.snd_nxt;
                        self.rtx_next = self.snd_una;
                        self.cc.on_fast_retransmit(now, self.flight());
                        self.stats.fast_retransmits += 1;
                        self.retransmit_holes(now, 2, &mut out);
                    } else if self.in_recovery {
                        // Each duplicate ACK lets us repair more holes.
                        self.retransmit_holes(now, 2, &mut out);
                    }
                }
            }
        }

        // --- data reception ---
        if !payload.is_empty() && self.irs.is_some() {
            let off = self.rx_stream_off(repr.seq);
            // Judge orderliness against rcv_nxt *before* ingest moves it.
            let in_order = off >= 0 && (off as u64) == self.rcv_nxt;
            if off >= 0 {
                self.ingest(off as u64, payload);
            }
            // ACK policy.
            self.pending_ack_segs += 1;
            let out_of_order = !in_order || !self.ooo_len.is_empty();
            let must_ack_now = out_of_order
                || self.pending_ack_segs >= 2
                || repr.flags.fin
                || self.cfg.delack_ns == 0;
            if must_ack_now {
                out.push(self.make_ack());
            } else if self.ack_deadline.is_none() {
                self.ack_deadline = Some(now + self.cfg.delack_ns);
            }
        }

        // --- FIN reception ---
        if repr.flags.fin {
            if self.irs.is_some() {
                let fin_off = self.rx_stream_off(repr.seq) + payload.len() as i64;
                if fin_off >= 0 {
                    self.fin_received_at = Some(fin_off as u64);
                }
            }
            if self.fin_received_at == Some(self.rcv_nxt) {
                out.push(self.make_ack());
                self.state = match self.state {
                    ConnState::Established => ConnState::CloseWait,
                    ConnState::FinWait1 => ConnState::Closing,
                    ConnState::FinWait2 => ConnState::Closed,
                    s => s,
                };
                if self.state == ConnState::Closed {
                    self.disarm_rto();
                    self.ack_deadline = None;
                }
                // An iperf-style receiver with nothing to send closes too.
                if self.state == ConnState::CloseWait && self.sender_done() {
                    self.app_closed = true;
                }
            }
        }

        out.extend(self.pump(now));
        out
    }

    fn make_ack(&mut self) -> Vec<u8> {
        self.pending_ack_segs = 0;
        self.ack_deadline = None;
        let seq = self.wire_seq(self.snd_nxt);
        let opts = match (self.irs, self.ooo_len.is_empty()) {
            (Some(irs), false) => {
                // RFC 2018: report out-of-order data so the sender can
                // repair exactly the holes (merge adjacent ranges, send
                // up to 3 blocks).
                let base = irs.wrapping_add(1);
                let mut blocks: Vec<(u64, u64)> = Vec::new();
                for (&off, &len) in &self.ooo_len {
                    match blocks.last_mut() {
                        Some((_, e)) if *e >= off => *e = (*e).max(off + len as u64),
                        _ => blocks.push((off, off + len as u64)),
                    }
                }
                let sack = blocks
                    .into_iter()
                    .take(3)
                    .map(|(s, e)| {
                        (
                            SeqNum(base.wrapping_add(s as u32)),
                            SeqNum(base.wrapping_add(e as u32)),
                        )
                    })
                    .collect();
                vec![TcpOption::Sack(sack)]
            }
            _ => vec![],
        };
        self.build(TcpFlags::ACK, seq, &[], opts)
    }

    fn ingest(&mut self, off: u64, payload: &[u8]) {
        let end = off + payload.len() as u64;
        if end <= self.rcv_nxt {
            return; // complete duplicate
        }
        // Trim the already-received prefix.
        let (off, payload) = if off < self.rcv_nxt {
            let skip = (self.rcv_nxt - off) as usize;
            (self.rcv_nxt, &payload[skip..])
        } else {
            (off, payload)
        };
        // Verify against the deterministic stream pattern.
        if let Some(err_at) = verify_pattern(off, payload) {
            // Tests that send literal app data disable pattern checking by
            // using record mode; flag otherwise.
            if !self.cfg.record_rx {
                self.stats.integrity_errors += 1;
                let _ = err_at;
            }
        }
        if off == self.rcv_nxt {
            self.deliver(off, payload);
            // Drain contiguous out-of-order segments.
            while let Some((&o, _)) = self.ooo_len.first_key_value() {
                if o > self.rcv_nxt {
                    break;
                }
                let len = self.ooo_len.remove(&o).unwrap();
                let data = self.ooo.remove(&o).unwrap_or_default();
                let end = o + len as u64;
                if end <= self.rcv_nxt {
                    continue;
                }
                let skip = (self.rcv_nxt - o) as usize;
                if self.cfg.record_rx && !data.is_empty() {
                    let tail = data[skip.min(data.len())..].to_vec();
                    self.deliver(self.rcv_nxt, &tail);
                } else {
                    let advance = len - skip;
                    self.rcv_nxt += advance as u64;
                    self.stats.bytes_received += advance as u64;
                }
            }
        } else {
            // Out of order: stash (data only in record mode).
            self.ooo_len.entry(off).or_insert(payload.len());
            if self.cfg.record_rx {
                self.ooo.entry(off).or_insert_with(|| payload.to_vec());
            }
        }
    }

    fn deliver(&mut self, off: u64, payload: &[u8]) {
        debug_assert_eq!(off, self.rcv_nxt);
        self.rcv_nxt += payload.len() as u64;
        self.stats.bytes_received += payload.len() as u64;
        if self.cfg.record_rx {
            self.rx_record.extend_from_slice(payload);
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Periodic tick: fires RTO and delayed-ACK deadlines. Returns packets
    /// to emit.
    pub fn on_tick(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if self.state == ConnState::Closed {
            return out;
        }
        if let Some(dl) = self.ack_deadline {
            if now >= dl {
                out.push(self.make_ack());
            }
        }
        if let Some(dl) = self.rto_deadline {
            if now >= dl {
                self.stats.rtos += 1;
                self.rto_backoff = (self.rto_backoff * 2).min(64);
                self.in_recovery = false;
                self.dup_acks = 0;
                match self.state {
                    ConnState::SynSent | ConnState::SynRcvd => {
                        // Retransmit handshake segment.
                        let pkt = if self.state == ConnState::SynSent {
                            self.build(TcpFlags::SYN, SeqNum(self.iss), &[], self.syn_options())
                        } else {
                            self.build(TcpFlags::SYN_ACK, SeqNum(self.iss), &[], self.syn_options())
                        };
                        out.push(pkt);
                        self.arm_rto(now);
                    }
                    _ => {
                        self.cc.on_rto(now, self.flight().max(1));
                        // RFC 2018 §8: an RTO must not trust the
                        // scoreboard (the receiver may have reneged).
                        self.sacked.clear();
                        self.sacked_bytes = 0;
                        self.rtx_next = self.snd_una;
                        // Go-back-N: rewind and let the window refill.
                        self.snd_nxt = self.snd_una;
                        if let Some(pkt) = self.retransmit_head(now) {
                            out.push(pkt);
                        } else {
                            out.extend(self.pump(now));
                        }
                        self.arm_rto(now);
                    }
                }
            }
        }
        out
    }

    /// Internal state dump for diagnostics.
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        format!(
            "una={} nxt={} recover={} in_rec={} dup={} sacked={}({}) rtx_next={} rcv_nxt={} ooo={} fin_rx={:?}",
            self.snd_una, self.snd_nxt, self.recover, self.in_recovery, self.dup_acks,
            self.sacked_bytes, self.sacked.len(), self.rtx_next, self.rcv_nxt,
            self.ooo_len.len(), self.fin_received_at
        )
    }

    /// The earliest pending timer deadline (testing/diagnostics).
    pub fn next_deadline(&self) -> Option<u64> {
        match (self.rto_deadline, self.ack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn pair(mtu_c: usize, mtu_s: usize, tx: u64) -> (TcpConnection, TcpConnection) {
        let ccfg = ConnConfig::new((C, 40000), (S, 80), mtu_c).sending(tx);
        let scfg = ConnConfig::new((S, 80), (C, 40000), mtu_s);
        (
            TcpConnection::client(ccfg, 1_000_000),
            TcpConnection::listen(scfg, 9_000_000),
        )
    }

    /// Runs a lossless in-memory exchange (with timer ticks) until true
    /// quiescence: no packets in flight and no pending deadlines.
    fn exchange(a: &mut TcpConnection, b: &mut TcpConnection, first: Vec<Vec<u8>>) -> usize {
        let mut now = 0u64;
        let mut to_b: Vec<Vec<u8>> = first;
        let mut to_a: Vec<Vec<u8>> = Vec::new();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 200_000, "exchange did not quiesce");
            now += 1_000_000; // 1 ms per half-round
            let mut next_to_a = Vec::new();
            for pkt in to_b.drain(..) {
                let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
                next_to_a.extend(b.on_segment(now, ip.payload()));
            }
            let mut next_to_b = Vec::new();
            for pkt in to_a.drain(..) {
                let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
                next_to_b.extend(a.on_segment(now, ip.payload()));
            }
            next_to_b.extend(a.on_tick(now));
            next_to_a.extend(b.on_tick(now));
            to_a = next_to_a;
            to_b = next_to_b;
            if to_a.is_empty()
                && to_b.is_empty()
                && a.next_deadline().is_none()
                && b.next_deadline().is_none()
            {
                break;
            }
        }
        rounds
    }

    #[test]
    fn handshake_negotiates_mss() {
        let (mut c, mut s) = pair(9000, 1500, 0);
        let syn = c.open(0);
        exchange(&mut c, &mut s, syn);
        assert_eq!(c.state(), ConnState::Established);
        assert_eq!(s.state(), ConnState::Established);
        assert_eq!(c.own_mss(), 8960);
        assert_eq!(s.own_mss(), 1460);
        // Both sides converge on the minimum.
        assert_eq!(c.effective_mss(), 1460);
        assert_eq!(s.effective_mss(), 1460);
    }

    #[test]
    fn bulk_transfer_delivers_all_bytes_intact() {
        let total = 500_000u64;
        let (mut c, mut s) = pair(1500, 1500, total);
        c.app_closed = true; // close after sending everything
        let syn = c.open(0);
        exchange(&mut c, &mut s, syn);
        assert_eq!(s.stats.bytes_received, total);
        assert_eq!(s.stats.integrity_errors, 0);
        assert_eq!(c.stats.bytes_acked, total);
        assert_eq!(c.state(), ConnState::Closed);
        assert_eq!(s.state(), ConnState::Closed);
    }

    #[test]
    fn jumbo_mss_used_when_both_sides_support_it() {
        let total = 200_000u64;
        let (mut c, mut s) = pair(9000, 9000, total);
        let syn = c.open(0);
        exchange(&mut c, &mut s, syn);
        assert_eq!(c.effective_mss(), 8960);
        assert_eq!(s.stats.bytes_received, total);
        // Fewer segments than a 1500-MTU transfer would need.
        assert!(c.stats.segments_sent <= total / 8960 + 12);
    }

    #[test]
    fn retransmission_repairs_a_dropped_segment() {
        let total = 100_000u64;
        let (mut c, mut s) = pair(1500, 1500, total);
        c.app_closed = true;
        let mut now = 0u64;
        let mut to_s = c.open(now);
        let mut to_c: Vec<Vec<u8>> = Vec::new();
        let mut dropped_one = false;
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 200_000, "did not finish");
            now += 500_000;
            let mut next_to_c = Vec::new();
            for pkt in to_s.drain(..) {
                // Drop exactly one data segment mid-flight.
                if !dropped_one && pkt.len() > 600 && c.stats.segments_sent > 10 {
                    dropped_one = true;
                    continue;
                }
                let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
                next_to_c.extend(s.on_segment(now, ip.payload()));
            }
            let mut next_to_s = Vec::new();
            for pkt in to_c.drain(..) {
                let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
                next_to_s.extend(c.on_segment(now, ip.payload()));
            }
            next_to_s.extend(c.on_tick(now));
            next_to_c.extend(s.on_tick(now));
            to_c = next_to_c;
            to_s = next_to_s;
            if to_c.is_empty() && to_s.is_empty() {
                break;
            }
        }
        assert!(dropped_one);
        assert_eq!(s.stats.bytes_received, total);
        assert_eq!(s.stats.integrity_errors, 0);
        assert!(c.stats.retransmits >= 1);
        assert_eq!(c.state(), ConnState::Closed);
    }

    #[test]
    fn cwnd_growth_rate_scales_with_mss() {
        // Direct check of the §2.1/§5.2 mechanism inside the connection.
        let (mut c9, mut s9) = pair(9000, 9000, 10_000_000);
        let syn = c9.open(0);
        // Handshake only (no data pump yet because window limits).
        exchange_n(&mut c9, &mut s9, syn, 4);
        let (mut c1, mut s1) = pair(1500, 1500, 10_000_000);
        let syn = c1.open(0);
        exchange_n(&mut c1, &mut s1, syn, 4);
        assert!(
            c9.cwnd() >= 6 * c1.cwnd() / 2,
            "IW and growth scale with MSS"
        );
    }

    fn exchange_n(a: &mut TcpConnection, b: &mut TcpConnection, first: Vec<Vec<u8>>, n: usize) {
        let mut to_b = first;
        let mut to_a: Vec<Vec<u8>> = Vec::new();
        for round in 0..n {
            let now = (round as u64 + 1) * 1_000_000;
            let mut next_to_a = Vec::new();
            for pkt in to_b.drain(..) {
                let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
                next_to_a.extend(b.on_segment(now, ip.payload()));
            }
            let mut next_to_b = Vec::new();
            for pkt in to_a.drain(..) {
                let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
                next_to_b.extend(a.on_segment(now, ip.payload()));
            }
            to_a = next_to_a;
            to_b = next_to_b;
        }
    }

    #[test]
    fn tso_sends_super_segments() {
        let total = 300_000u64;
        let ccfg = ConnConfig {
            tso: true,
            ..ConnConfig::new((C, 40000), (S, 80), 1500).sending(total)
        };
        let scfg = ConnConfig::new((S, 80), (C, 40000), 1500);
        let mut c = TcpConnection::client(ccfg, 7);
        let mut s = TcpConnection::listen(scfg, 9);
        let syn = c.open(0);
        exchange(&mut c, &mut s, syn);
        assert_eq!(s.stats.bytes_received, total);
        // Far fewer (super-)segments than MSS-sized sending would need.
        assert!(
            c.stats.segments_sent < total / 1460 / 4,
            "sent {} segments",
            c.stats.segments_sent
        );
    }

    #[test]
    fn syn_retransmits_on_loss() {
        let (mut c, _s) = pair(1500, 1500, 0);
        let syn = c.open(0);
        assert_eq!(syn.len(), 1);
        // No reply: first RTO fires at the initial 1 s.
        let out = c.on_tick(999_999_999);
        assert!(out.is_empty());
        let out = c.on_tick(1_000_000_001);
        assert_eq!(out.len(), 1, "SYN retransmitted");
        assert_eq!(c.stats.rtos, 1);
        // Backoff doubles.
        let out = c.on_tick(2_000_000_001);
        assert!(out.is_empty(), "second RTO not yet due (backoff)");
        let out = c.on_tick(3_100_000_001);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut c, mut s) = pair(1500, 1500, 0);
        let syn = c.open(0);
        exchange(&mut c, &mut s, syn); // handshake only, no data yet
        assert_eq!(c.state(), ConnState::Established);
        // Now release 5000 bytes and collect the segments ourselves.
        c.cfg.tx_total = 5000;
        let mut segs = c.pump(10_000_000);
        assert!(segs.len() >= 3, "expected several segments");
        segs.reverse();
        let mut acks = Vec::new();
        for pkt in &segs {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            acks.extend(s.on_segment(11_000_000, ip.payload()));
        }
        assert_eq!(s.stats.bytes_received, 5000);
        assert_eq!(s.stats.integrity_errors, 0);
        assert!(!acks.is_empty());
    }
}
