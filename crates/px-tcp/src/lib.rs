//! # px-tcp — host protocol stacks for the PacketExpress simulator
//!
//! A real (simplified, but protocol-faithful) TCP implementation plus UDP
//! endpoints, running as [`px_sim::Node`]s. The WAN results in the paper
//! (Fig. 1d, §5.2) are *consequences of TCP dynamics* — congestion-window
//! growth in MSS units, Mathis-style steady state under random loss — so
//! this crate implements those dynamics for real rather than curve-fitting
//! them:
//!
//! * three-way handshake with **MSS negotiation** (the option PXGW
//!   rewrites),
//! * RFC 5681 congestion control with Appropriate Byte Counting
//!   (RFC 3465), slow start, congestion avoidance, fast retransmit /
//!   fast recovery,
//! * RFC 6298 RTO estimation with exponential backoff,
//! * window scaling, delayed ACKs, FIN teardown,
//! * TSO/GSO-style transmit (super-segments split at the NIC model),
//! * UDP sockets, UDP_GRO-style receive, and **PX-caravan-aware hosts**
//!   that unbundle tunnelled datagrams marked with the caravan ToS.
//!
//! Every payload byte a connection sends is a deterministic function of
//! its stream offset ([`pattern_byte`]), so receivers verify end-to-end
//! byte-stream integrity *always* — any gateway that corrupted, displaced,
//! or duplicated a byte while merging/splitting is caught by every test
//! and experiment for free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cc;
pub mod conn;
pub mod host;
pub mod udp;

pub use cc::{CongestionControl, Cubic, Reno};
pub use conn::{ConnConfig, ConnState, TcpConnection};
pub use host::{Host, HostConfig, TcpFlowStats};
pub use udp::{UdpFlowStats, UdpSocket};

/// The deterministic payload byte at absolute stream offset `off`.
///
/// 251 is prime and coprime with every power of two, so any byte shift,
/// duplication, or segment-boundary error produces a detectable mismatch.
pub fn pattern_byte(off: u64) -> u8 {
    (off % 251) as u8
}

/// Fills `buf` with the stream pattern starting at offset `off`.
pub fn fill_pattern(off: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = pattern_byte(off + i as u64);
    }
}

/// Verifies `buf` against the stream pattern at offset `off`, returning
/// the index of the first mismatch if any.
pub fn verify_pattern(off: u64, buf: &[u8]) -> Option<usize> {
    buf.iter()
        .enumerate()
        .find(|(i, &b)| b != pattern_byte(off + *i as u64))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_roundtrip() {
        let mut buf = vec![0u8; 1000];
        fill_pattern(12345, &mut buf);
        assert_eq!(verify_pattern(12345, &buf), None);
        assert_eq!(verify_pattern(12346, &buf), Some(0));
        buf[500] ^= 0xFF;
        assert_eq!(verify_pattern(12345, &buf), Some(500));
    }

    #[test]
    fn pattern_has_no_short_period() {
        let a: Vec<u8> = (0..251).map(pattern_byte).collect();
        let b: Vec<u8> = (251..502).map(pattern_byte).collect();
        assert_eq!(a, b); // period exactly 251
        let c: Vec<u8> = (0..250).map(|i| pattern_byte(i + 1)).collect();
        assert_ne!(&a[..250], &c[..]);
    }
}
