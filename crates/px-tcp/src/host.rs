//! The [`Host`] node: a single-homed endpoint running TCP connections and
//! UDP sockets over the simulator.
//!
//! A host owns:
//! * a TCP connection table (active opens scheduled at configured times,
//!   passive listeners that accept incoming SYNs),
//! * UDP sockets plus paced UDP sender flows (iPerf-style),
//! * an IP fragment reassembler,
//! * a NIC model: TSO/GSO splitting on transmit, caravan unbundling on
//!   receive when the host is "caravan-aware" (the paper's modified
//!   receiver stack).
//!
//! Hosts are deliberately single-ported (port 0): multi-interface devices
//! in the topologies are routers or gateways.

use crate::conn::{ConnConfig, TcpConnection};
use crate::udp::UdpSocket;
use px_sim::nic::OffloadConfig;
use px_sim::node::{Ctx, Node, PortId};
use px_wire::frag::{Reassembler, ReassemblyResult};
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr, CARAVAN_TOS};
use px_wire::tcp::TcpSegment;
use px_wire::udp::{UdpDatagram, UdpRepr};
use px_wire::{IpProtocol, PacketBuf};
use rand::Rng;
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Host-level configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The host's IPv4 address.
    pub addr: Ipv4Addr,
    /// Interface MTU (decides the advertised MSS and wire packet sizes).
    pub mtu: usize,
    /// NIC offloads.
    pub offloads: OffloadConfig,
    /// Interpret PX-caravan packets (ToS-marked) as UDP_GRO bundles.
    pub caravan_rx: bool,
    /// Bundle outgoing UDP bursts into PX-caravan packets before they
    /// leave the host (the paper's §4.1 modified sender: hosts "tunnel
    /// multiple packets into a PX-caravan packet before forwarding in
    /// the b-network").
    pub caravan_tx: bool,
    /// Run the F-PMTUD daemon alongside the regular stack: answer probes
    /// on the well-known port with fragment-size reports (§4.2/§6 — "where
    /// should we deploy the F-PMTUD daemon?" — on end hosts).
    pub fpmtud_daemon: bool,
    /// Timer tick period in nanoseconds.
    pub tick_ns: u64,
}

impl HostConfig {
    /// A host with the given address and MTU, all offloads on, 1 ms tick.
    pub fn new(addr: Ipv4Addr, mtu: usize) -> Self {
        HostConfig {
            addr,
            mtu,
            offloads: OffloadConfig::all_on(),
            caravan_rx: false,
            caravan_tx: false,
            fpmtud_daemon: false,
            tick_ns: 1_000_000,
        }
    }
}

/// A scheduled outgoing UDP flow (iPerf-UDP-style, paced).
#[derive(Debug, Clone)]
pub struct UdpFlowCfg {
    /// Local (source) port.
    pub local_port: u16,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Offered rate in bits/sec.
    pub rate_bps: u64,
    /// Application payload bytes per datagram.
    pub payload: usize,
    /// Start time (ns).
    pub start_ns: u64,
    /// Stop time (ns).
    pub stop_ns: u64,
}

/// Summary of one TCP connection for experiment harvesting.
#[derive(Debug, Clone, Copy)]
pub struct TcpFlowStats {
    /// Local port.
    pub local_port: u16,
    /// Goodput bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Bytes received in order.
    pub bytes_received: u64,
    /// Pattern-verification failures (must be 0 in a correct network).
    pub integrity_errors: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// The negotiated (effective) MSS.
    pub effective_mss: usize,
    /// The MSS the peer advertised (post-PXGW-rewriting).
    pub peer_mss: usize,
}

const TICK_TOKEN: u64 = 0;

struct ScheduledConn {
    start_ns: u64,
    cfg: ConnConfig,
    stop_sending_ns: Option<u64>,
    started: bool,
    stopped: bool,
    idx: Option<usize>,
}

struct UdpFlowState {
    cfg: UdpFlowCfg,
    /// Fractional datagram credit accumulated between ticks.
    credit: f64,
    last_tick_ns: u64,
}

/// A simulated end host.
pub struct Host {
    /// Configuration.
    pub cfg: HostConfig,
    conns: Vec<TcpConnection>,
    /// (remote ip, remote port, local port) → connection index.
    conn_index: HashMap<(Ipv4Addr, u16, u16), usize>,
    listeners: HashMap<u16, ConnConfig>,
    scheduled: Vec<ScheduledConn>,
    udp_socks: HashMap<u16, UdpSocket>,
    udp_flows: Vec<UdpFlowState>,
    reasm: Reassembler,
    ip_ident: u16,
    /// Packets that arrived for an address that is not ours.
    pub misdelivered: u64,
    /// F-PMTUD probe reports served (when `fpmtud_daemon` is on).
    pub fpmtud_reports: u64,
    /// ICMP messages received (PMTUD errors etc. — counted, recorded).
    pub icmp_received: Vec<Vec<u8>>,
}

impl Host {
    /// Creates a host.
    pub fn new(cfg: HostConfig) -> Self {
        Host {
            cfg,
            conns: Vec::new(),
            conn_index: HashMap::new(),
            listeners: HashMap::new(),
            scheduled: Vec::new(),
            udp_socks: HashMap::new(),
            udp_flows: Vec::new(),
            reasm: Reassembler::new(),
            ip_ident: 1,
            misdelivered: 0,
            fpmtud_reports: 0,
            icmp_received: Vec::new(),
        }
    }

    /// Schedules an active TCP open at `start_ns`. If `stop_sending_ns`
    /// is set, the connection stops producing data and closes then
    /// (iPerf's `-t` duration).
    pub fn connect_at(&mut self, start_ns: u64, cfg: ConnConfig, stop_sending_ns: Option<u64>) {
        self.scheduled.push(ScheduledConn {
            start_ns,
            cfg,
            stop_sending_ns,
            started: false,
            stopped: false,
            idx: None,
        });
    }

    /// Listens for TCP connections on `port`; accepted connections use
    /// `template` for everything but the remote endpoint.
    pub fn listen(&mut self, port: u16, template: ConnConfig) {
        self.listeners.insert(port, template);
    }

    /// Binds a UDP socket.
    pub fn udp_bind(&mut self, sock: UdpSocket) {
        self.udp_socks.insert(sock.port, sock);
    }

    /// Adds a paced outgoing UDP flow.
    pub fn add_udp_flow(&mut self, cfg: UdpFlowCfg) {
        self.udp_socks
            .entry(cfg.local_port)
            .or_insert_with(|| UdpSocket::bind(cfg.local_port));
        self.udp_flows.push(UdpFlowState {
            cfg,
            credit: 0.0,
            last_tick_ns: 0,
        });
    }

    /// Read access to a UDP socket.
    pub fn udp_socket(&self, port: u16) -> Option<&UdpSocket> {
        self.udp_socks.get(&port)
    }

    /// Stats for every TCP connection on this host.
    pub fn tcp_stats(&self) -> Vec<TcpFlowStats> {
        self.conns
            .iter()
            .map(|c| TcpFlowStats {
                local_port: c.cfg.local.1,
                bytes_acked: c.stats.bytes_acked,
                bytes_received: c.stats.bytes_received,
                integrity_errors: c.stats.integrity_errors,
                retransmits: c.stats.retransmits,
                effective_mss: c.effective_mss(),
                peer_mss: c.peer_mss(),
            })
            .collect()
    }

    /// Direct access to a connection (tests).
    pub fn conn(&self, idx: usize) -> Option<&TcpConnection> {
        self.conns.get(idx)
    }

    /// Number of connections (accepted + initiated).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    fn emit_wire(&mut self, ctx: &mut Ctx<'_>, pkt: Vec<u8>) {
        // NIC TX path: split oversize TCP packets if TSO/GSO is on.
        if pkt.len() > self.cfg.mtu {
            if self.cfg.offloads.tso || self.cfg.offloads.gso {
                if let Ok(segs) = px_sim::nic::tso_split(&pkt, self.cfg.mtu) {
                    for s in segs {
                        ctx.send(PortId(0), PacketBuf::from_payload(&s));
                    }
                    return;
                }
            }
            // No TSO and too big: the stack would never have built this
            // (conn cfg ties segment size to MTU); drop defensively.
            ctx.stats.bump("host_tx_oversize_dropped", 1);
            return;
        }
        ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
    }

    fn emit_all(&mut self, ctx: &mut Ctx<'_>, pkts: Vec<Vec<u8>>) {
        for p in pkts {
            self.emit_wire(ctx, p);
        }
    }

    fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        local_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) {
        let dgram = UdpRepr {
            src_port: local_port,
            dst_port,
        }
        .build_datagram(self.cfg.addr, dst, payload)
        .expect("datagram size");
        let mut ip = Ipv4Repr::new(self.cfg.addr, dst, IpProtocol::Udp, dgram.len());
        ip.ident = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1);
        if let Ok(pkt) = ip.build_packet(&dgram) {
            if let Some(s) = self.udp_socks.get_mut(&local_port) {
                s.note_sent(payload.len());
            }
            self.emit_wire(ctx, pkt);
        }
    }

    /// Sends a burst of `n` datagrams bundled into PX-caravan packets
    /// (the modified b-network sender path). Bundles are capped at the
    /// interface MTU; a lone datagram goes out plain.
    fn send_udp_caravan_burst(&mut self, ctx: &mut Ctx<'_>, cfg: &UdpFlowCfg, n: usize, now: u64) {
        use px_wire::caravan::CaravanBuilder;
        let budget = self.cfg.mtu.saturating_sub(28);
        let mut builder = CaravanBuilder::new(budget);
        let flush = |host: &mut Host, ctx: &mut Ctx<'_>, b: CaravanBuilder| {
            let count = b.count();
            if count == 0 {
                return;
            }
            let bundle = b.finish();
            if count == 1 {
                // No point tunnelling a singleton: the bundle *is* the
                // one datagram; send it as a plain packet.
                let Ok(dg) = UdpDatagram::new_checked(&bundle[..]) else {
                    return;
                };
                let payload = dg.payload().to_vec();
                host.send_udp(ctx, cfg.local_port, cfg.dst, cfg.dst_port, &payload);
                return;
            }
            let outer = UdpRepr {
                src_port: cfg.local_port,
                dst_port: cfg.dst_port,
            }
            .build_datagram(host.cfg.addr, cfg.dst, &bundle)
            .expect("bundle within UDP limits");
            let mut ip = Ipv4Repr::new(host.cfg.addr, cfg.dst, IpProtocol::Udp, outer.len());
            ip.tos = CARAVAN_TOS;
            ip.ident = host.ip_ident;
            host.ip_ident = host.ip_ident.wrapping_add(1);
            if let Ok(pkt) = ip.build_packet(&outer) {
                if let Some(s) = host.udp_socks.get_mut(&cfg.local_port) {
                    for _ in 0..count {
                        s.note_sent(cfg.payload);
                    }
                }
                ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
            }
        };
        for _ in 0..n {
            let mut payload = vec![0u8; cfg.payload];
            crate::fill_pattern(now, &mut payload[..]);
            let dgram = UdpRepr {
                src_port: cfg.local_port,
                dst_port: cfg.dst_port,
            }
            .build_datagram(self.cfg.addr, cfg.dst, &payload)
            .expect("datagram size");
            if !builder.fits(&dgram) {
                let full = std::mem::replace(&mut builder, CaravanBuilder::new(budget));
                flush(self, ctx, full);
            }
            if builder.fits(&dgram) {
                builder.push(&dgram).expect("fits");
            } else {
                // Single datagram larger than the budget: send plain.
                self.send_udp(ctx, cfg.local_port, cfg.dst, cfg.dst_port, &payload);
            }
        }
        flush(self, ctx, builder);
    }

    fn handle_ip(&mut self, ctx: &mut Ctx<'_>, packet: &[u8], frag_sizes: Vec<usize>) {
        let Ok(ip) = Ipv4Packet::new_checked(packet) else {
            return;
        };
        if ip.dst() != self.cfg.addr {
            self.misdelivered += 1;
            return;
        }
        match ip.protocol() {
            IpProtocol::Tcp => self.handle_tcp(ctx, &ip),
            IpProtocol::Udp => self.handle_udp(ctx, &ip, frag_sizes),
            IpProtocol::Icmp => self.handle_icmp(ctx, &ip),
            IpProtocol::Other(_) => {}
        }
    }

    fn handle_tcp(&mut self, ctx: &mut Ctx<'_>, ip: &Ipv4Packet<&[u8]>) {
        let seg_bytes = ip.payload();
        let Ok(seg) = TcpSegment::new_checked(seg_bytes) else {
            return;
        };
        if !seg.verify_checksum(ip.src(), ip.dst()) {
            ctx.stats.bump("host_tcp_bad_checksum", 1);
            return;
        }
        let key = (ip.src(), seg.src_port(), seg.dst_port());
        let now = ctx.now.0;
        let idx = match self.conn_index.get(&key) {
            Some(&i) => i,
            None => {
                // New connection: must be a SYN to a listener.
                if !seg.flags().syn || seg.flags().ack {
                    return;
                }
                let Some(template) = self.listeners.get(&seg.dst_port()) else {
                    return;
                };
                let mut cfg = template.clone();
                cfg.local = (self.cfg.addr, seg.dst_port());
                cfg.remote = (ip.src(), seg.src_port());
                cfg.mtu = self.cfg.mtu;
                cfg.tso = self.cfg.offloads.tso || self.cfg.offloads.gso;
                let iss: u32 = ctx.rng.gen();
                let conn = TcpConnection::listen(cfg, iss);
                let i = self.conns.len();
                self.conns.push(conn);
                self.conn_index.insert(key, i);
                i
            }
        };
        let out = self.conns[idx].on_segment(now, seg_bytes);
        self.emit_all(ctx, out);
    }

    /// RFC 1191: an ICMP fragmentation-needed carries the offending
    /// packet's IP header + 8 bytes — enough to find the connection and
    /// clamp its MSS to the reported next-hop MTU.
    fn handle_icmp(&mut self, ctx: &mut Ctx<'_>, ip: &Ipv4Packet<&[u8]>) {
        self.icmp_received.push(ip.payload().to_vec());
        let Ok(px_wire::icmpv4::Icmpv4Message::FragNeeded {
            next_hop_mtu,
            original,
        }) = px_wire::icmpv4::Icmpv4Message::parse(ip.payload())
        else {
            return;
        };
        // Parse the excerpt: original IP header + first 8 TCP bytes
        // (src port, dst port, seq).
        if original.len() < 20 + 4 {
            return;
        }
        let hlen = usize::from(original[0] & 0x0F) * 4;
        if original.len() < hlen + 4 || original[9] != 6 {
            return; // not TCP
        }
        let orig_dst = Ipv4Addr::new(original[16], original[17], original[18], original[19]);
        let src_port = u16::from_be_bytes([original[hlen], original[hlen + 1]]);
        let dst_port = u16::from_be_bytes([original[hlen + 2], original[hlen + 3]]);
        // The offending packet was *ours*: local port = its source port.
        let key = (orig_dst, dst_port, src_port);
        if let Some(&idx) = self.conn_index.get(&key) {
            let out = self.conns[idx].clamp_path_mtu(ctx.now.0, usize::from(next_hop_mtu));
            self.emit_all(ctx, out);
        }
    }

    fn handle_udp(&mut self, ctx: &mut Ctx<'_>, ip: &Ipv4Packet<&[u8]>, frag_sizes: Vec<usize>) {
        let Ok(dg) = UdpDatagram::new_checked(ip.payload()) else {
            return;
        };
        // F-PMTUD daemon: report how the probe arrived (whole, or as
        // which fragment sizes) back to the prober.
        if self.cfg.fpmtud_daemon && dg.dst_port() == px_wire::fpmtud::FPMTUD_PORT {
            if let Some(probe_id) = px_wire::fpmtud::parse_probe(dg.payload()) {
                let report = px_wire::fpmtud::report_payload(probe_id, &frag_sizes);
                self.fpmtud_reports += 1;
                let (dst, sport) = (ip.src(), dg.src_port());
                self.send_udp(ctx, px_wire::fpmtud::FPMTUD_PORT, dst, sport, &report);
                return;
            }
        }
        let caravan = self.cfg.caravan_rx && ip.tos() == CARAVAN_TOS;
        let (src, dst) = (ip.src(), ip.dst());
        let Some(sock) = self.udp_socks.get_mut(&dg.dst_port()) else {
            return;
        };
        if caravan {
            sock.deliver_bundle(src, dst, dg.payload());
        } else {
            sock.deliver(src, dst, ip.payload());
        }
    }

    fn on_tick_inner(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now.0;
        // Start scheduled connections.
        for i in 0..self.scheduled.len() {
            if !self.scheduled[i].started && now >= self.scheduled[i].start_ns {
                self.scheduled[i].started = true;
                let mut cfg = self.scheduled[i].cfg.clone();
                cfg.local.0 = self.cfg.addr;
                cfg.mtu = self.cfg.mtu;
                cfg.tso = self.cfg.offloads.tso || self.cfg.offloads.gso;
                let iss: u32 = ctx.rng.gen();
                let mut conn = TcpConnection::client(cfg, iss);
                let out = conn.open(now);
                let key = (conn.cfg.remote.0, conn.cfg.remote.1, conn.cfg.local.1);
                let idx = self.conns.len();
                self.conns.push(conn);
                self.conn_index.insert(key, idx);
                self.scheduled[i].idx = Some(idx);
                self.emit_all(ctx, out);
            }
            // Stop (close) when the duration elapses.
            if let (Some(idx), Some(stop)) =
                (self.scheduled[i].idx, self.scheduled[i].stop_sending_ns)
            {
                if now >= stop && !self.scheduled[i].stopped {
                    self.scheduled[i].stopped = true;
                    let out = self.conns[idx].stop_sending(now);
                    self.emit_all(ctx, out);
                }
            }
        }
        // TCP timers.
        for i in 0..self.conns.len() {
            let out = self.conns[i].on_tick(now);
            self.emit_all(ctx, out);
        }
        // UDP pacing.
        for i in 0..self.udp_flows.len() {
            let f = &mut self.udp_flows[i];
            if now < f.cfg.start_ns || now >= f.cfg.stop_ns {
                f.last_tick_ns = now;
                continue;
            }
            let dt = (now - f.last_tick_ns.max(f.cfg.start_ns)) as f64 / 1e9;
            f.last_tick_ns = now;
            f.credit += f.cfg.rate_bps as f64 * dt / 8.0 / f.cfg.payload as f64;
            let n = (f.credit as usize).min(512);
            f.credit -= n as f64;
            let cfg = f.cfg.clone();
            if self.cfg.caravan_tx {
                self.send_udp_caravan_burst(ctx, &cfg, n, now);
            } else {
                for _ in 0..n {
                    let mut payload = vec![0u8; cfg.payload];
                    crate::fill_pattern(now, &mut payload[..]);
                    self.send_udp(ctx, cfg.local_port, cfg.dst, cfg.dst_port, &payload);
                }
            }
        }
    }
}

impl Node for Host {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(px_sim::Nanos(self.cfg.tick_ns), TICK_TOKEN);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
        let bytes = pkt.as_slice().to_vec();
        // Reassemble fragments first, keeping the fragment sizes (the
        // F-PMTUD daemon reports them).
        match self.reasm.push(&bytes, ctx.now.0) {
            Ok(ReassemblyResult::NotFragmented(p)) => {
                let size = p.len();
                self.handle_ip(ctx, &p, vec![size]);
            }
            Ok(ReassemblyResult::Complete {
                packet,
                fragment_sizes,
            }) => {
                self.handle_ip(ctx, &packet, fragment_sizes);
            }
            Ok(ReassemblyResult::Incomplete) => {}
            Err(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        debug_assert_eq!(token, TICK_TOKEN);
        self.on_tick_inner(ctx);
        ctx.set_timer(px_sim::Nanos(self.cfg.tick_ns), TICK_TOKEN);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
