//! End-to-end tests: two `Host` nodes exchanging real TCP/UDP traffic over
//! the discrete-event simulator.

use px_sim::link::LinkConfig;
use px_sim::netem::Netem;
use px_sim::network::Network;
use px_sim::node::PortId;
use px_sim::time::Nanos;
use px_tcp::conn::ConnConfig;
use px_tcp::host::{Host, HostConfig, UdpFlowCfg};
use px_tcp::udp::UdpSocket;
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn two_hosts(
    mtu: usize,
    link: LinkConfig,
) -> (Network, px_sim::node::NodeId, px_sim::node::NodeId) {
    let mut net = Network::new(1234);
    let c = net.add_node(Host::new(HostConfig::new(CLIENT, mtu)));
    let s = net.add_node(Host::new(HostConfig::new(SERVER, mtu)));
    net.connect((c, PortId(0)), (s, PortId(0)), link);
    (net, c, s)
}

#[test]
fn tcp_transfer_over_clean_link() {
    let link = LinkConfig::new(1_000_000_000, Nanos::from_micros(100), 1500);
    let (mut net, c, s) = two_hosts(1500, link);
    let total = 2_000_000u64;
    net.node_mut::<Host>(s)
        .listen(80, ConnConfig::new((SERVER, 80), (CLIENT, 0), 1500));
    net.node_mut::<Host>(c).connect_at(
        0,
        ConnConfig::new((CLIENT, 40000), (SERVER, 80), 1500).sending(total),
        Some(Nanos::from_secs(30).0),
    );
    net.run_until(Nanos::from_secs(5));
    let server = net.node_ref::<Host>(s);
    let stats = server.tcp_stats();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].bytes_received, total, "all bytes delivered");
    assert_eq!(stats[0].integrity_errors, 0, "stream intact");
    let client = net.node_ref::<Host>(c);
    assert_eq!(client.tcp_stats()[0].bytes_acked, total);
}

#[test]
fn tcp_survives_lossy_wan() {
    // The paper's WAN profile: 10 ms delay, 0.01% loss.
    let link = LinkConfig::new(10_000_000_000, Nanos::ZERO, 1500).with_netem(Netem::paper_wan());
    let (mut net, c, s) = two_hosts(1500, link);
    net.node_mut::<Host>(s)
        .listen(80, ConnConfig::new((SERVER, 80), (CLIENT, 0), 1500));
    net.node_mut::<Host>(c).connect_at(
        0,
        ConnConfig::new((CLIENT, 40000), (SERVER, 80), 1500).sending(u64::MAX),
        Some(Nanos::from_secs(10).0),
    );
    net.run_until(Nanos::from_secs(10));
    let server = net.node_ref::<Host>(s);
    let st = &server.tcp_stats()[0];
    assert!(
        st.bytes_received > 10_000_000,
        "made progress: {}",
        st.bytes_received
    );
    assert_eq!(st.integrity_errors, 0);
    // 20 ms RTT, 1e-4 loss, MSS 1460 → Mathis ≈ 71 Mbps. Allow a wide
    // band (slow-start transient included in the 10 s average).
    let gbps = st.bytes_received as f64 * 8.0 / 10.0 / 1e9;
    assert!(
        gbps > 0.02 && gbps < 0.5,
        "throughput {gbps} Gbps out of band"
    );
}

#[test]
fn jumbo_mtu_flow_uses_jumbo_mss() {
    let link = LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 9000);
    let (mut net, c, s) = two_hosts(9000, link);
    net.node_mut::<Host>(s)
        .listen(80, ConnConfig::new((SERVER, 80), (CLIENT, 0), 9000));
    net.node_mut::<Host>(c).connect_at(
        0,
        ConnConfig::new((CLIENT, 40000), (SERVER, 80), 9000).sending(5_000_000),
        Some(Nanos::from_secs(30).0),
    );
    net.run_until(Nanos::from_secs(5));
    let client = net.node_ref::<Host>(c);
    let st = &client.tcp_stats()[0];
    assert_eq!(st.effective_mss, 8960);
    assert_eq!(st.bytes_acked, 5_000_000);
}

#[test]
fn udp_flow_paced_delivery() {
    let link = LinkConfig::new(1_000_000_000, Nanos::from_micros(100), 1500);
    let (mut net, c, s) = two_hosts(1500, link);
    net.node_mut::<Host>(s).udp_bind(UdpSocket::bind(5001));
    net.node_mut::<Host>(c).add_udp_flow(UdpFlowCfg {
        local_port: 6000,
        dst: SERVER,
        dst_port: 5001,
        rate_bps: 50_000_000, // 50 Mbps
        payload: 1200,
        start_ns: 0,
        stop_ns: Nanos::from_secs(2).0,
    });
    net.run_until(Nanos::from_secs(3));
    let server = net.node_ref::<Host>(s);
    let st = &server.udp_socket(5001).unwrap().stats;
    // 50 Mbps for 2 s at 1200 B/dgram ≈ 10417 datagrams.
    let expected = 50_000_000.0 * 2.0 / 8.0 / 1200.0;
    let got = st.datagrams as f64;
    assert!(
        (got - expected).abs() / expected < 0.05,
        "expected ≈{expected}, got {got}"
    );
    assert_eq!(st.malformed, 0);
}

#[test]
fn udp_larger_than_mtu_fragments_and_reassembles() {
    // Host sends a 4000 B datagram over a 9000-MTU first hop... then the
    // link itself is 9000 so no fragmentation; instead check the 1500 link
    // via a router-free direct path with host-side fragmentation absent:
    // the datagram must simply arrive via IP reassembly when a router
    // fragments. Here we connect hosts directly with MTU 9000 to verify
    // oversize UDP passes through unfragmented.
    let link = LinkConfig::new(1_000_000_000, Nanos::from_micros(100), 9000);
    let (mut net, c, s) = two_hosts(9000, link);
    net.node_mut::<Host>(s)
        .udp_bind(UdpSocket::bind(5001).recording());
    net.node_mut::<Host>(c).add_udp_flow(UdpFlowCfg {
        local_port: 6000,
        dst: SERVER,
        dst_port: 5001,
        rate_bps: 8_000_000,
        payload: 4000,
        start_ns: 0,
        stop_ns: Nanos::from_millis(100).0,
    });
    net.run_until(Nanos::from_secs(1));
    let server = net.node_ref::<Host>(s);
    let sock = server.udp_socket(5001).unwrap();
    assert!(sock.stats.datagrams > 0);
    assert!(sock.received.iter().all(|p| p.len() == 4000));
}

#[test]
fn determinism_two_identical_runs() {
    let run = || {
        let link =
            LinkConfig::new(10_000_000_000, Nanos::ZERO, 1500).with_netem(Netem::paper_wan());
        let (mut net, c, s) = two_hosts(1500, link);
        net.node_mut::<Host>(s)
            .listen(80, ConnConfig::new((SERVER, 80), (CLIENT, 0), 1500));
        net.node_mut::<Host>(c).connect_at(
            0,
            ConnConfig::new((CLIENT, 40000), (SERVER, 80), 1500).sending(u64::MAX),
            None,
        );
        net.run_until(Nanos::from_secs(3));
        let server = net.node_ref::<Host>(s);
        server.tcp_stats()[0].bytes_received
    };
    assert_eq!(run(), run());
}

#[test]
fn caravan_tx_bundles_and_receiver_unbundles() {
    // Both hosts live in a 9 KB b-network; the sender bundles its UDP
    // burst into caravans, the receiver's UDP_GRO path unbundles.
    let link = LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 9000);
    let mut net = Network::new(77);
    let mut a_cfg = HostConfig::new(CLIENT, 9000);
    a_cfg.caravan_tx = true;
    let a = net.add_node(Host::new(a_cfg));
    let mut b_cfg = HostConfig::new(SERVER, 9000);
    b_cfg.caravan_rx = true;
    let b = net.add_node(Host::new(b_cfg));
    net.connect((a, PortId(0)), (b, PortId(0)), link);
    net.node_mut::<Host>(b)
        .udp_bind(UdpSocket::bind(4433).recording());
    net.node_mut::<Host>(a).add_udp_flow(UdpFlowCfg {
        local_port: 7000,
        dst: SERVER,
        dst_port: 4433,
        rate_bps: 200_000_000,
        payload: 1172,
        start_ns: 0,
        stop_ns: Nanos::from_millis(200).0,
    });
    net.run_until(Nanos::from_secs(1));
    let server = net.node_ref::<Host>(b);
    let sock = server.udp_socket(4433).unwrap();
    assert!(sock.stats.bundles > 0, "sender produced caravans");
    assert!(
        sock.stats.datagrams > sock.stats.bundles,
        "bundles carry several datagrams"
    );
    assert_eq!(sock.stats.malformed, 0);
    assert!(
        sock.received.iter().all(|p| p.len() == 1172),
        "boundaries intact"
    );
    let sent = net.node_ref::<Host>(a).udp_socket(7000).unwrap().stats.sent;
    assert_eq!(
        sock.stats.datagrams, sent,
        "lossless link: every datagram arrives"
    );
}
