//! Loss-recovery behaviour tests: the TCP stack against an adversarial
//! delivery layer that drops, duplicates, and reorders segments — the
//! conditions PXGW-translated WAN paths produce.

use px_tcp::conn::{ConnConfig, ConnState, TcpConnection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn pair(mtu: usize, tx: u64) -> (TcpConnection, TcpConnection) {
    let ccfg = ConnConfig::new((C, 40000), (S, 80), mtu).sending(tx);
    let scfg = ConnConfig::new((S, 80), (C, 40000), mtu);
    (
        TcpConnection::client(ccfg, 123_456),
        TcpConnection::listen(scfg, 654_321),
    )
}

/// What the adversarial link does to each client→server segment.
#[derive(Clone, Copy)]
enum Mangle {
    Drop(f64),
    Duplicate(f64),
    /// Swap each segment with its successor with this probability.
    Reorder(f64),
}

/// Runs the exchange through a mangled channel until quiescence; returns
/// (client, server). One-way latency is one round; timers tick every
/// round (1 ms of simulated time).
fn run_mangled(
    mut c: TcpConnection,
    mut s: TcpConnection,
    mangle: Mangle,
    seed: u64,
    max_rounds: usize,
) -> (TcpConnection, TcpConnection) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut now = 0u64;
    let mut to_s: VecDeque<Vec<u8>> = c.open(now).into();
    let mut to_c: VecDeque<Vec<u8>> = VecDeque::new();
    for round in 0..max_rounds {
        now = (round as u64 + 1) * 1_000_000;
        // Mangle the client→server queue only (data direction).
        let mut arriving: Vec<Vec<u8>> = Vec::new();
        while let Some(pkt) = to_s.pop_front() {
            match mangle {
                Mangle::Drop(p) if rng.gen::<f64>() < p => continue,
                Mangle::Duplicate(p) if rng.gen::<f64>() < p => {
                    arriving.push(pkt.clone());
                    arriving.push(pkt);
                }
                Mangle::Reorder(p) => {
                    if rng.gen::<f64>() < p {
                        if let Some(next) = to_s.pop_front() {
                            arriving.push(next);
                        }
                    }
                    arriving.push(pkt);
                }
                _ => arriving.push(pkt),
            }
        }
        let mut next_to_c = Vec::new();
        for pkt in arriving {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            next_to_c.extend(s.on_segment(now, ip.payload()));
        }
        let mut next_to_s = Vec::new();
        while let Some(pkt) = to_c.pop_front() {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            next_to_s.extend(c.on_segment(now, ip.payload()));
        }
        next_to_s.extend(c.on_tick(now));
        next_to_c.extend(s.on_tick(now));
        to_s.extend(next_to_s);
        to_c.extend(next_to_c);
        if to_s.is_empty()
            && to_c.is_empty()
            && c.next_deadline().is_none()
            && s.next_deadline().is_none()
        {
            break;
        }
    }
    (c, s)
}

#[test]
fn heavy_loss_still_delivers_everything() {
    let total = 300_000u64;
    for seed in 1..=5 {
        let (mut c, s) = pair(1500, total);
        let _ = c.close(0);
        let (c, s) = run_mangled(c, s, Mangle::Drop(0.05), seed, 2_000_000);
        assert_eq!(s.stats.bytes_received, total, "seed {seed}");
        assert_eq!(s.stats.integrity_errors, 0, "seed {seed}");
        assert!(
            c.stats.retransmits > 0,
            "seed {seed}: loss must cause retransmits"
        );
    }
}

#[test]
fn duplication_is_harmless_and_causes_no_recovery() {
    let total = 200_000u64;
    let (mut c, s) = pair(1500, total);
    let _ = c.close(0);
    let (c, s) = run_mangled(c, s, Mangle::Duplicate(0.2), 3, 500_000);
    assert_eq!(s.stats.bytes_received, total);
    assert_eq!(s.stats.integrity_errors, 0);
    // Duplicate-data ACKs carry no SACK blocks and must not trigger
    // fast retransmit (the spurious-retransmission storm guard).
    assert_eq!(c.stats.fast_retransmits, 0, "duplicates are not loss");
    assert_eq!(c.stats.retransmits, 0);
}

#[test]
fn mild_reordering_tolerated_without_much_churn() {
    let total = 200_000u64;
    let (mut c, s) = pair(1500, total);
    let _ = c.close(0);
    let (c, s) = run_mangled(c, s, Mangle::Reorder(0.1), 4, 500_000);
    assert_eq!(s.stats.bytes_received, total);
    assert_eq!(s.stats.integrity_errors, 0);
    // Adjacent swaps produce at most 1-2 dupacks per event — under the
    // dupthresh, so little to no spurious recovery.
    assert!(
        c.stats.retransmits < 20,
        "adjacent reorder churned {} retransmits",
        c.stats.retransmits
    );
}

#[test]
fn jumbo_mss_recovers_from_loss_without_rto_storms() {
    let total = 400_000u64;
    let (mut c, s) = pair(9000, total);
    let _ = c.close(0);
    let (c, s) = run_mangled(c, s, Mangle::Drop(0.03), 5, 2_000_000);
    assert_eq!(s.stats.bytes_received, total);
    assert_eq!(s.stats.integrity_errors, 0);
    // Limited transmit + SACK keep recovery fast even at ~3-segment
    // windows: RTOs should be rare relative to loss events.
    assert!(
        c.stats.rtos <= c.stats.fast_retransmits + 3,
        "rtos {} vs frtx {}",
        c.stats.rtos,
        c.stats.fast_retransmits
    );
}

#[test]
fn wire_sequence_wraparound_is_transparent() {
    // ISS near u32::MAX: wire sequence numbers wrap within the first few
    // segments; stream offsets must stay monotonic.
    let total = 100_000u64;
    let ccfg = ConnConfig::new((C, 40000), (S, 80), 1500).sending(total);
    let scfg = ConnConfig::new((S, 80), (C, 40000), 1500);
    let mut c = TcpConnection::client(ccfg, u32::MAX - 2000);
    let s = TcpConnection::listen(scfg, u32::MAX - 5);
    let _ = c.close(0);
    let (c, s) = run_mangled(c, s, Mangle::Drop(0.01), 6, 500_000);
    assert_eq!(s.stats.bytes_received, total);
    assert_eq!(s.stats.integrity_errors, 0);
    assert_eq!(c.state(), ConnState::Closed);
}

#[test]
fn rst_tears_the_connection_down() {
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpRepr};
    let (mut c, mut s) = pair(1500, 1_000_000);
    // Handshake by hand.
    let mut now = 0u64;
    let syn = c.open(now);
    let ip = px_wire::ipv4::Ipv4Packet::new_checked(&syn[0][..]).unwrap();
    let synack = s.on_segment(now, ip.payload());
    now += 1_000_000;
    let ip = px_wire::ipv4::Ipv4Packet::new_checked(&synack[0][..]).unwrap();
    let _out = c.on_segment(now, ip.payload());
    assert_eq!(c.state(), ConnState::Established);
    // Forge an in-window RST from the server.
    let mut flags = TcpFlags::ACK;
    flags.rst = true;
    let rst = TcpRepr {
        src_port: 80,
        dst_port: 40000,
        seq: SeqNum(654_321 + 1),
        ack: SeqNum(0),
        flags,
        window: 0,
        options: vec![],
    }
    .build_segment(S, C, b"");
    let pkt = Ipv4Repr::new(S, C, px_wire::IpProtocol::Tcp, rst.len())
        .build_packet(&rst)
        .unwrap();
    let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
    let out = c.on_segment(now + 1, ip.payload());
    assert!(out.is_empty(), "no reply to an RST");
    assert_eq!(c.state(), ConnState::Closed);
    assert!(c.next_deadline().is_none() || c.on_tick(u64::MAX).is_empty());
}

#[test]
fn simultaneous_close_reaches_closed_on_both_sides() {
    // Both sides send all their data and close; FINs cross.
    let total = 50_000u64;
    let ccfg = ConnConfig::new((C, 40000), (S, 80), 1500).sending(total);
    let scfg = ConnConfig::new((S, 80), (C, 40000), 1500).sending(total);
    let mut c = TcpConnection::client(ccfg, 1);
    let mut s = TcpConnection::listen(scfg, 2);
    let mut now = 0u64;
    let mut to_s: Vec<Vec<u8>> = c.open(now);
    let mut to_c: Vec<Vec<u8>> = Vec::new();
    let mut closed_issued = false;
    for round in 0..200_000 {
        now = (round as u64 + 1) * 1_000_000;
        let mut next_to_c = Vec::new();
        for pkt in to_s.drain(..) {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            next_to_c.extend(s.on_segment(now, ip.payload()));
        }
        let mut next_to_s = Vec::new();
        for pkt in to_c.drain(..) {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&pkt[..]).unwrap();
            next_to_s.extend(c.on_segment(now, ip.payload()));
        }
        if !closed_issued
            && c.state() == ConnState::Established
            && s.state() == ConnState::Established
        {
            closed_issued = true;
            next_to_s.extend(c.close(now));
            next_to_c.extend(s.close(now));
        }
        next_to_s.extend(c.on_tick(now));
        next_to_c.extend(s.on_tick(now));
        to_s = next_to_s;
        to_c = next_to_c;
        if to_s.is_empty()
            && to_c.is_empty()
            && c.next_deadline().is_none()
            && s.next_deadline().is_none()
        {
            break;
        }
    }
    assert_eq!(c.stats.bytes_received, total);
    assert_eq!(s.stats.bytes_received, total);
    assert_eq!(c.stats.integrity_errors + s.stats.integrity_errors, 0);
    assert_eq!(c.state(), ConnState::Closed, "client reached Closed");
    assert_eq!(s.state(), ConnState::Closed, "server reached Closed");
}
