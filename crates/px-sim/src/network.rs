//! The [`Network`]: topology container and event loop.
//!
//! Build a network by adding nodes and connecting their ports with links,
//! then run it. The loop is strictly deterministic: one seeded PRNG, one
//! FIFO-tie-broken event queue, no wall-clock anywhere.
//!
//! ```
//! use px_sim::{Network, Node, Ctx, PortId, LinkConfig, Nanos};
//! use px_wire::PacketBuf;
//!
//! /// Echoes every packet back out the port it arrived on.
//! struct Echo;
//! impl Node for Echo {
//!     fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf) {
//!         ctx.send(port, pkt);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! /// Sends one packet at start and counts replies.
//! struct Pinger { replies: usize }
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(PortId(0), PacketBuf::from_payload(b"ping"));
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: PacketBuf) {
//!         self.replies += 1;
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut net = Network::new(42);
//! let pinger = net.add_node(Pinger { replies: 0 });
//! let echo = net.add_node(Echo);
//! net.connect(
//!     (pinger, PortId(0)),
//!     (echo, PortId(0)),
//!     LinkConfig::new(1_000_000_000, Nanos::from_micros(10), 1500),
//! );
//! net.run_until(Nanos::from_secs(1));
//! assert_eq!(net.node_ref::<Pinger>(pinger).replies, 1);
//! ```

use crate::event::{EventKind, EventQueue};
use crate::link::{Link, LinkConfig, LinkSide, TxOutcome};
use crate::node::{Ctx, Node, NodeId, PortId};
use crate::stats::NetStats;
use crate::time::Nanos;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Identifies a link within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// A simulated network: nodes, links, clock, event queue.
pub struct Network {
    nodes: Vec<Option<Box<dyn Node>>>,
    links: Vec<Link>,
    ports: HashMap<(NodeId, PortId), (usize, LinkSide)>,
    queue: EventQueue,
    now: Nanos,
    rng: SmallRng,
    stats: NetStats,
    started: bool,
}

impl Network {
    /// Creates an empty network whose randomness is fully determined by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            ports: HashMap::new(),
            queue: EventQueue::new(),
            now: Nanos::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            stats: NetStats::default(),
            started: false,
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node<N: Node>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Connects two node ports with a link. Each port may be used once.
    pub fn connect(
        &mut self,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        config: LinkConfig,
    ) -> LinkId {
        assert!(
            !self.ports.contains_key(&a) && !self.ports.contains_key(&b),
            "port already connected"
        );
        let id = LinkId(self.links.len());
        self.links.push(Link::new(config, a, b));
        self.ports.insert(a, (id.0, LinkSide::FromA));
        self.ports.insert(b, (id.0, LinkSide::FromB));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Global counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// If the id is stale or the type does not match.
    pub fn node_ref<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.0]
            .as_ref()
            .expect("node is currently executing")
            .as_any()
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.0]
            .as_mut()
            .expect("node is currently executing")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    /// Mutable access to a link's config+state (e.g. to change impairment
    /// mid-run).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut node = self.nodes[i].take().expect("node present at start");
            let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.stats);
            node.on_start(&mut ctx);
            let (out, timers) = ctx.into_actions();
            self.nodes[i] = Some(node);
            self.apply(NodeId(i), out, timers);
        }
    }

    /// Runs until the clock reaches `until` or no events remain.
    pub fn run_until(&mut self, until: Nanos) {
        self.start_if_needed();
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            let (at, kind) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            self.dispatch(kind);
        }
        self.now = self.now.max(until);
    }

    /// Runs until no events remain (or `max` elapses), returning the final
    /// clock value. Useful for request/response protocols that quiesce.
    pub fn run_to_quiescence(&mut self, max: Nanos) -> Nanos {
        self.start_if_needed();
        while let Some(at) = self.queue.peek_time() {
            if at > max {
                break;
            }
            let (at, kind) = self.queue.pop().expect("peeked");
            self.now = at;
            self.dispatch(kind);
        }
        self.now
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { node, port, pkt } => {
                let Some(slot) = self.nodes.get_mut(node.0) else {
                    return;
                };
                let mut n = slot.take().expect("node present");
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.stats);
                n.on_packet(&mut ctx, port, pkt);
                let (out, timers) = ctx.into_actions();
                self.nodes[node.0] = Some(n);
                self.apply(node, out, timers);
            }
            EventKind::Timer { node, token } => {
                let Some(slot) = self.nodes.get_mut(node.0) else {
                    return;
                };
                let mut n = slot.take().expect("node present");
                let mut ctx = Ctx::new(self.now, &mut self.rng, &mut self.stats);
                n.on_timer(&mut ctx, token);
                let (out, timers) = ctx.into_actions();
                self.nodes[node.0] = Some(n);
                self.apply(node, out, timers);
            }
        }
    }

    /// Applies the actions a node recorded in its context.
    fn apply(
        &mut self,
        from: NodeId,
        out: Vec<(PortId, px_wire::PacketBuf)>,
        timers: Vec<(Nanos, u64)>,
    ) {
        for (port, pkt) in out {
            let Some(&(link_idx, side)) = self.ports.get(&(from, port)) else {
                // Sending on an unconnected port silently drops — matches
                // an interface with no cable; counted for debuggability.
                self.stats.bump("tx_unconnected_port", 1);
                continue;
            };
            let link = &mut self.links[link_idx];
            match link.transmit(self.now, side, pkt.len(), &mut self.rng, &mut self.stats) {
                TxOutcome::Deliver(at) => {
                    let (rx_node, rx_port) = link.receiver(side);
                    self.queue.schedule(
                        at,
                        EventKind::Deliver {
                            node: rx_node,
                            port: rx_port,
                            pkt,
                        },
                    );
                }
                TxOutcome::DropMtu | TxOutcome::DropQueue | TxOutcome::DropLoss => {}
            }
        }
        for (at, token) in timers {
            self.queue
                .schedule(at, EventKind::Timer { node: from, token });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::PacketBuf;
    use std::any::Any;

    /// Forwards every packet out the *other* port (two-port repeater).
    struct Repeater;
    impl Node for Repeater {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf) {
            let other = PortId(1 - port.0);
            ctx.send(other, pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[derive(Default)]
    struct Source {
        to_send: usize,
        arrived: Vec<Nanos>,
    }
    impl Node for Source {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.to_send {
                ctx.send(PortId(0), PacketBuf::from_payload(&[0u8; 1000]));
            }
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, _pkt: PacketBuf) {
            self.arrived.push(ctx.now);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[derive(Default)]
    struct Sink {
        got: usize,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: PacketBuf) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn gig(delay_us: u64) -> LinkConfig {
        LinkConfig::new(1_000_000_000, Nanos::from_micros(delay_us), 1500)
    }

    #[test]
    fn packets_traverse_a_chain() {
        let mut net = Network::new(1);
        let src = net.add_node(Source {
            to_send: 5,
            ..Default::default()
        });
        let mid = net.add_node(Repeater);
        let dst = net.add_node(Sink::default());
        net.connect((src, PortId(0)), (mid, PortId(0)), gig(10));
        net.connect((mid, PortId(1)), (dst, PortId(0)), gig(10));
        net.run_until(Nanos::from_millis(10));
        assert_eq!(net.node_ref::<Sink>(dst).got, 5);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let mut net = Network::new(seed);
            let src = net.add_node(Source {
                to_send: 50,
                ..Default::default()
            });
            let dst = net.add_node(Sink::default());
            let cfg = gig(5).with_netem(crate::netem::Netem::delay_loss(Nanos::ZERO, 0.3));
            net.connect((src, PortId(0)), (dst, PortId(0)), cfg);
            net.run_until(Nanos::from_millis(100));
            (net.node_ref::<Sink>(dst).got, net.stats().pkts_lost)
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (with overwhelming probability) differ.
        let a = run(7);
        let b = run(8);
        assert!(a != b || a.1 > 0);
    }

    #[test]
    fn unconnected_port_counts_drop() {
        let mut net = Network::new(1);
        let src = net.add_node(Source {
            to_send: 3,
            ..Default::default()
        });
        net.run_until(Nanos::from_millis(1));
        assert_eq!(net.stats().get("tx_unconnected_port"), 3);
        let _ = src;
    }

    #[test]
    fn quiescence_returns_last_event_time() {
        let mut net = Network::new(1);
        let src = net.add_node(Source {
            to_send: 1,
            ..Default::default()
        });
        let dst = net.add_node(Sink::default());
        net.connect((src, PortId(0)), (dst, PortId(0)), gig(100));
        let end = net.run_to_quiescence(Nanos::from_secs(10));
        // 1000 B at 1 Gbps = 8 µs serialization + 100 µs propagation.
        assert_eq!(end, Nanos::from_micros(108));
    }

    #[test]
    #[should_panic(expected = "port already connected")]
    fn double_connect_panics() {
        let mut net = Network::new(1);
        let a = net.add_node(Sink::default());
        let b = net.add_node(Sink::default());
        let c = net.add_node(Sink::default());
        net.connect((a, PortId(0)), (b, PortId(0)), gig(1));
        net.connect((a, PortId(0)), (c, PortId(0)), gig(1));
    }
}
