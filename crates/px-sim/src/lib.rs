//! # px-sim — deterministic discrete-event network simulator
//!
//! The substrate every PacketExpress experiment runs on. The paper's
//! evaluation used a DPDK testbed with ConnectX-7 400 GbE NICs; this crate
//! replaces that hardware with a simulator that is *byte-accurate at the
//! packet level* (real IPv4/TCP/UDP packets flow through it) and
//! *calibrated at the performance level* (a CPU-cycle cost model, NIC
//! offload engines, and a shared memory bus reproduce where the hardware
//! bottlenecks are).
//!
//! Design rules, after smoltcp: simple and robust over clever; fully
//! deterministic — all randomness flows from one seeded PRNG, so a seed
//! identifies a run exactly.
//!
//! Main pieces:
//!
//! * [`network::Network`] — the event loop; owns nodes and links.
//! * [`node::Node`] — trait implemented by hosts, routers, gateways.
//! * [`link::Link`] — bandwidth/propagation/queueing/MTU/loss.
//! * [`netem::Netem`] — Linux-netem-style impairments (delay, jitter,
//!   loss) used to emulate the WAN of §5.2.
//! * [`router::Router`] — IPv4 forwarding with TTL, fragmentation,
//!   ICMP generation, and configurable ICMP blackholes.
//! * [`nic`] — LRO/GRO/TSO/GSO/RSS offload engines.
//! * [`cpu::CostModel`] / [`calib`] — the calibrated cycle model.
//! * [`membus::MemBus`] — shared memory-bandwidth timeline (what
//!   header-only DMA relieves).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calib;
pub mod cpu;
pub mod event;
pub mod link;
pub mod membus;
pub mod netem;
pub mod network;
pub mod nic;
pub mod node;
pub mod pcap;
pub mod router;
pub mod stats;
pub mod time;

pub use cpu::{CostModel, CpuServer};
pub use link::{Link, LinkConfig};
pub use membus::MemBus;
pub use netem::Netem;
pub use network::Network;
pub use node::{Ctx, Node, NodeId, PortId};
pub use router::Router;
pub use stats::NetStats;
pub use time::Nanos;
