//! Linux `tc-netem`-style impairments: fixed delay, uniform jitter, and
//! i.i.d. random loss.
//!
//! The paper's WAN experiments (§5.2) configure netem with "10 ms of delay
//! and a 0.01% loss rate"; attaching a [`Netem`] to a simulated link
//! reproduces exactly that.

use crate::time::Nanos;
use rand::rngs::SmallRng;
use rand::Rng;

/// An impairment profile applied to packets traversing a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Netem {
    /// Fixed one-way delay added to every packet.
    pub delay: Nanos,
    /// Uniform jitter in `[0, jitter]` added on top of `delay`.
    pub jitter: Nanos,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
}

impl Default for Netem {
    fn default() -> Self {
        Netem {
            delay: Nanos::ZERO,
            jitter: Nanos::ZERO,
            loss: 0.0,
        }
    }
}

impl Netem {
    /// No impairment at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's §5.2 WAN profile: 10 ms delay, 0.01% loss.
    pub fn paper_wan() -> Self {
        Netem {
            delay: Nanos::from_millis(10),
            jitter: Nanos::ZERO,
            loss: 1e-4,
        }
    }

    /// Fixed delay only.
    pub fn delay(delay: Nanos) -> Self {
        Netem {
            delay,
            ..Self::default()
        }
    }

    /// Fixed delay plus loss.
    pub fn delay_loss(delay: Nanos, loss: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&loss));
        Netem {
            delay,
            jitter: Nanos::ZERO,
            loss,
        }
    }

    /// Decides whether a packet is dropped.
    pub fn drops(&self, rng: &mut SmallRng) -> bool {
        self.loss > 0.0 && rng.gen::<f64>() < self.loss
    }

    /// Samples the extra latency for one packet.
    pub fn latency(&self, rng: &mut SmallRng) -> Nanos {
        if self.jitter == Nanos::ZERO {
            self.delay
        } else {
            self.delay + Nanos(rng.gen_range(0..=self.jitter.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn loss_rate_statistics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let netem = Netem::delay_loss(Nanos::ZERO, 0.1);
        let n = 100_000;
        let dropped = (0..n).filter(|_| netem.drops(&mut rng)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut rng = SmallRng::seed_from_u64(7);
        let netem = Netem::delay(Nanos::from_millis(10));
        assert!((0..1000).all(|_| !netem.drops(&mut rng)));
    }

    #[test]
    fn jitter_bounded_and_varies() {
        let mut rng = SmallRng::seed_from_u64(3);
        let netem = Netem {
            delay: Nanos::from_millis(1),
            jitter: Nanos::from_millis(2),
            loss: 0.0,
        };
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let l = netem.latency(&mut rng);
            assert!(l >= Nanos::from_millis(1) && l <= Nanos::from_millis(3));
            distinct.insert(l.0);
        }
        assert!(distinct.len() > 10, "jitter should vary");
    }

    #[test]
    fn paper_profile() {
        let p = Netem::paper_wan();
        assert_eq!(p.delay, Nanos::from_millis(10));
        assert_eq!(p.loss, 1e-4);
    }
}
