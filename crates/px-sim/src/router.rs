//! An IPv4 router node: longest-prefix forwarding, TTL handling, egress
//! fragmentation, and ICMP generation — with a configurable **ICMP
//! blackhole** mode that silently suppresses the *fragmentation needed*
//! messages classic PMTUD depends on (§3 of the paper: "many routers and
//! middleboxes are configured to suppress ICMP messages").
//!
//! The simulator carries bare IPv4 packets on links (no Ethernet framing;
//! MTUs are IP-level, matching how the paper quotes them).

use crate::node::{Ctx, Node, PortId};
use px_wire::frag;
use px_wire::icmpv4::Icmpv4Message;
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::{IpProtocol, PacketBuf};
use std::any::Any;
use std::net::Ipv4Addr;

/// One forwarding-table entry.
#[derive(Debug, Clone, Copy)]
pub struct RouteEntry {
    /// Network prefix.
    pub prefix: Ipv4Addr,
    /// Prefix length in bits.
    pub len: u8,
    /// Egress port.
    pub port: PortId,
}

impl RouteEntry {
    fn matches(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.len));
        (u32::from(addr) & mask) == (u32::from(self.prefix) & mask)
    }
}

/// An IPv4 router.
pub struct Router {
    /// This router's address (ICMP source).
    pub addr: Ipv4Addr,
    /// Per-port egress MTUs (index = port number).
    pub port_mtu: Vec<usize>,
    routes: Vec<RouteEntry>,
    /// When set, the router never generates ICMP errors — the "ICMP
    /// blackhole" misconfiguration that breaks classic PMTUD.
    pub icmp_blackhole: bool,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (any reason).
    pub dropped: u64,
}

impl Router {
    /// Creates a router with the given address and per-port MTUs.
    pub fn new(addr: Ipv4Addr, port_mtu: Vec<usize>) -> Self {
        Router {
            addr,
            port_mtu,
            routes: Vec::new(),
            icmp_blackhole: false,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Adds a route. More-specific prefixes win regardless of insertion
    /// order.
    pub fn add_route(&mut self, prefix: Ipv4Addr, len: u8, port: PortId) -> &mut Self {
        assert!(len <= 32);
        assert!(
            (port.0) < self.port_mtu.len(),
            "route points at a port without an MTU"
        );
        self.routes.push(RouteEntry { prefix, len, port });
        self
    }

    /// Configures this router as an ICMP blackhole.
    pub fn with_blackhole(mut self) -> Self {
        self.icmp_blackhole = true;
        self
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.len)
            .map(|r| r.port)
    }

    /// Builds and emits an ICMP error back towards `orig_src`, unless
    /// blackholed. `original` is the offending packet's bytes.
    fn send_icmp(&mut self, ctx: &mut Ctx<'_>, original: &[u8], msg: Icmpv4Message) {
        if self.icmp_blackhole {
            ctx.stats.icmp_suppressed += 1;
            return;
        }
        let orig = Ipv4Packet::new_unchecked(original);
        let dst = orig.src();
        let Some(port) = self.lookup(dst) else {
            return;
        };
        let body = msg.to_bytes();
        let repr = Ipv4Repr::new(self.addr, dst, IpProtocol::Icmp, body.len());
        if let Ok(pkt) = repr.build_packet(&body) {
            ctx.stats.icmp_generated += 1;
            ctx.send(port, PacketBuf::from_payload(&pkt));
        }
    }
}

impl Node for Router {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
        let bytes = pkt.as_slice().to_vec();
        let Ok(ip) = Ipv4Packet::new_checked(&bytes[..]) else {
            self.dropped += 1;
            return;
        };
        // TTL.
        if ip.ttl() <= 1 {
            self.dropped += 1;
            let excerpt = Icmpv4Message::excerpt_of(&bytes);
            self.send_icmp(
                ctx,
                &bytes,
                Icmpv4Message::TimeExceeded {
                    code: 0,
                    original: excerpt,
                },
            );
            return;
        }
        // Route.
        let Some(out_port) = self.lookup(ip.dst()) else {
            self.dropped += 1;
            let excerpt = Icmpv4Message::excerpt_of(&bytes);
            self.send_icmp(
                ctx,
                &bytes,
                Icmpv4Message::Unreachable {
                    code: 0,
                    original: excerpt,
                },
            );
            return;
        };
        let mtu = self.port_mtu[out_port.0];

        // Decrement TTL in place (patches the checksum incrementally).
        let mut fwd = bytes.clone();
        Ipv4Packet::new_unchecked(&mut fwd[..]).decrement_ttl();

        let total_len = ip.total_len();
        if total_len <= mtu {
            self.forwarded += 1;
            ctx.send(out_port, PacketBuf::from_payload(&fwd));
            return;
        }
        if ip.dont_frag() {
            // RFC 1191: drop and report the next-hop MTU — unless this
            // router is an ICMP blackhole, in which case the packet just
            // vanishes (the failure mode F-PMTUD is immune to).
            self.dropped += 1;
            ctx.stats.pkts_dropped_df += 1;
            let excerpt = Icmpv4Message::excerpt_of(&bytes);
            self.send_icmp(
                ctx,
                &bytes,
                Icmpv4Message::FragNeeded {
                    next_hop_mtu: mtu as u16,
                    original: excerpt,
                },
            );
            return;
        }
        match frag::fragment(&fwd, mtu) {
            Ok(frags) => {
                self.forwarded += 1;
                ctx.stats.fragments_created += frags.len() as u64;
                for f in frags {
                    ctx.send(out_port, PacketBuf::from_payload(&f));
                }
            }
            Err(_) => {
                self.dropped += 1;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::network::Network;
    use crate::node::NodeId;
    use crate::time::Nanos;

    /// Collects every packet it receives.
    #[derive(Default)]
    pub struct Collector {
        pub pkts: Vec<Vec<u8>>,
    }
    impl Node for Collector {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: PacketBuf) {
            self.pkts.push(pkt.as_slice().to_vec());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends a fixed set of packets at start.
    pub struct Injector {
        pub pkts: Vec<Vec<u8>>,
    }
    impl Node for Injector {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for p in self.pkts.drain(..) {
                ctx.send(PortId(0), PacketBuf::from_payload(&p));
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: PacketBuf) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 1);

    fn udp_ip_packet(payload_len: usize, df: bool) -> Vec<u8> {
        let seg = px_wire::UdpRepr {
            src_port: 9,
            dst_port: 9,
        }
        .build_datagram(A, B, &vec![0xAB; payload_len])
        .unwrap();
        let mut repr = Ipv4Repr::new(A, B, IpProtocol::Udp, seg.len());
        repr.dont_frag = df;
        repr.ident = 0x600D;
        repr.build_packet(&seg).unwrap()
    }

    /// host A -- router -- host B, router egress MTU 1500 on B's side.
    fn topo(blackhole: bool) -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(3);
        let src = net.add_node(Injector { pkts: vec![] });
        let mut router = Router::new(Ipv4Addr::new(10, 0, 0, 254), vec![9000, 1500]);
        router.add_route(Ipv4Addr::new(10, 0, 1, 0), 24, PortId(0));
        router.add_route(Ipv4Addr::new(10, 0, 2, 0), 24, PortId(1));
        if blackhole {
            router.icmp_blackhole = true;
        }
        let r = net.add_node(router);
        let dst = net.add_node(Collector::default());
        net.connect(
            (src, PortId(0)),
            (r, PortId(0)),
            LinkConfig::new(10_000_000_000, Nanos(1000), 9000),
        );
        net.connect(
            (r, PortId(1)),
            (dst, PortId(0)),
            LinkConfig::new(10_000_000_000, Nanos(1000), 1500),
        );
        (net, src, r, dst)
    }

    #[test]
    fn forwards_and_decrements_ttl() {
        let (mut net, src, _r, dst) = topo(false);
        net.node_mut::<Injector>(src).pkts = vec![udp_ip_packet(100, false)];
        net.run_until(Nanos::from_millis(1));
        let got = &net.node_ref::<Collector>(dst).pkts;
        assert_eq!(got.len(), 1);
        let ip = Ipv4Packet::new_checked(&got[0][..]).unwrap();
        assert_eq!(ip.ttl(), 63);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn fragments_oversize_packets_at_egress() {
        let (mut net, src, _r, dst) = topo(false);
        net.node_mut::<Injector>(src).pkts = vec![udp_ip_packet(4000, false)];
        net.run_until(Nanos::from_millis(1));
        let got = &net.node_ref::<Collector>(dst).pkts;
        assert!(got.len() >= 3);
        assert!(got.iter().all(|p| p.len() <= 1500));
        assert_eq!(net.stats().fragments_created, got.len() as u64);
        // They reassemble to the original payload.
        let mut re = px_wire::frag::Reassembler::new();
        let mut complete = None;
        for p in got {
            if let px_wire::frag::ReassemblyResult::Complete { packet, .. } = re.push(p, 0).unwrap()
            {
                complete = Some(packet);
            }
        }
        let packet = complete.expect("reassembles");
        let ip = Ipv4Packet::new_checked(&packet[..]).unwrap();
        assert_eq!(ip.total_len(), 20 + 8 + 4000);
    }

    #[test]
    fn df_packet_elicits_frag_needed() {
        let (mut net, src, _r, _dst) = topo(false);
        net.node_mut::<Injector>(src).pkts = vec![udp_ip_packet(4000, true)];
        net.run_until(Nanos::from_millis(1));
        assert_eq!(net.stats().pkts_dropped_df, 1);
        assert_eq!(net.stats().icmp_generated, 1);
    }

    #[test]
    fn blackhole_suppresses_icmp() {
        let (mut net, src, _r, dst) = topo(true);
        net.node_mut::<Injector>(src).pkts = vec![udp_ip_packet(4000, true)];
        net.run_until(Nanos::from_millis(1));
        assert_eq!(net.stats().icmp_generated, 0);
        assert_eq!(net.stats().icmp_suppressed, 1);
        assert!(net.node_ref::<Collector>(dst).pkts.is_empty());
    }

    #[test]
    fn no_route_drops() {
        let mut r = Router::new(Ipv4Addr::new(1, 1, 1, 1), vec![1500]);
        r.add_route(Ipv4Addr::new(10, 0, 1, 0), 24, PortId(0));
        assert_eq!(r.lookup(Ipv4Addr::new(10, 0, 1, 5)), Some(PortId(0)));
        assert_eq!(r.lookup(Ipv4Addr::new(192, 168, 0, 1)), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut r = Router::new(Ipv4Addr::new(1, 1, 1, 1), vec![1500, 1500, 1500]);
        r.add_route(Ipv4Addr::new(0, 0, 0, 0), 0, PortId(0)); // default
        r.add_route(Ipv4Addr::new(10, 0, 0, 0), 8, PortId(1));
        r.add_route(Ipv4Addr::new(10, 0, 2, 0), 24, PortId(2));
        assert_eq!(r.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(PortId(0)));
        assert_eq!(r.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(PortId(1)));
        assert_eq!(r.lookup(Ipv4Addr::new(10, 0, 2, 77)), Some(PortId(2)));
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded() {
        let (mut net, src, _r, dst) = topo(false);
        let mut pkt = udp_ip_packet(100, false);
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut pkt[..]);
            ip.set_ttl(1);
            ip.fill_checksum();
        }
        net.node_mut::<Injector>(src).pkts = vec![pkt];
        net.run_until(Nanos::from_millis(1));
        assert!(net.node_ref::<Collector>(dst).pkts.is_empty());
        assert_eq!(net.stats().icmp_generated, 1);
    }
}
