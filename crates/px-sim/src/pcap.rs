//! Packet capture: classic libpcap-format output from simulations.
//!
//! A [`Tap`] is a transparent two-port node you splice into any link;
//! everything crossing it is recorded with its simulated timestamp. The
//! capture serialises to the classic pcap format (`LINKTYPE_RAW`, since
//! the simulator carries bare IPv4 packets), so `tcpdump -r` and
//! Wireshark open simulation traces directly — invaluable when debugging
//! gateway translations.

use crate::node::{Ctx, Node, PortId};
use crate::time::Nanos;
use px_wire::PacketBuf;
use std::any::Any;

/// pcap global-header magic for microsecond timestamps.
const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_RAW: packets begin with the IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;

/// One captured packet.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// Simulated capture time.
    pub at: Nanos,
    /// Which tap port the packet arrived on (0 or 1 — gives direction).
    pub ingress: PortId,
    /// The packet bytes.
    pub bytes: Vec<u8>,
}

/// An in-memory packet capture.
#[derive(Debug, Default, Clone)]
pub struct Capture {
    /// Captured packets in arrival order.
    pub packets: Vec<CapturedPacket>,
}

impl Capture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet.
    pub fn record(&mut self, at: Nanos, ingress: PortId, bytes: &[u8]) {
        self.packets.push(CapturedPacket {
            at,
            ingress,
            bytes: bytes.to_vec(),
        });
    }

    /// Serialises the capture as a classic pcap file (LINKTYPE_RAW,
    /// microsecond timestamps).
    pub fn to_pcap(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.packets.len() * 64);
        out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&2u16.to_le_bytes()); // version major
        out.extend_from_slice(&4u16.to_le_bytes()); // version minor
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        for p in &self.packets {
            let secs = (p.at.0 / 1_000_000_000) as u32;
            let usecs = ((p.at.0 % 1_000_000_000) / 1_000) as u32;
            out.extend_from_slice(&secs.to_le_bytes());
            out.extend_from_slice(&usecs.to_le_bytes());
            out.extend_from_slice(&(p.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&(p.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&p.bytes);
        }
        out
    }

    /// Writes the capture to a `.pcap` file.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_pcap())
    }

    /// Parses a classic pcap byte stream back into packets (timestamps
    /// only to µs precision; ingress ports are not encoded in pcap and
    /// come back as port 0). Round-trip support mostly for tests.
    pub fn from_pcap(data: &[u8]) -> Option<Capture> {
        if data.len() < 24 {
            return None;
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().ok()?);
        if magic != PCAP_MAGIC {
            return None;
        }
        let mut cap = Capture::new();
        let mut off = 24usize;
        while off + 16 <= data.len() {
            let secs = u32::from_le_bytes(data[off..off + 4].try_into().ok()?);
            let usecs = u32::from_le_bytes(data[off + 4..off + 8].try_into().ok()?);
            let incl = u32::from_le_bytes(data[off + 8..off + 12].try_into().ok()?) as usize;
            off += 16;
            if off + incl > data.len() {
                return None;
            }
            cap.packets.push(CapturedPacket {
                at: Nanos(u64::from(secs) * 1_000_000_000 + u64::from(usecs) * 1_000),
                ingress: PortId(0),
                bytes: data[off..off + incl].to_vec(),
            });
            off += incl;
        }
        Some(cap)
    }
}

/// A transparent two-port wiretap: forwards every packet to the opposite
/// port and records it. Splice between any two nodes:
///
/// ```text
/// before:  a ──────── b
/// after:   a ── tap ── b
/// ```
#[derive(Debug, Default)]
pub struct Tap {
    /// Everything that crossed this tap.
    pub capture: Capture,
}

impl Tap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Node for Tap {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf) {
        self.capture.record(ctx.now, port, pkt.as_slice());
        ctx.send(PortId(1 - port.0), pkt);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::network::Network;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::{IpProtocol, UdpRepr};
    use std::net::Ipv4Addr;

    #[test]
    fn pcap_roundtrip() {
        let mut cap = Capture::new();
        cap.record(Nanos::from_micros(1500), PortId(0), &[1, 2, 3, 4]);
        cap.record(Nanos::from_secs(2), PortId(1), &[5, 6]);
        let bytes = cap.to_pcap();
        assert_eq!(&bytes[0..4], &PCAP_MAGIC.to_le_bytes());
        let back = Capture::from_pcap(&bytes).expect("parses");
        assert_eq!(back.packets.len(), 2);
        assert_eq!(back.packets[0].bytes, vec![1, 2, 3, 4]);
        assert_eq!(back.packets[0].at, Nanos::from_micros(1500));
        assert_eq!(back.packets[1].at, Nanos::from_secs(2));
    }

    #[test]
    fn garbage_rejected() {
        assert!(Capture::from_pcap(&[0u8; 10]).is_none());
        assert!(Capture::from_pcap(&[0xFFu8; 40]).is_none());
    }

    /// A tap spliced between two nodes records every crossing packet and
    /// stays transparent.
    #[test]
    fn tap_is_transparent_and_records() {
        use std::any::Any;

        struct Sender;
        impl crate::node::Node for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let dg = UdpRepr {
                    src_port: 1,
                    dst_port: 2,
                }
                .build_datagram(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), b"hi")
                .unwrap();
                let pkt = Ipv4Repr::new(
                    Ipv4Addr::new(1, 1, 1, 1),
                    Ipv4Addr::new(2, 2, 2, 2),
                    IpProtocol::Udp,
                    dg.len(),
                )
                .build_packet(&dg)
                .unwrap();
                ctx.send(PortId(0), PacketBuf::from_payload(&pkt));
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: PacketBuf) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        #[derive(Default)]
        struct Sink {
            got: usize,
        }
        impl crate::node::Node for Sink {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: PacketBuf) {
                self.got += 1;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut net = Network::new(1);
        let s = net.add_node(Sender);
        let tap = net.add_node(Tap::new());
        let d = net.add_node(Sink::default());
        let cfg = LinkConfig::new(1_000_000_000, Nanos::from_micros(1), 1500);
        net.connect((s, PortId(0)), (tap, PortId(0)), cfg);
        net.connect((tap, PortId(1)), (d, PortId(0)), cfg);
        net.run_until(Nanos::from_millis(1));
        assert_eq!(net.node_ref::<Sink>(d).got, 1);
        let cap = &net.node_ref::<Tap>(tap).capture;
        assert_eq!(cap.packets.len(), 1);
        assert_eq!(cap.packets[0].ingress, PortId(0));
        // The pcap serialisation of a real capture parses back.
        let back = Capture::from_pcap(&cap.to_pcap()).unwrap();
        assert_eq!(back.packets[0].bytes, cap.packets[0].bytes);
    }
}
