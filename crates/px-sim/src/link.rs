//! Point-to-point links: bandwidth, propagation delay, a drop-tail byte
//! queue, an MTU, and optional netem impairment.
//!
//! The transmission model is analytic rather than per-byte: each direction
//! keeps a `next_free` timestamp; a packet handed to the link begins
//! serializing at `max(now, next_free)` and finishes one transmission time
//! later. The implied queue occupancy is `(next_free - now) · bw`, and the
//! packet is drop-tailed when that exceeds the configured queue capacity.
//! This is exact for FIFO links and avoids one event per byte.

use crate::netem::Netem;
use crate::node::{NodeId, PortId};
use crate::stats::NetStats;
use crate::time::Nanos;
use rand::rngs::SmallRng;

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: Nanos,
    /// Largest frame the link carries; larger packets are dropped and
    /// counted (senders are expected to respect the MTU or fragment).
    pub mtu: usize,
    /// Drop-tail queue capacity in bytes (per direction).
    pub queue_bytes: usize,
    /// Impairment profile (delay/jitter/loss), applied per direction.
    pub netem: Netem,
}

impl LinkConfig {
    /// A clean link with the given rate, delay and MTU and a queue sized
    /// to one bandwidth-delay product (min 256 KB).
    pub fn new(bandwidth_bps: u64, propagation: Nanos, mtu: usize) -> Self {
        let bdp = (bandwidth_bps as f64 / 8.0 * propagation.as_secs_f64()) as usize;
        LinkConfig {
            bandwidth_bps,
            propagation,
            mtu,
            queue_bytes: bdp.max(256 * 1024),
            netem: Netem::none(),
        }
    }

    /// Sets the netem profile.
    pub fn with_netem(mut self, netem: Netem) -> Self {
        self.netem = netem;
        self
    }

    /// Sets the queue capacity.
    pub fn with_queue(mut self, bytes: usize) -> Self {
        self.queue_bytes = bytes;
        self
    }
}

/// Dynamic per-direction state.
#[derive(Debug, Clone, Copy, Default)]
struct Direction {
    next_free: Nanos,
}

/// A bidirectional point-to-point link between two node ports.
#[derive(Debug)]
pub struct Link {
    /// Configuration (symmetric for both directions).
    pub config: LinkConfig,
    /// Endpoint A.
    pub a: (NodeId, PortId),
    /// Endpoint B.
    pub b: (NodeId, PortId),
    dirs: [Direction; 2],
}

/// Identifies which endpoint is transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSide {
    /// Transmission from endpoint A towards B.
    FromA,
    /// Transmission from endpoint B towards A.
    FromB,
}

/// The outcome of handing a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet will be delivered at the given time.
    Deliver(Nanos),
    /// Dropped: exceeds the link MTU.
    DropMtu,
    /// Dropped: the queue is full.
    DropQueue,
    /// Dropped: random loss (netem).
    DropLoss,
}

impl Link {
    /// Creates a link between two endpoints.
    pub fn new(config: LinkConfig, a: (NodeId, PortId), b: (NodeId, PortId)) -> Self {
        Link {
            config,
            a,
            b,
            dirs: [Direction::default(); 2],
        }
    }

    /// The receiving endpoint for a given side.
    pub fn receiver(&self, side: LinkSide) -> (NodeId, PortId) {
        match side {
            LinkSide::FromA => self.b,
            LinkSide::FromB => self.a,
        }
    }

    /// Hands a packet of `bytes` to the link at `now`. Returns what
    /// happened; on `Deliver`, the time the last byte arrives at the
    /// receiver.
    pub fn transmit(
        &mut self,
        now: Nanos,
        side: LinkSide,
        bytes: usize,
        rng: &mut SmallRng,
        stats: &mut NetStats,
    ) -> TxOutcome {
        if bytes > self.config.mtu {
            stats.pkts_dropped_mtu += 1;
            return TxOutcome::DropMtu;
        }
        let dir = &mut self.dirs[match side {
            LinkSide::FromA => 0,
            LinkSide::FromB => 1,
        }];
        // Implied queue occupancy if we enqueue now.
        let backlog = dir.next_free.saturating_sub(now);
        let queued_bytes =
            (backlog.as_secs_f64() * self.config.bandwidth_bps as f64 / 8.0) as usize;
        if queued_bytes + bytes > self.config.queue_bytes {
            stats.pkts_dropped_queue += 1;
            return TxOutcome::DropQueue;
        }
        if self.config.netem.drops(rng) {
            stats.pkts_lost += 1;
            return TxOutcome::DropLoss;
        }
        let start = now.max(dir.next_free);
        let tx = Nanos::tx_time(bytes, self.config.bandwidth_bps);
        dir.next_free = start + tx;
        let arrival = dir.next_free + self.config.propagation + self.config.netem.latency(rng);
        stats.pkts_delivered += 1;
        stats.bytes_delivered += bytes as u64;
        TxOutcome::Deliver(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ends() -> ((NodeId, PortId), (NodeId, PortId)) {
        ((NodeId(0), PortId(0)), (NodeId(1), PortId(0)))
    }

    #[test]
    fn serialization_plus_propagation() {
        let (a, b) = ends();
        // 1 Gbps, 1 ms propagation: a 1250-byte packet takes 10 µs to
        // serialize, so it arrives at 1.01 ms.
        let mut link = Link::new(
            LinkConfig::new(1_000_000_000, Nanos::from_millis(1), 1500),
            a,
            b,
        );
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stats = NetStats::default();
        match link.transmit(Nanos::ZERO, LinkSide::FromA, 1250, &mut rng, &mut stats) {
            TxOutcome::Deliver(at) => {
                assert_eq!(at, Nanos::from_micros(10) + Nanos::from_millis(1))
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(link.receiver(LinkSide::FromA), b);
        assert_eq!(link.receiver(LinkSide::FromB), a);
    }

    #[test]
    fn back_to_back_packets_queue() {
        let (a, b) = ends();
        let mut link = Link::new(LinkConfig::new(1_000_000_000, Nanos::ZERO, 1500), a, b);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stats = NetStats::default();
        let t1 = match link.transmit(Nanos::ZERO, LinkSide::FromA, 1250, &mut rng, &mut stats) {
            TxOutcome::Deliver(at) => at,
            other => panic!("{other:?}"),
        };
        let t2 = match link.transmit(Nanos::ZERO, LinkSide::FromA, 1250, &mut rng, &mut stats) {
            TxOutcome::Deliver(at) => at,
            other => panic!("{other:?}"),
        };
        assert_eq!(t2 - t1, Nanos::from_micros(10)); // one serialization apart
    }

    #[test]
    fn directions_are_independent() {
        let (a, b) = ends();
        let mut link = Link::new(LinkConfig::new(1_000_000_000, Nanos::ZERO, 1500), a, b);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stats = NetStats::default();
        let t1 = match link.transmit(Nanos::ZERO, LinkSide::FromA, 1250, &mut rng, &mut stats) {
            TxOutcome::Deliver(at) => at,
            other => panic!("{other:?}"),
        };
        let t2 = match link.transmit(Nanos::ZERO, LinkSide::FromB, 1250, &mut rng, &mut stats) {
            TxOutcome::Deliver(at) => at,
            other => panic!("{other:?}"),
        };
        assert_eq!(t1, t2); // no cross-direction interference
    }

    #[test]
    fn oversize_packet_dropped() {
        let (a, b) = ends();
        let mut link = Link::new(LinkConfig::new(1_000_000_000, Nanos::ZERO, 1500), a, b);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stats = NetStats::default();
        assert_eq!(
            link.transmit(Nanos::ZERO, LinkSide::FromA, 9000, &mut rng, &mut stats),
            TxOutcome::DropMtu
        );
        assert_eq!(stats.pkts_dropped_mtu, 1);
    }

    #[test]
    fn queue_overflow_droptails() {
        let (a, b) = ends();
        let cfg = LinkConfig::new(1_000_000, Nanos::ZERO, 1500).with_queue(3000);
        let mut link = Link::new(cfg, a, b);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stats = NetStats::default();
        let mut drops = 0;
        for _ in 0..10 {
            if link.transmit(Nanos::ZERO, LinkSide::FromA, 1000, &mut rng, &mut stats)
                == TxOutcome::DropQueue
            {
                drops += 1;
            }
        }
        assert!(drops >= 6, "expected most packets to drop, got {drops}");
        assert_eq!(stats.pkts_dropped_queue, drops);
    }

    #[test]
    fn netem_loss_applies() {
        let (a, b) = ends();
        let cfg = LinkConfig::new(1_000_000_000, Nanos::ZERO, 1500)
            .with_netem(Netem::delay_loss(Nanos::ZERO, 1.0));
        let mut link = Link::new(cfg, a, b);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut stats = NetStats::default();
        assert_eq!(
            link.transmit(Nanos::ZERO, LinkSide::FromA, 100, &mut rng, &mut stats),
            TxOutcome::DropLoss
        );
    }
}
