//! NIC offload engines.
//!
//! Two layers live here:
//!
//! 1. **Packet surgery** — real, byte-accurate TCP coalescing
//!    ([`try_coalesce`], [`coalesce_batch`]) and segmentation
//!    ([`tso_split`]) on real IPv4/TCP packets. These are the primitives
//!    behind endpoint LRO/GRO/TSO *and* the PXGW merge/split engines.
//! 2. **The RX saturation model** ([`rx_saturation_bps`]) — the
//!    calibrated cycles-per-byte arithmetic that turns an offload
//!    configuration into the single-core receive throughput of
//!    Figs. 1b/1c. It uses only [`crate::calib`] constants.

use crate::calib;
use crate::cpu::CostModel;
use px_wire::ipv4::Ipv4Packet;
use px_wire::pool::{BufPool, PacketSink, SgPacket, SgRc};
use px_wire::tcp::{TcpSegment, MAX_HEADER_LEN};
use px_wire::{bytes, checksum, Error, FlowKey, IpProtocol, Result};

/// Which offloads a NIC/host enables (the knobs of §5's setup:
/// "We turn on TSO, LRO, GSO, and GRO on all endpoints").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadConfig {
    /// NIC-level large receive offload (hardware coalescing).
    pub lro: bool,
    /// Kernel-level generic receive offload (software coalescing).
    pub gro: bool,
    /// TCP segmentation offload (NIC splits oversized TX segments).
    pub tso: bool,
    /// Generic segmentation offload (software TSO fallback).
    pub gso: bool,
    /// Number of RX queues served by RSS (1 = no RSS).
    pub rx_queues: usize,
    /// Header-only DMA into NIC memory (payloads never cross the host
    /// memory bus) — the experimental mode of Fig. 5a/5b.
    pub header_only_dma: bool,
}

impl OffloadConfig {
    /// Everything off (the "None" bars of Fig. 1b).
    pub fn none() -> Self {
        OffloadConfig {
            rx_queues: 1,
            ..Default::default()
        }
    }

    /// The paper's default endpoint config: TSO, LRO, GSO, GRO all on.
    pub fn all_on() -> Self {
        OffloadConfig {
            lro: true,
            gro: true,
            tso: true,
            gso: true,
            rx_queues: 1,
            header_only_dma: false,
        }
    }
}

/// The flow key of an IPv4+TCP/UDP packet, if it has one.
pub fn flow_key_of(packet: &[u8]) -> Result<FlowKey> {
    let ip = Ipv4Packet::new_checked(packet)?;
    match ip.protocol() {
        IpProtocol::Tcp => {
            let tcp = TcpSegment::new_checked(ip.payload())?;
            Ok(FlowKey::tcp(
                ip.src(),
                tcp.src_port(),
                ip.dst(),
                tcp.dst_port(),
            ))
        }
        IpProtocol::Udp => {
            let udp = px_wire::UdpDatagram::new_checked(ip.payload())?;
            Ok(FlowKey::udp(
                ip.src(),
                udp.src_port(),
                ip.dst(),
                udp.dst_port(),
            ))
        }
        _ => Err(Error::Unsupported),
    }
}

/// Attempts to coalesce TCP packet `b` onto `a` (both complete IPv4
/// packets), LRO/GRO-style. Succeeds only when it is transparent to the
/// receiver:
///
/// * same 5-tuple, `b.seq == a.seq + a.payload`, equal ACK and window
///   (pure in-order data continuation),
/// * flags restricted to ACK/PSH on both (no SYN/FIN/RST/URG),
/// * identical TCP option *layout* (timestamp values may differ; the
///   merged packet keeps `a`'s options, as Linux GRO does),
/// * merged size within `max_size`,
/// * neither packet is an IP fragment.
///
/// Returns the merged packet, or `None` when the pair is not mergeable.
pub fn try_coalesce(a: &[u8], b: &[u8], max_size: usize) -> Option<Vec<u8>> {
    let ip_a = Ipv4Packet::new_checked(a).ok()?;
    let ip_b = Ipv4Packet::new_checked(b).ok()?;
    if ip_a.protocol() != IpProtocol::Tcp || ip_b.protocol() != IpProtocol::Tcp {
        return None;
    }
    if ip_a.is_fragment() || ip_b.is_fragment() {
        return None;
    }
    if ip_a.src() != ip_b.src() || ip_a.dst() != ip_b.dst() || ip_a.tos() != ip_b.tos() {
        return None;
    }
    let t_a = TcpSegment::new_checked(ip_a.payload()).ok()?;
    let t_b = TcpSegment::new_checked(ip_b.payload()).ok()?;
    if t_a.src_port() != t_b.src_port() || t_a.dst_port() != t_b.dst_port() {
        return None;
    }
    let fa = t_a.flags();
    let fb = t_b.flags();
    let plain = |f: px_wire::TcpFlags| f.ack && !f.syn && !f.fin && !f.rst && !f.urg;
    if !plain(fa) || !plain(fb) {
        return None;
    }
    if t_a.ack() != t_b.ack() || t_a.window() != t_b.window() {
        return None;
    }
    let pay_a = t_a.payload();
    let pay_b = t_b.payload();
    if pay_a.is_empty() || pay_b.is_empty() {
        return None; // pure ACKs are not coalesced
    }
    if t_b.seq() != t_a.seq().add(pay_a.len()) {
        return None; // not contiguous
    }
    // Option layout must match (kinds and lengths); Linux GRO compares
    // the full option block except timestamp values.
    let opts_a = px_wire::tcp::parse_options(t_a.options()).ok()?;
    let opts_b = px_wire::tcp::parse_options(t_b.options()).ok()?;
    if opts_a.len() != opts_b.len()
        || opts_a
            .iter()
            .zip(&opts_b)
            .any(|(x, y)| std::mem::discriminant(x) != std::mem::discriminant(y))
    {
        return None;
    }

    let merged_len = ip_a.total_len() + pay_b.len();
    if merged_len > max_size || merged_len > px_wire::ipv4::MAX_TOTAL_LEN {
        return None;
    }

    // Build: a's headers, concatenated payloads; PSH is OR'd.
    let ip_hlen = ip_a.header_len();
    let tcp_hlen = t_a.header_len();
    let mut out = Vec::with_capacity(merged_len);
    out.extend_from_slice(&a[..ip_hlen + tcp_hlen]);
    out.extend_from_slice(pay_a);
    out.extend_from_slice(pay_b);
    let (src, dst) = (ip_a.src(), ip_a.dst());
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut out[..]);
        ip.set_total_len(merged_len as u16);
        ip.fill_checksum();
    }
    {
        let mut tcp = TcpSegment::new_unchecked(&mut out[ip_hlen..]);
        if fb.psh {
            let mut f = fa;
            f.psh = true;
            tcp.set_flags(f);
        }
        tcp.fill_checksum(src, dst);
    }
    Some(out)
}

/// Coalesces a batch of packets the way LRO/GRO does within one poll
/// round: each packet merges onto the most recent aggregate of its flow
/// if contiguous; otherwise it starts a new aggregate. Emission order is
/// first-touch order, preserving per-flow ordering.
pub fn coalesce_batch(batch: Vec<Vec<u8>>, max_size: usize) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(batch.len());
    // Index of the latest aggregate per flow.
    let mut latest: std::collections::HashMap<FlowKey, usize> = std::collections::HashMap::new();
    for pkt in batch {
        let key = match flow_key_of(&pkt) {
            Ok(k) => k,
            Err(_) => {
                out.push(pkt);
                continue;
            }
        };
        if let Some(&idx) = latest.get(&key) {
            if let Some(merged) = try_coalesce(&out[idx], &pkt, max_size) {
                out[idx] = merged;
                continue;
            }
        }
        latest.insert(key, out.len());
        out.push(pkt);
    }
    out
}

/// Splits an IPv4+TCP packet into MTU-sized segments, TSO-style:
///
/// * each output carries the original IP+TCP headers,
/// * sequence numbers advance by the carried payload,
/// * the IP ID increments per segment (as Linux TSO does),
/// * FIN/PSH appear only on the last segment,
/// * all checksums are recomputed.
///
/// A packet that already fits is returned as-is (single element).
pub fn tso_split(packet: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>> {
    // Right-sized one-shot buffers: max_free 0 keeps the wrapper's
    // allocation behaviour (one Vec per segment, like the pre-sink API)
    // without growth reallocations inside the fill loop.
    let mut pool = BufPool::new(0, mtu, 0);
    let mut sink = px_wire::VecSink::new();
    tso_split_into(packet, mtu, &mut pool, &mut sink)?;
    Ok(sink.into_pkts())
}

/// [`tso_split`] with pooled buffers and sink-based emission — the
/// allocation-free form the PXGW split engine drives. Returns the number
/// of segments delivered; on error nothing is emitted.
pub fn tso_split_into(
    packet: &[u8],
    mtu: usize,
    pool: &mut BufPool,
    sink: &mut impl PacketSink,
) -> Result<usize> {
    let ip = Ipv4Packet::new_checked(packet)?;
    if ip.protocol() != IpProtocol::Tcp {
        return Err(Error::Unsupported);
    }
    if ip.total_len() <= mtu {
        let mut buf = pool.get();
        buf.extend_from_slice(&packet[..ip.total_len()]);
        if let Some(b) = sink.accept(buf) {
            pool.put(b);
        }
        return Ok(1);
    }
    let ip_hlen = ip.header_len();
    let tcp = TcpSegment::new_checked(ip.payload())?;
    let tcp_hlen = tcp.header_len();
    debug_assert!(tcp_hlen <= MAX_HEADER_LEN);
    let headers = ip_hlen + tcp_hlen;
    if mtu <= headers {
        return Err(Error::FieldRange);
    }
    let mss = mtu - headers;
    let payload = tcp.payload();
    if payload.is_empty() {
        return Err(Error::Malformed); // oversized but no payload: bogus
    }
    let flags = tcp.flags();
    let base_seq = tcp.seq();
    let (src, dst) = (ip.src(), ip.dst());
    let base_ident = ip.ident();

    let mut emitted = 0usize;
    let mut off = 0usize;
    let mut seg_idx: u16 = 0;
    while off < payload.len() {
        let take = mss.min(payload.len() - off);
        let last = off + take == payload.len();
        let mut seg = pool.get();
        seg.extend_from_slice(&packet[..headers]);
        seg.extend_from_slice(&payload[off..off + take]);
        {
            let mut ipv = Ipv4Packet::new_unchecked(seg.as_mut_slice());
            ipv.set_total_len((headers + take) as u16);
            ipv.set_ident(base_ident.wrapping_add(seg_idx));
            ipv.fill_checksum();
        }
        {
            let mut tseg = TcpSegment::new_unchecked(&mut seg.as_mut_slice()[ip_hlen..]);
            tseg.set_seq(base_seq.add(off));
            let mut f = flags;
            if !last {
                f.fin = false;
                f.psh = false;
            }
            tseg.set_flags(f);
            tseg.fill_checksum(src, dst);
        }
        if let Some(b) = sink.accept(seg) {
            pool.put(b);
        }
        emitted += 1;
        off += take;
        seg_idx = seg_idx.wrapping_add(1);
    }
    Ok(emitted)
}

/// [`tso_split_into`] emitting scatter-gather views instead of flat
/// copies: each segment is a pooled header buffer holding the rewritten
/// IP+TCP headers plus a payload slice borrowed from `packet`,
/// delivered via [`PacketSink::push_sg`]. Payload bytes are never
/// copied here — sinks without a `push_sg` override materialise the
/// view themselves, so the output stream is byte-identical to
/// [`tso_split_into`] either way. `rc` counts live views so the caller
/// knows when `packet`'s backing buffer may be recycled.
///
/// The TCP checksum is assembled from partial sums (pseudo-header +
/// header bytes in the segment buffer + payload bytes still in the
/// jumbo); RFC 1071's grouping independence makes the result identical
/// to `fill_checksum` over the flat segment.
pub fn tso_split_sg_into<'p>(
    packet: &'p [u8],
    mtu: usize,
    pool: &mut BufPool,
    rc: &'p SgRc,
    sink: &mut impl PacketSink,
) -> Result<usize> {
    let ip = Ipv4Packet::new_checked(packet)?;
    if ip.protocol() != IpProtocol::Tcp {
        return Err(Error::Unsupported);
    }
    if ip.total_len() <= mtu {
        // Pass-through: an all-payload view (empty header segment).
        let view = SgPacket::new(pool.get(), &packet[..ip.total_len()], rc);
        if let Some(b) = sink.push_sg(view) {
            pool.put(b);
        }
        return Ok(1);
    }
    let ip_hlen = ip.header_len();
    let tcp = TcpSegment::new_checked(ip.payload())?;
    let tcp_hlen = tcp.header_len();
    debug_assert!(tcp_hlen <= MAX_HEADER_LEN);
    let headers = ip_hlen + tcp_hlen;
    if mtu <= headers {
        return Err(Error::FieldRange);
    }
    let mss = mtu - headers;
    let payload = tcp.payload();
    if payload.is_empty() {
        return Err(Error::Malformed); // oversized but no payload: bogus
    }
    let flags = tcp.flags();
    let base_seq = tcp.seq();
    let (src, dst) = (ip.src(), ip.dst());
    let base_ident = ip.ident();
    // Payload starts at offset `headers` of `packet`; its base relative
    // to the jumbo's IP payload is `tcp_hlen` — both even (TCP headers
    // are 32-bit multiples), so the chunk sums combine on the even word
    // grid and plain `combine` applies.
    debug_assert_eq!(tcp_hlen % 2, 0);

    let mut emitted = 0usize;
    let mut off = 0usize;
    let mut seg_idx: u16 = 0;
    while off < payload.len() {
        let take = mss.min(payload.len() - off);
        let last = off + take == payload.len();
        let chunk = &payload[off..off + take];
        let mut seg = pool.get();
        seg.extend_from_slice(&packet[..headers]);
        {
            let mut ipv = Ipv4Packet::new_unchecked(seg.as_mut_slice());
            ipv.set_total_len((headers + take) as u16);
            ipv.set_ident(base_ident.wrapping_add(seg_idx));
            ipv.fill_checksum();
        }
        {
            let tcp_bytes = &mut seg.as_mut_slice()[ip_hlen..];
            {
                let mut tseg = TcpSegment::new_unchecked(&mut *tcp_bytes);
                tseg.set_seq(base_seq.add(off));
                let mut f = flags;
                if !last {
                    f.fin = false;
                    f.psh = false;
                }
                tseg.set_flags(f);
            }
            // fill_checksum over the flat segment, reassembled from
            // partial sums: zero the field, sum the header bytes here
            // and the payload bytes where they already live.
            bytes::put_be16(tcp_bytes, 16, 0);
            let header_sum = checksum::ones_complement_sum(&tcp_bytes[..tcp_hlen]);
            let payload_sum = checksum::ones_complement_sum(chunk);
            let pseudo = checksum::pseudo_header_sum(
                src,
                dst,
                IpProtocol::Tcp.into(),
                (tcp_hlen + take) as u16,
            );
            let ck = !checksum::combine(pseudo, checksum::combine(header_sum, payload_sum));
            bytes::put_be16(tcp_bytes, 16, ck);
        }
        let view = SgPacket::new(seg, chunk, rc);
        if let Some(b) = sink.push_sg(view) {
            pool.put(b);
        }
        emitted += 1;
        off += take;
        seg_idx = seg_idx.wrapping_add(1);
    }
    Ok(emitted)
}

/// RX-side configuration for the saturation model.
#[derive(Debug, Clone, Copy)]
pub struct RxConfig {
    /// Wire MTU of arriving packets.
    pub mtu: usize,
    /// NIC LRO enabled.
    pub lro: bool,
    /// Kernel GRO enabled.
    pub gro: bool,
    /// Number of concurrent flows sharing the core.
    pub flows: usize,
}

/// The effective aggregation unit size (bytes) for a given config: how
/// many contiguous bytes of one flow LRO/GRO can coalesce per poll round.
///
/// With one flow the whole batch is contiguous and only the 64 KB cap
/// binds; with `k` flows, interleaving breaks runs up as
/// `batch / k^ALPHA` (see [`calib::INTERLEAVE_ALPHA`]).
pub fn aggregation_unit(cfg: &RxConfig) -> usize {
    if !cfg.lro && !cfg.gro {
        return cfg.mtu;
    }
    let batch_bytes = (calib::RX_BATCH_PKTS * cfg.mtu) as f64;
    let run = batch_bytes / (cfg.flows.max(1) as f64).powf(calib::INTERLEAVE_ALPHA);
    let floor = (calib::AGG_FLOOR_SEGS * cfg.mtu).min(calib::MAX_AGGREGATE);
    (run as usize)
        .clamp(cfg.mtu, calib::MAX_AGGREGATE)
        .max(floor)
}

/// Receive throughput for the PX-caravan + UDP_GRO path of Fig. 5c: the
/// host receives `bundle_size`-byte caravans of `segs` inner datagrams.
/// Each bundle costs one descriptor + one protocol traversal; each inner
/// datagram still pays a UDP_GRO split test plus its own socket delivery
/// (UDP hands every datagram to the application individually — that part
/// no offload can amortise). `flows` adds the same flow-state cache
/// pressure as [`rx_saturation_bps`].
pub fn rx_caravan_bps(m: &CostModel, bundle_size: usize, segs: usize, flows: usize) -> f64 {
    let unit = bundle_size as f64;
    let k = flows.max(1) as f64;
    let per_inner = m.gro_per_seg + 0.15 * m.proto_unit;
    let cyc_per_byte = m.wire_pkt / unit
        + m.descriptor / unit
        + m.proto_unit / unit
        + per_inner * segs as f64 / unit
        + m.cache_miss * (1.0 - 1.0 / k) / unit
        + m.per_byte;
    m.bps_at(cyc_per_byte)
}

/// Single-core receive throughput (bits/sec) at saturation for the given
/// offload configuration — the quantity plotted in Figs. 1b and 1c.
///
/// Cost decomposition per payload byte:
/// * `wire_pkt / mtu` — irreducible per-wire-packet work;
/// * `descriptor / (A if LRO else mtu)` — completions coalesce under LRO;
/// * `gro_per_seg / mtu` — software merge test, only when GRO runs on
///   un-coalesced packets (GRO on, LRO off);
/// * `proto_unit / A` — one protocol traversal per aggregate;
/// * `cache_miss · (1 − 1/k) / A` — flow-state cache pressure;
/// * `per_byte` — payload movement.
pub fn rx_saturation_bps(m: &CostModel, cfg: &RxConfig) -> f64 {
    let mtu = cfg.mtu as f64;
    let unit = aggregation_unit(cfg) as f64;
    let k = cfg.flows.max(1) as f64;
    let mut cyc_per_byte = m.wire_pkt / mtu + m.per_byte;
    cyc_per_byte += if cfg.lro {
        m.descriptor / unit
    } else {
        m.descriptor / mtu
    };
    if cfg.gro && !cfg.lro {
        cyc_per_byte += m.gro_per_seg / mtu;
    } else if cfg.gro && cfg.lro {
        cyc_per_byte += m.gro_per_seg / unit; // GRO just inspects pre-merged units
    }
    cyc_per_byte += m.proto_unit / unit;
    cyc_per_byte += m.cache_miss * (1.0 - 1.0 / k) / unit;
    m.bps_at(cyc_per_byte)
}

#[cfg(test)]
mod tests {
    use super::*;
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::tcp::{SeqNum, TcpFlags, TcpOption, TcpRepr};
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn tcp_pkt(seq: u32, payload: &[u8], psh: bool) -> Vec<u8> {
        let mut flags = TcpFlags::ACK;
        flags.psh = psh;
        let trepr = TcpRepr {
            src_port: 5000,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(777),
            flags,
            window: 1000,
            options: vec![TcpOption::Timestamps(seq, 1)],
        };
        let seg = trepr.build_segment(SRC, DST, payload);
        let irepr = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len());
        irepr.build_packet(&seg).unwrap()
    }

    fn payload_of(pkt: &[u8]) -> Vec<u8> {
        let ip = Ipv4Packet::new_checked(pkt).unwrap();
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        tcp.payload().to_vec()
    }

    #[test]
    fn coalesce_contiguous_segments() {
        let a = tcp_pkt(1000, b"hello ", false);
        let b = tcp_pkt(1006, b"world", true);
        let merged = try_coalesce(&a, &b, 65536).expect("mergeable");
        assert_eq!(payload_of(&merged), b"hello world");
        let ip = Ipv4Packet::new_checked(&merged[..]).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(SRC, DST));
        assert!(tcp.flags().psh, "PSH is OR'd");
        assert_eq!(tcp.seq(), SeqNum(1000));
    }

    #[test]
    fn refuses_non_contiguous_and_special_flags() {
        let a = tcp_pkt(1000, b"abc", false);
        let gap = tcp_pkt(1010, b"def", false);
        assert!(try_coalesce(&a, &gap, 65536).is_none());

        let mut syn = TcpRepr {
            src_port: 5000,
            dst_port: 80,
            seq: SeqNum(1003),
            ack: SeqNum(777),
            flags: TcpFlags::SYN_ACK,
            window: 1000,
            options: vec![TcpOption::Timestamps(1, 1)],
        };
        syn.flags.syn = true;
        let seg = syn.build_segment(SRC, DST, b"x");
        let synpkt = Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap();
        assert!(try_coalesce(&a, &synpkt, 65536).is_none());
    }

    #[test]
    fn refuses_when_over_cap() {
        let a = tcp_pkt(0, &[1u8; 1000], false);
        let b = tcp_pkt(1000, &[2u8; 1000], false);
        assert!(try_coalesce(&a, &b, 1500).is_none());
        assert!(try_coalesce(&a, &b, 4000).is_some());
    }

    #[test]
    fn batch_coalescing_interleaved_flows() {
        // Flow X at seq 0.., flow Y (different port) interleaved.
        let x1 = tcp_pkt(0, &[0u8; 100], false);
        let x2 = tcp_pkt(100, &[0u8; 100], false);
        let mk_y = |seq: u32| {
            let trepr = TcpRepr {
                src_port: 6000,
                dst_port: 80,
                seq: SeqNum(seq),
                ack: SeqNum(1),
                flags: TcpFlags::ACK,
                window: 1000,
                options: vec![],
            };
            let seg = trepr.build_segment(SRC, DST, &[9u8; 50]);
            Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
                .build_packet(&seg)
                .unwrap()
        };
        let y1 = mk_y(0);
        let y2 = mk_y(50);
        let out = coalesce_batch(vec![x1, y1, x2, y2], 65536);
        assert_eq!(out.len(), 2, "each flow collapses to one aggregate");
        assert_eq!(payload_of(&out[0]).len(), 200);
        assert_eq!(payload_of(&out[1]).len(), 100);
    }

    #[test]
    fn tso_split_roundtrips_with_coalesce() {
        let payload: Vec<u8> = (0..5000).map(|i| (i % 256) as u8).collect();
        let big = tcp_pkt(42, &payload, true);
        let segs = tso_split(&big, 1500).unwrap();
        assert!(segs.len() >= 4);
        for (i, s) in segs.iter().enumerate() {
            assert!(s.len() <= 1500);
            let ip = Ipv4Packet::new_checked(&s[..]).unwrap();
            assert!(ip.verify_checksum());
            let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
            assert!(tcp.verify_checksum(SRC, DST));
            let last = i == segs.len() - 1;
            assert_eq!(tcp.flags().psh, last, "PSH only on the last segment");
        }
        // IP IDs increment.
        let ids: Vec<u16> = segs
            .iter()
            .map(|s| Ipv4Packet::new_checked(&s[..]).unwrap().ident())
            .collect();
        for w in ids.windows(2) {
            assert_eq!(w[1], w[0].wrapping_add(1));
        }
        // Re-coalescing recovers the byte stream.
        let mut acc = segs[0].clone();
        for s in &segs[1..] {
            acc = try_coalesce(&acc, s, 65536).expect("contiguous");
        }
        assert_eq!(payload_of(&acc), payload);
    }

    #[test]
    fn tso_small_packet_passthrough_and_errors() {
        let small = tcp_pkt(1, b"tiny", false);
        let out = tso_split(&small, 1500).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], small);
        assert_eq!(tso_split(&small, 30).unwrap_err(), Error::FieldRange);
    }

    #[test]
    fn tso_split_sg_matches_the_copying_splitter_byte_for_byte() {
        use px_wire::pool::SgRc;
        use px_wire::VecSink;
        let payload: Vec<u8> = (0..5000).map(|i| (i * 31 % 256) as u8).collect();
        for (len, mtu) in [
            (5000usize, 1500usize),
            (5000, 577),
            (100, 1500),
            (1460, 1500),
        ] {
            let big = tcp_pkt(42, &payload[..len], true);
            let flat = tso_split(&big, mtu).unwrap();
            let mut pool = BufPool::for_mtu(mtu, 16);
            let rc = SgRc::new();
            let mut sink = VecSink::new();
            let n = tso_split_sg_into(&big, mtu, &mut pool, &rc, &mut sink).unwrap();
            assert_eq!(rc.views(), 0, "every view consumed within the call");
            let sg = sink.into_pkts();
            assert_eq!(n, sg.len());
            assert_eq!(flat, sg, "len={len} mtu={mtu}");
        }
        // Error paths agree too.
        let small = tcp_pkt(1, b"tiny", false);
        let mut pool = BufPool::for_mtu(1500, 4);
        let rc = SgRc::new();
        let mut sink = VecSink::new();
        assert_eq!(
            tso_split_sg_into(&small, 30, &mut pool, &rc, &mut sink).unwrap_err(),
            Error::FieldRange
        );
        assert_eq!(rc.views(), 0);
    }

    /// The Fig. 1b anchor reproduced through the public model API.
    #[test]
    fn saturation_model_anchors() {
        let m = calib::endpoint_model();
        let glro_1500 = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 1500,
                lro: true,
                gro: true,
                flows: 1,
            },
        );
        assert!((glro_1500 / 1e9 - 50.1).abs() < 1.5, "{glro_1500}");
        let none_9000 = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 9000,
                lro: false,
                gro: false,
                flows: 1,
            },
        );
        assert!(
            none_9000 < glro_1500,
            "9 KB w/o offloads must lose to 1500 B + G/LRO (Fig. 1b)"
        );
        // Fig. 1c: 1500+G/LRO drops ≈31% at 4 flows; 9 KB bare drops ≈7%.
        let glro_4 = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 1500,
                lro: true,
                gro: true,
                flows: 4,
            },
        );
        let drop = 1.0 - glro_4 / glro_1500;
        assert!((drop - 0.31).abs() < 0.04, "G/LRO concurrency drop {drop}");
        let none_9000_4 = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 9000,
                lro: false,
                gro: false,
                flows: 4,
            },
        );
        let drop9 = 1.0 - none_9000_4 / none_9000;
        assert!((drop9 - 0.07).abs() < 0.03, "9 KB concurrency drop {drop9}");
    }

    #[test]
    fn aggregation_unit_bounds() {
        let one = RxConfig {
            mtu: 1500,
            lro: true,
            gro: true,
            flows: 1,
        };
        assert_eq!(aggregation_unit(&one), calib::MAX_AGGREGATE);
        // Heavy interleaving bottoms out at the TSO-burst floor, not at a
        // single segment.
        let many = RxConfig {
            mtu: 1500,
            lro: true,
            gro: true,
            flows: 1000,
        };
        assert_eq!(aggregation_unit(&many), calib::AGG_FLOOR_SEGS * 1500);
        let off = RxConfig {
            mtu: 1500,
            lro: false,
            gro: false,
            flows: 1,
        };
        assert_eq!(aggregation_unit(&off), 1500);
    }

    /// The Fig. 5c mechanism: at 100 flows on one core, translating to a
    /// 9 KB iMTU still beats 1500 B even with G/LRO enabled, and the
    /// caravan + UDP_GRO path beats plain 1500 B UDP by ≈2.4×.
    #[test]
    fn fig5c_receiver_gains() {
        let m = calib::endpoint_model();
        let glro_1500 = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 1500,
                lro: true,
                gro: true,
                flows: 100,
            },
        );
        let glro_9000 = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 9000,
                lro: true,
                gro: true,
                flows: 100,
            },
        );
        let gain = glro_9000 / glro_1500;
        assert!(gain > 1.4 && gain < 2.2, "G/LRO translation gain {gain}");
        // UDP caravan: 6×1472 B datagrams per ~8.9 KB bundle vs plain
        // 1500 B datagrams with no aggregation.
        let caravan = rx_caravan_bps(&m, 8860, 6, 100);
        let plain = rx_saturation_bps(
            &m,
            &RxConfig {
                mtu: 1500,
                lro: false,
                gro: false,
                flows: 100,
            },
        );
        let ratio = caravan / plain;
        assert!((ratio - 2.4).abs() < 0.5, "caravan ratio {ratio}");
    }
}
