//! Calibrated cost-model constants, with derivations.
//!
//! The paper's throughput numbers come from hardware we do not have
//! (Xeon Gold 6554S/5512U + ConnectX-7 400 GbE). We substitute a cycle
//! model whose constants are pinned by a handful of *anchor points* read
//! off the paper, then held fixed across every experiment. Nothing else
//! is fitted: all shapes (scaling with cores, flows, MTU; crossovers;
//! who wins) emerge from the model plus the real algorithms.
//!
//! # Anchors
//!
//! **UPF (Fig. 1a)** — 208 Gbps at 9000 B and 5.6× over 1500 B on one
//! 3 GHz core:
//! ```text
//! 9000 B: 208 Gb/s ÷ (9000·8 b) = 2.889 Mpps → 3 GHz ÷ 2.889 M = 1038 cyc/pkt
//! 1500 B: 37.1 Gb/s ÷ (1500·8 b) = 3.095 Mpps → 969 cyc/pkt
//! slope  = (1038 − 969)/(9000 − 1500) = 0.0092 cyc/B, intercept ≈ 955 cyc
//! ```
//!
//! **Endpoint RX (Fig. 1b)** — 50.1 Gbps for a single 1500 B flow with
//! GRO+LRO on one core. With full 64 KB aggregation the per-unit costs
//! amortise to ≈0.09 cyc/B, so the per-byte constant carries the anchor:
//! `8 bit/B · 3 GHz ÷ 50.1 Gb/s = 0.479 cyc/B` total ⇒ `per_byte = 0.39`.
//!
//! **PXGW (Fig. 5a)** — 1.45 Tbps on 8 cores with header-only DMA
//! (CPU-bound) and 1.09 Tbps without it (memory-bus-bound):
//! ```text
//! CPU:   1.45 Tb/s ÷ 8 cores = 181 Gb/s/core → 9000·8·3e9/181e9 ≈ 1190 cyc
//!        per 9000 B merged unit (6 wire segments)
//! bus:   1.09 Tb/s of payload crossing twice (RX DMA + TX DMA)
//!        = 2 · 136.3 GB/s ≈ 273 GB/s usable bus bandwidth
//! ```
//!
//! **Baseline gateway (Fig. 5a)** — DPDK GRO software merging reaches
//! 167 Gbps on 8 cores = 20.9 Gb/s/core ⇒ ≈1720 cyc per 1500 B packet,
//! dominated by the software merge-candidate search.

use crate::cpu::CostModel;

/// Clock frequency used for every core in the testbed model (Hz).
pub const FREQ_HZ: f64 = 3.0e9;

/// Usable host memory-bus bandwidth (bytes/sec) for the PXGW machine.
/// Derived from the Fig. 5a anchor: 1.09 Tbps of payload, crossing the
/// bus twice, saturates it.
pub const MEMBUS_BYTES_PER_SEC: f64 = 273.0e9;

/// Bus crossings per payload byte forwarded *without* header-only DMA
/// (RX DMA into host memory + TX DMA out of it).
pub const BUS_CROSSINGS_DEFAULT: f64 = 2.0;

/// Bus crossings per payload byte for the UDP caravan path without
/// header-only DMA: RX DMA + TX DMA + the software bundle copy
/// (read + write ≈ one extra effective crossing at cache-line grain).
pub const BUS_CROSSINGS_UDP: f64 = 2.5;

/// Bus crossings with header-only DMA: payload stays in NIC memory, only
/// headers (≈54 B per wire segment) cross. Expressed as an equivalent
/// fraction of payload bytes for a 1500 B segment.
pub const BUS_CROSSINGS_HDR_ONLY: f64 = 0.04;

/// The endpoint (client/server host) cost model. Constants:
///
/// * `wire_pkt = 80` — NAPI/IRQ amortisation per wire packet, never
///   removable by offloads.
/// * `descriptor = 300` — descriptor post/reap; moves from per-packet to
///   per-merged-unit under LRO.
/// * `proto_unit = 1900` — IP+TCP protocol work per delivered unit.
/// * `gro_per_seg = 120` — software GRO merge test per segment.
/// * `per_byte = 0.39` — payload movement (pins the 50.1 Gbps anchor).
/// * `lookup = 60` — one hash-table lookup.
/// * `conn_wakeup = 2600` — epoll wakeup + socket bookkeeping per
///   connection service round (drives Table 1).
/// * `cache_miss = 550` — flow-state cache penalty at high concurrency
///   (drives the large-MTU degradation in Fig. 1c).
pub fn endpoint_model() -> CostModel {
    CostModel {
        freq_hz: FREQ_HZ,
        wire_pkt: 80.0,
        descriptor: 300.0,
        proto_unit: 1900.0,
        gro_per_seg: 120.0,
        per_byte: 0.39,
        lookup: 60.0,
        conn_wakeup: 2600.0,
        cache_miss: 550.0,
    }
}

/// The 5G UPF per-packet cost (cycles) for a packet of `len` bytes.
///
/// Fixed part (≈955 cycles): GTP-U parse + decap, 3 rule-table lookups
/// (PDR match, FAR, QER), counters, FIB lookup, descriptor handling.
/// Byte part (0.0092 cyc/B): header-DMA touch — the UPF never reads the
/// payload, which is why its throughput scales almost linearly with MTU
/// (Fig. 1a).
pub fn upf_cycles(len: usize) -> f64 {
    955.0 + 0.0092 * len as f64
}

/// PXGW cycles to process one *merged TCP unit* of `unit_bytes` composed
/// of `segs` wire segments, with NIC LRO+TSO doing the data movement.
///
/// `533` fixed (descriptor reap for the merged unit, flow-table lookup,
/// merge finalisation, TSO context setup) + `80·segs` irreducible
/// per-wire-packet work + `0.02/B` header-touch DMA cost.
/// At 9000 B/6 segs this is ≈1193 cycles ⇒ 181 Gb/s/core ⇒ 1.45 Tbps on
/// 8 cores, the Fig. 5a "+header-only" anchor.
pub fn px_tcp_unit_cycles(unit_bytes: usize, segs: usize) -> f64 {
    533.0 + 80.0 * segs as f64 + 0.02 * unit_bytes as f64
}

/// PXGW cycles for one *caravan UDP unit*: no LRO/TSO assist, so the
/// gateway pays an extra per-segment bundle-append/length-walk cost
/// (`+23` cycles over the TCP path's 80) on the same fixed unit cost.
/// At 9000 B/6 segs ≈1331 cycles ⇒ ≈162 Gb/s/core ⇒ ≈1.30 Tbps on
/// 8 cores CPU-bound — so without header-only DMA the UDP path is
/// memory-bus-bound at ≈0.87 Tbps ([`BUS_CROSSINGS_UDP`]), and enabling
/// header-only DMA still improves it (Fig. 5b), peaking slightly below
/// the TCP numbers in both variants.
pub fn px_udp_unit_cycles(unit_bytes: usize, segs: usize) -> f64 {
    533.0 + (80.0 + 23.0) * segs as f64 + 0.02 * unit_bytes as f64
}

/// Baseline gateway (DPDK GRO library, no NIC offload) cycles per wire
/// packet of `len` bytes: 80 wire + 300 descriptor + 950 software GRO
/// candidate search/merge + 0.25/B payload copy into the merge buffer.
/// ≈1705 cycles at 1500 B ⇒ 21 Gb/s/core ⇒ 167 Gbps on 8 cores (Fig. 5a).
pub fn baseline_gro_pkt_cycles(len: usize) -> f64 {
    80.0 + 300.0 + 950.0 + 0.25 * len as f64
}

/// The aggregation-collapse exponent for Fig. 1c: with `k` concurrent
/// flows the effective LRO/GRO aggregation window shrinks as
/// `batch / k^ALPHA` because interleaved arrivals break up contiguous
/// runs. Calibrated so 4 flows cost ≈31% of single-flow G/LRO throughput
/// at 1500 B (the paper's number).
pub const INTERLEAVE_ALPHA: f64 = 1.57;

/// NIC RX batch size in packets (NAPI budget), bounding how many
/// same-flow packets can coalesce per poll round.
pub const RX_BATCH_PKTS: usize = 64;

/// Maximum LRO/GRO aggregate size in bytes (Linux: 64 KB minus headers).
pub const MAX_AGGREGATE: usize = 65536;

/// Aggregation floor in segments: even under heavy flow interleaving,
/// sender-side TSO bursts keep at least this many same-flow segments
/// adjacent on the wire, so LRO/GRO never collapse entirely (this is why
/// Fig. 5c still shows offload benefit at 100 flows).
pub const AGG_FLOOR_SEGS: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1a anchors: 208 Gbps at 9 KB, ≈5.6× over 1500 B.
    #[test]
    fn upf_anchor() {
        let tp = |len: usize| len as f64 * 8.0 * FREQ_HZ / upf_cycles(len);
        let tp9000 = tp(9000);
        let tp1500 = tp(1500);
        assert!((tp9000 / 1e9 - 208.0).abs() < 5.0, "9 KB UPF: {tp9000}");
        let speedup = tp9000 / tp1500;
        assert!((speedup - 5.6).abs() < 0.2, "speedup {speedup}");
    }

    /// Fig. 1b anchor: 1500 B + G/LRO ≈ 50.1 Gbps on one core.
    #[test]
    fn endpoint_glro_anchor() {
        let m = endpoint_model();
        // Full aggregation: 64 KB units of 1500 B segments.
        let unit = MAX_AGGREGATE as f64;
        let segs = unit / 1500.0;
        let cyc_per_byte =
            m.wire_pkt / 1500.0 + (m.descriptor + m.proto_unit + m.gro_per_seg) / unit + m.per_byte;
        let tp = m.bps_at(cyc_per_byte);
        assert!((tp / 1e9 - 50.1).abs() < 1.5, "G/LRO: {} Gbps", tp / 1e9);
        let _ = segs;
    }

    /// Fig. 5a anchors: 181 Gb/s/core for PX (CPU), 21 for baseline, and
    /// the bus capping PX-without-header-DMA at ≈1.09 Tbps on 8 cores.
    #[test]
    fn gateway_anchors() {
        let per_core_px = 9000.0 * 8.0 * FREQ_HZ / px_tcp_unit_cycles(9000, 6);
        assert!(
            (per_core_px / 1e9 - 181.0).abs() < 4.0,
            "PX/core {per_core_px}"
        );
        let per_core_base = 1500.0 * 8.0 * FREQ_HZ / baseline_gro_pkt_cycles(1500);
        assert!(
            (per_core_base / 1e9 - 21.0).abs() < 1.0,
            "base/core {per_core_base}"
        );
        let bus_capped = MEMBUS_BYTES_PER_SEC / BUS_CROSSINGS_DEFAULT * 8.0;
        assert!(
            (bus_capped / 1e12 - 1.09).abs() < 0.02,
            "bus cap {bus_capped}"
        );
    }

    /// Fig. 5b sanity: the UDP caravan path is more expensive per unit
    /// than the TCP path but far cheaper than baseline software GRO.
    #[test]
    fn udp_between_tcp_and_baseline() {
        let tcp = px_tcp_unit_cycles(9000, 6);
        let udp = px_udp_unit_cycles(9000, 6);
        let base = 6.0 * baseline_gro_pkt_cycles(1500);
        assert!(tcp < udp && udp < base, "{tcp} < {udp} < {base}");
    }
}
