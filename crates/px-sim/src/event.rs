//! The event queue: a time-ordered heap with FIFO tie-breaking.
//!
//! Tie-breaking by insertion sequence matters for determinism: two events
//! scheduled for the same nanosecond must always pop in the order they
//! were scheduled, independent of heap internals.

use crate::node::{NodeId, PortId};
use crate::time::Nanos;
use px_wire::PacketBuf;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet finishes arriving at a node's port.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// Port the packet arrives on.
        port: PortId,
        /// The packet.
        pkt: PacketBuf,
    },
    /// A timer set by a node fires.
    Timer {
        /// The node that set the timer.
        node: NodeId,
        /// The opaque token it supplied.
        token: u64,
    },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: Nanos,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // the first-scheduled) event is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of simulation events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub fn schedule(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), timer(0, 3));
        q.schedule(Nanos(10), timer(0, 1));
        q.schedule(Nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Nanos(5), timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos(7), timer(1, 0));
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.len(), 1);
    }
}
