//! The [`Node`] trait and the per-callback context ([`Ctx`]) through which
//! nodes interact with the simulation.
//!
//! A node never touches the network directly: it records *actions*
//! (packets to emit, timers to arm) in the context, and the event loop
//! applies them after the callback returns. This keeps borrows simple and
//! the execution order deterministic.

use crate::stats::NetStats;
use crate::time::Nanos;
use px_wire::PacketBuf;
use rand::rngs::SmallRng;
use std::any::Any;

/// Identifies a node within one [`crate::network::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a port (attachment point for a link) on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Packets a node emitted during one callback, with their egress ports.
pub(crate) type OutPkts = Vec<(PortId, PacketBuf)>;
/// Timers a node armed during one callback: (deadline, token) pairs.
pub(crate) type ArmedTimers = Vec<(Nanos, u64)>;

/// The context handed to every node callback.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Nanos,
    /// The simulation's seeded PRNG (sole source of randomness).
    pub rng: &'a mut SmallRng,
    /// Global counters.
    pub stats: &'a mut NetStats,
    pub(crate) out: Vec<(PortId, PacketBuf)>,
    pub(crate) timers: Vec<(Nanos, u64)>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(now: Nanos, rng: &'a mut SmallRng, stats: &'a mut NetStats) -> Self {
        Ctx {
            now,
            rng,
            stats,
            out: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Emits `pkt` on `port`. The packet starts serializing onto the
    /// attached link immediately (or queues behind packets already on it).
    pub fn send(&mut self, port: PortId, pkt: PacketBuf) {
        self.out.push((port, pkt));
    }

    /// Arms a timer to fire `delay` from now, passing `token` back to
    /// [`Node::on_timer`].
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        self.timers.push((self.now + delay, token));
    }

    /// Arms a timer at an absolute time.
    pub fn set_timer_at(&mut self, at: Nanos, token: u64) {
        debug_assert!(at >= self.now);
        self.timers.push((at, token));
    }

    /// Consumes the context, releasing its borrows and yielding the
    /// recorded actions for the event loop to apply.
    pub(crate) fn into_actions(self) -> (OutPkts, ArmedTimers) {
        (self.out, self.timers)
    }
}

/// A simulation participant: host, router, gateway, middlebox.
///
/// Nodes must also be `Any` so experiment harnesses can downcast them back
/// to their concrete type after the run to read results.
pub trait Node: Any {
    /// Called when a packet finishes arriving on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Called once when the simulation starts, before any packet flows.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Upcast for downcasting back to the concrete type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_records_actions_in_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut stats = NetStats::default();
        let mut ctx = Ctx::new(Nanos(100), &mut rng, &mut stats);
        ctx.send(PortId(0), PacketBuf::from_payload(b"a"));
        ctx.send(PortId(1), PacketBuf::from_payload(b"b"));
        ctx.set_timer(Nanos(10), 42);
        ctx.set_timer_at(Nanos(500), 43);
        assert_eq!(ctx.out.len(), 2);
        assert_eq!(ctx.out[0].0, PortId(0));
        assert_eq!(ctx.timers, vec![(Nanos(110), 42), (Nanos(500), 43)]);
    }
}
