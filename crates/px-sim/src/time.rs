//! Simulated time: a nanosecond counter.
//!
//! Everything in the simulator is stamped in [`Nanos`]. Wall-clock time
//! never enters the simulation — determinism depends on it.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Time zero.
    pub const ZERO: Nanos = Nanos(0);

    /// The largest representable time (used as "never").
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// From fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Nanos {
        debug_assert!(s >= 0.0);
        Nanos((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }

    /// The time to serialize `bytes` onto a link of `bits_per_sec`.
    pub fn tx_time(bytes: usize, bits_per_sec: u64) -> Nanos {
        debug_assert!(bits_per_sec > 0);
        // bytes * 8 * 1e9 / bps, in u128 to avoid overflow at Tbps scales.
        let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
        Nanos(ns as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos(2_000_000_000));
        assert_eq!(Nanos::from_millis(3), Nanos(3_000_000));
        assert_eq!(Nanos::from_micros(4), Nanos(4_000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos(500_000_000));
    }

    #[test]
    fn tx_time_examples_from_the_paper() {
        // §2: "in a 400 Gbps network, transmitting a 9 KB packet takes only
        // 0.18 µs, and even a 64 KB packet takes 1.31 µs".
        let t9k = Nanos::tx_time(9000, 400_000_000_000);
        assert_eq!(t9k, Nanos(180));
        let t64k = Nanos::tx_time(65536, 400_000_000_000);
        assert!((t64k.0 as f64 - 1310.0).abs() < 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Nanos(130));
    }

    #[test]
    fn display_units() {
        assert_eq!(Nanos(5).to_string(), "5ns");
        assert_eq!(Nanos(5_000).to_string(), "5.000µs");
        assert_eq!(Nanos(5_000_000).to_string(), "5.000ms");
        assert_eq!(Nanos::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn no_overflow_at_tbps() {
        // 64 KB at 1.6 Tbps — the paper's top-end NIC speed.
        let t = Nanos::tx_time(65536, 1_600_000_000_000);
        assert!(t.0 > 0);
    }
}
