//! A shared memory-bandwidth timeline.
//!
//! The PXGW evaluation's "+ header-only DMA" variant (Fig. 5a/5b) works
//! because keeping payloads in NIC memory [Pismenny et al., ASPLOS '22]
//! stops them from crossing the host memory bus twice (RX DMA in, TX DMA
//! out). We model the bus as a single shared FIFO resource: every DMA
//! reserves bus time proportional to the bytes moved, and a packet's
//! processing cannot complete before its bus reservation drains. When the
//! CPU cores could go faster than the bus, the bus becomes the bottleneck
//! — exactly the regime the paper reports PX (without header-only DMA)
//! operating in at 8 cores.

use crate::time::Nanos;

/// A shared memory bus with a fixed byte bandwidth.
#[derive(Debug, Clone)]
pub struct MemBus {
    /// Usable bandwidth in bytes/sec.
    pub bytes_per_sec: f64,
    next_free: Nanos,
    bytes_moved: u64,
}

impl MemBus {
    /// Creates an idle bus.
    pub fn new(bytes_per_sec: f64) -> Self {
        MemBus {
            bytes_per_sec,
            next_free: Nanos::ZERO,
            bytes_moved: 0,
        }
    }

    /// Reserves bus time for `bytes` starting no earlier than `now`;
    /// returns when the transfer completes.
    pub fn reserve(&mut self, now: Nanos, bytes: u64) -> Nanos {
        let start = self.next_free.max(now);
        let dur = Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.next_free = start + dur;
        self.bytes_moved += bytes;
        self.next_free
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Fraction of `elapsed` the bus spent busy.
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed == Nanos::ZERO {
            return 0.0;
        }
        (self.bytes_moved as f64 / self.bytes_per_sec / elapsed.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_serialise() {
        let mut bus = MemBus::new(1e9); // 1 GB/s
        let t1 = bus.reserve(Nanos::ZERO, 1_000_000); // 1 ms
        let t2 = bus.reserve(Nanos::ZERO, 1_000_000);
        assert_eq!(t1, Nanos::from_millis(1));
        assert_eq!(t2, Nanos::from_millis(2));
        assert_eq!(bus.bytes_moved(), 2_000_000);
    }

    #[test]
    fn idle_gap_respected() {
        let mut bus = MemBus::new(1e9);
        bus.reserve(Nanos::ZERO, 1000);
        let t = bus.reserve(Nanos::from_millis(5), 1000);
        assert_eq!(t, Nanos::from_millis(5) + Nanos::from_micros(1));
    }

    #[test]
    fn utilization() {
        let mut bus = MemBus::new(1e9);
        bus.reserve(Nanos::ZERO, 500_000);
        assert!((bus.utilization(Nanos::from_millis(1)) - 0.5).abs() < 1e-9);
    }
}
