//! CPU modelling: a cycle cost model plus a single-core server queue.
//!
//! Throughput in the paper's evaluation is CPU-bound (the testbed has
//! 1.6 Tbps of NIC capacity but measures how much of it software can
//! drive), so the simulator prices every packet-processing step in
//! *cycles* and converts cycles to time through the core's clock. The
//! constants live in [`crate::calib`] with their derivations.

use crate::time::Nanos;

/// The cycle cost model shared by all experiments. See [`crate::calib`]
/// for the calibrated instances and the derivation of every constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// Irreducible per-wire-packet cost (interrupt/NAPI amortisation,
    /// ring accounting) paid for every packet on the wire regardless of
    /// offloads.
    pub wire_pkt: f64,
    /// Cost of posting/reaping one DMA descriptor. Paid per wire packet
    /// without LRO, per merged unit with LRO (the NIC coalesces
    /// completions).
    pub descriptor: f64,
    /// Protocol processing (IP + TCP/UDP) per *protocol unit* — one wire
    /// packet without aggregation, one merged super-packet with LRO/GRO.
    pub proto_unit: f64,
    /// Software GRO merge test per segment (paid only when GRO runs,
    /// i.e. GRO enabled and the NIC did not already coalesce via LRO).
    pub gro_per_seg: f64,
    /// Per-byte cost of moving payload through the host (DMA touch +
    /// copy-to-user), in cycles/byte.
    pub per_byte: f64,
    /// One exact-match or LPM table lookup (flow table, PDR table, FIB).
    pub lookup: f64,
    /// Per-connection wakeup overhead (epoll/event-loop bookkeeping),
    /// paid once per connection per service round.
    pub conn_wakeup: f64,
    /// Extra per-protocol-unit cost at full flow-state cache pressure
    /// (scaled by a concurrency factor in the RX model).
    pub cache_miss: f64,
}

impl CostModel {
    /// Converts cycles to time on this core.
    pub fn cycles_to_time(&self, cycles: f64) -> Nanos {
        Nanos::from_secs_f64(cycles / self.freq_hz)
    }

    /// Throughput (bits/sec) of one core spending `cycles_per_byte` on
    /// average for every payload byte it moves.
    pub fn bps_at(&self, cycles_per_byte: f64) -> f64 {
        8.0 * self.freq_hz / cycles_per_byte
    }
}

/// A single CPU core modelled as a FIFO server: work is admitted with a
/// cycle price and completes when the core gets to it.
#[derive(Debug, Clone)]
pub struct CpuServer {
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    busy_until: Nanos,
    busy_cycles: f64,
    /// Maximum backlog (delay between now and `busy_until`) before new
    /// work is refused — models a bounded RX ring.
    pub max_backlog: Nanos,
    dropped: u64,
}

impl CpuServer {
    /// Creates an idle core.
    pub fn new(freq_hz: f64, max_backlog: Nanos) -> Self {
        CpuServer {
            freq_hz,
            busy_until: Nanos::ZERO,
            busy_cycles: 0.0,
            max_backlog,
            dropped: 0,
        }
    }

    /// Admits `cycles` of work at `now`; returns its completion time, or
    /// `None` if the backlog bound would be exceeded (the packet is
    /// dropped at the ring).
    pub fn admit(&mut self, now: Nanos, cycles: f64) -> Option<Nanos> {
        let start = self.busy_until.max(now);
        if start.saturating_sub(now) > self.max_backlog {
            self.dropped += 1;
            return None;
        }
        let dur = Nanos::from_secs_f64(cycles / self.freq_hz);
        self.busy_until = start + dur;
        self.busy_cycles += cycles;
        Some(self.busy_until)
    }

    /// When the core next goes idle.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Cycles of admitted work so far.
    pub fn busy_cycles(&self) -> f64 {
        self.busy_cycles
    }

    /// Work units refused at the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fraction of `elapsed` the core spent busy.
    pub fn utilization(&self, elapsed: Nanos) -> f64 {
        if elapsed == Nanos::ZERO {
            return 0.0;
        }
        (self.busy_cycles / self.freq_hz / elapsed.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib;

    #[test]
    fn admit_serialises_work() {
        let mut cpu = CpuServer::new(1e9, Nanos::from_millis(10)); // 1 GHz
        let t1 = cpu.admit(Nanos::ZERO, 1000.0).unwrap(); // 1 µs of work
        let t2 = cpu.admit(Nanos::ZERO, 1000.0).unwrap();
        assert_eq!(t1, Nanos::from_micros(1));
        assert_eq!(t2, Nanos::from_micros(2));
        // Work arriving after the core went idle starts immediately.
        let t3 = cpu.admit(Nanos::from_micros(10), 1000.0).unwrap();
        assert_eq!(t3, Nanos::from_micros(11));
    }

    #[test]
    fn backlog_bound_drops() {
        let mut cpu = CpuServer::new(1e9, Nanos::from_micros(1));
        cpu.admit(Nanos::ZERO, 1500.0).unwrap(); // busy until 1.5 µs
        assert!(cpu.admit(Nanos::ZERO, 100.0).is_none());
        assert_eq!(cpu.dropped(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut cpu = CpuServer::new(1e9, Nanos::from_secs(1));
        cpu.admit(Nanos::ZERO, 500_000.0).unwrap(); // 0.5 ms of work
        let u = cpu.utilization(Nanos::from_millis(1));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(cpu.busy_cycles(), 500_000.0);
    }

    #[test]
    fn cost_model_conversions() {
        let m = calib::endpoint_model();
        assert_eq!(m.cycles_to_time(m.freq_hz), Nanos::from_secs(1));
        // 0.5 cycles/byte at 3 GHz = 48 Gbps.
        let bps = m.bps_at(0.5);
        assert!((bps - 8.0 * m.freq_hz / 0.5).abs() < 1.0);
    }
}
