//! StatsRegistry under fire: worker threads publishing cumulative
//! counters and merging histograms while readers take mid-run
//! snapshots. The registry's contract: snapshots are always internally
//! consistent (never torn below the per-core level), aggregates are
//! monotone over time per publishing discipline, and the final state is
//! exact.

use px_obs::HistSet;
use px_sim::stats::{CoreCounters, StatsRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const CORES: usize = 8;
const ROUNDS: u64 = 200;
const PKTS_PER_ROUND: u64 = 64;
const BYTES_PER_PKT: u64 = 1500;

fn counters_at(round: u64) -> CoreCounters {
    CoreCounters {
        pkts_in: round * PKTS_PER_ROUND,
        bytes_in: round * PKTS_PER_ROUND * BYTES_PER_PKT,
        batches: round,
        ..Default::default()
    }
}

#[test]
fn concurrent_publish_and_snapshot() {
    let registry = Arc::new(StatsRegistry::new(CORES));
    let stop = Arc::new(AtomicBool::new(false));

    // Readers hammer snapshot/aggregate concurrently with the writers
    // and check per-core monotonicity: each core's counters are
    // cumulative and overwritten by a single writer, so an observed
    // value may never decrease between two reads.
    let mut readers = Vec::new();
    for _ in 0..2 {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut last_per_core = [0u64; CORES];
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = registry.snapshot();
                assert_eq!(snap.len(), CORES);
                for (core, c) in snap.iter().enumerate() {
                    assert!(
                        c.pkts_in >= last_per_core[core],
                        "core {core} went backwards: {} < {}",
                        c.pkts_in,
                        last_per_core[core]
                    );
                    last_per_core[core] = c.pkts_in;
                    // Derived fields stay consistent within one core's
                    // entry because set_core replaces it wholesale under
                    // the lock.
                    assert_eq!(c.bytes_in, c.pkts_in * BYTES_PER_PKT);
                }
                // The Prometheus snapshot must be assemblable mid-run.
                let m = registry.metrics_snapshot();
                assert!(!m.counters.is_empty());
                reads += 1;
            }
            reads
        }));
    }

    // Writers: one per core, publishing cumulative counters (overwrite
    // semantics) and periodically merging histogram deltas (additive).
    let mut writers = Vec::new();
    for core in 0..CORES {
        let registry = Arc::clone(&registry);
        writers.push(thread::spawn(move || {
            for round in 1..=ROUNDS {
                registry.set_core(core, &counters_at(round));
                if round % 10 == 0 {
                    let mut h = HistSet::default();
                    for _ in 0..10 {
                        h.batch_ns.record(1000 + round);
                    }
                    registry.merge_core_hists(core, &h);
                }
            }
        }));
    }
    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let reads = r.join().expect("reader panicked");
        assert!(reads > 0, "reader never got a snapshot in");
    }

    // Final state is exact: every core's last publish, summed.
    let totals = registry.aggregate();
    assert_eq!(totals.pkts_in, CORES as u64 * ROUNDS * PKTS_PER_ROUND);
    assert_eq!(
        totals.bytes_in,
        CORES as u64 * ROUNDS * PKTS_PER_ROUND * BYTES_PER_PKT
    );
    assert_eq!(totals.batches, CORES as u64 * ROUNDS);
    // Histograms: ROUNDS/10 merges × 10 samples × CORES.
    let hists = registry.hist_aggregate();
    assert_eq!(hists.batch_ns.count(), CORES as u64 * ROUNDS);
}

#[test]
fn histogram_merge_order_is_irrelevant_across_threads() {
    // Two registries fed the same per-core histograms in opposite core
    // orders by racing threads must aggregate identically — the
    // cross-thread version of the property tests' associativity/
    // commutativity laws.
    let build = |order: Vec<usize>| {
        let registry = Arc::new(StatsRegistry::new(CORES));
        let mut handles = Vec::new();
        for core in order {
            let registry = Arc::clone(&registry);
            handles.push(thread::spawn(move || {
                let mut h = HistSet::default();
                for i in 0..50u64 {
                    h.batch_ns.record((core as u64 + 1) * 100 + i);
                    h.out_bytes.record((core as u64 + 1) * 1500);
                }
                registry.merge_core_hists(core, &h);
            }));
        }
        for h in handles {
            h.join().expect("merger panicked");
        }
        registry.hist_aggregate()
    };
    let forward = build((0..CORES).collect());
    let reverse = build((0..CORES).rev().collect());
    assert_eq!(forward.batch_ns.count(), reverse.batch_ns.count());
    assert_eq!(forward.batch_ns.sum(), reverse.batch_ns.sum());
    assert_eq!(forward.batch_ns.p50(), reverse.batch_ns.p50());
    assert_eq!(forward.batch_ns.p99(), reverse.batch_ns.p99());
    assert_eq!(forward.out_bytes.max(), reverse.out_bytes.max());
}
