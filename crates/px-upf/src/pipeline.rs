//! The BESS-like UPF datapath: a fixed module chain processing real
//! packets, each module priced in cycles.
//!
//! Chain (mirroring the OMEC/BESS UPF):
//!
//! ```text
//! RX → Parser → SessionLookup (PDR) → QER policer → FAR apply
//!    → Counters → TX
//! ```
//!
//! The per-module cycle prices sum exactly to the calibrated Fig. 1a
//! fixed cost ([`px_sim::calib::upf_cycles`]); a unit test enforces the
//! identity, so re-tuning calibration forces this table to follow.

use crate::rules::{FarAction, SessionTable};
use px_sim::calib;
use px_wire::gtpu::{GtpuRepr, GTPU_PORT};
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::udp::UdpDatagram;
use px_wire::{IpProtocol, UdpRepr};
use std::net::Ipv4Addr;

/// Per-module cycle prices. Their sum must equal the fixed part of
/// [`calib::upf_cycles`] (enforced by `module_costs_match_calibration`).
pub mod cost {
    /// RX descriptor + mbuf bookkeeping.
    pub const RX: f64 = 80.0;
    /// Header parsing (Ethernet/IP/UDP/GTP-U).
    pub const PARSER: f64 = 150.0;
    /// PDR classification (hash lookup into the session table).
    pub const PDR_LOOKUP: f64 = 300.0;
    /// QER token-bucket update.
    pub const QER: f64 = 85.0;
    /// FAR application: GTP-U encap or decap (header-only work).
    pub const FAR: f64 = 120.0;
    /// Usage-reporting counters.
    pub const COUNTERS: f64 = 70.0;
    /// FIB lookup + TX descriptor.
    pub const TX: f64 = 150.0;
    /// Per-byte DMA touch (cycles/byte).
    pub const PER_BYTE: f64 = 0.0092;

    /// The fixed per-packet sum.
    pub const FIXED_SUM: f64 = RX + PARSER + PDR_LOOKUP + QER + FAR + COUNTERS + TX;
}

/// The outcome of pushing one packet through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpfVerdict {
    /// Forwarded; the (possibly re-encapsulated) output packet.
    Forward(Vec<u8>),
    /// Dropped: no matching PDR.
    NoRule,
    /// Dropped: QER policing.
    Policed,
    /// Dropped: malformed.
    Malformed,
}

/// Per-pipeline counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct UpfStats {
    /// Packets in.
    pub pkts_in: u64,
    /// Packets forwarded.
    pub pkts_out: u64,
    /// Bytes forwarded (input sizes).
    pub bytes_in: u64,
    /// Drops for the three causes.
    pub no_rule: u64,
    /// QER drops.
    pub policed: u64,
    /// Malformed drops.
    pub malformed: u64,
    /// Total cycles spent.
    pub cycles: f64,
}

/// The single-core UPF pipeline.
#[derive(Debug)]
pub struct UpfPipeline {
    /// Installed rules.
    pub table: SessionTable,
    /// The UPF's N3 (access-side) address, used as the GTP-U source.
    pub n3_addr: Ipv4Addr,
    /// Counters.
    pub stats: UpfStats,
    ident: u16,
}

impl UpfPipeline {
    /// Creates a pipeline.
    pub fn new(n3_addr: Ipv4Addr, table: SessionTable) -> Self {
        UpfPipeline {
            table,
            n3_addr,
            stats: UpfStats::default(),
            ident: 0x5500,
        }
    }

    /// Processes one packet arriving on the access (N3) side: expects
    /// IPv4/UDP:2152/GTP-U, decapsulates, forwards the inner packet.
    pub fn push_uplink(&mut self, now_ns: u64, pkt: &[u8]) -> UpfVerdict {
        self.stats.pkts_in += 1;
        self.stats.bytes_in += pkt.len() as u64;
        self.stats.cycles += cost::RX + cost::PARSER + cost::PER_BYTE * pkt.len() as f64;

        let parsed = (|| {
            let ip = Ipv4Packet::new_checked(pkt).ok()?;
            if ip.protocol() != IpProtocol::Udp {
                return None;
            }
            let udp = UdpDatagram::new_checked(ip.payload()).ok()?;
            if udp.dst_port() != GTPU_PORT {
                return None;
            }
            let (gtpu, inner) = GtpuRepr::parse(udp.payload()).ok()?;
            Some((gtpu.teid, inner.to_vec()))
        })();
        let Some((teid, inner)) = parsed else {
            self.stats.malformed += 1;
            return UpfVerdict::Malformed;
        };

        self.stats.cycles += cost::PDR_LOOKUP;
        let Some(pdr) = self.table.match_uplink(teid).copied() else {
            self.stats.no_rule += 1;
            return UpfVerdict::NoRule;
        };
        self.stats.cycles += cost::QER;
        if !self.table.meter(pdr.qer_id, now_ns, pkt.len()) {
            self.stats.policed += 1;
            return UpfVerdict::Policed;
        }
        self.stats.cycles += cost::FAR + cost::COUNTERS + cost::TX;
        match self.table.far(pdr.far_id).map(|f| f.action) {
            Some(FarAction::Decapsulate) => {
                self.stats.pkts_out += 1;
                UpfVerdict::Forward(inner)
            }
            Some(FarAction::Drop) | None => {
                self.stats.no_rule += 1;
                UpfVerdict::NoRule
            }
            Some(FarAction::Encapsulate { .. }) => {
                // An uplink PDR pointing at an encap FAR is a control-plane
                // bug; treat as no-rule.
                self.stats.no_rule += 1;
                UpfVerdict::NoRule
            }
        }
    }

    /// Processes one packet arriving on the data-network (N6) side:
    /// classifies by destination UE address and GTP-U-encapsulates it
    /// towards the gNodeB.
    pub fn push_downlink(&mut self, now_ns: u64, pkt: &[u8]) -> UpfVerdict {
        self.stats.pkts_in += 1;
        self.stats.bytes_in += pkt.len() as u64;
        self.stats.cycles += cost::RX + cost::PARSER + cost::PER_BYTE * pkt.len() as f64;

        let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
            self.stats.malformed += 1;
            return UpfVerdict::Malformed;
        };
        let ue = ip.dst();

        self.stats.cycles += cost::PDR_LOOKUP;
        let Some(pdr) = self.table.match_downlink(ue).copied() else {
            self.stats.no_rule += 1;
            return UpfVerdict::NoRule;
        };
        self.stats.cycles += cost::QER;
        if !self.table.meter(pdr.qer_id, now_ns, pkt.len()) {
            self.stats.policed += 1;
            return UpfVerdict::Policed;
        }
        self.stats.cycles += cost::FAR + cost::COUNTERS + cost::TX;
        match self.table.far(pdr.far_id).map(|f| f.action) {
            Some(FarAction::Encapsulate { peer, teid }) => {
                let gtpu = GtpuRepr::encapsulate(teid, &pkt[..ip.total_len()]).expect("inner fits");
                let dg = UdpRepr {
                    src_port: GTPU_PORT,
                    dst_port: GTPU_PORT,
                }
                .build_datagram(self.n3_addr, peer, &gtpu)
                .expect("fits");
                let mut outer = Ipv4Repr::new(self.n3_addr, peer, IpProtocol::Udp, dg.len());
                outer.ident = self.ident;
                self.ident = self.ident.wrapping_add(1);
                match outer.build_packet(&dg) {
                    Ok(out) => {
                        self.stats.pkts_out += 1;
                        UpfVerdict::Forward(out)
                    }
                    Err(_) => {
                        self.stats.malformed += 1;
                        UpfVerdict::Malformed
                    }
                }
            }
            _ => {
                self.stats.no_rule += 1;
                UpfVerdict::NoRule
            }
        }
    }

    /// Single-core throughput implied by the cycles spent so far.
    pub fn throughput_bps(&self) -> f64 {
        if self.stats.cycles <= 0.0 {
            return 0.0;
        }
        self.stats.bytes_in as f64 * 8.0 * calib::FREQ_HZ / self.stats.cycles
    }
}

/// The Fig. 1a quantity: single-core UPF throughput at a given MTU,
/// measured by pushing a real uplink workload (GTP-U packets sized to
/// the MTU) from `n_flows` sessions through the pipeline.
pub fn upf_throughput_bps(mtu: usize, n_flows: usize, pkts: usize) -> f64 {
    let mut table = SessionTable::new();
    let gnb = Ipv4Addr::new(10, 30, 0, 1);
    for i in 0..n_flows {
        let ue = Ipv4Addr::new(10, 45, (i / 250) as u8, (i % 250) as u8 + 1);
        crate::rules::install_session(&mut table, i as u32, 0x1000 + i as u32, ue, gnb);
    }
    let n3 = Ipv4Addr::new(10, 30, 0, 254);
    let mut upf = UpfPipeline::new(n3, table);

    // Pre-build one uplink packet per flow (MTU-sized outer packet).
    let dn = Ipv4Addr::new(8, 8, 8, 8);
    let packets: Vec<Vec<u8>> = (0..n_flows)
        .map(|i| {
            let ue = Ipv4Addr::new(10, 45, (i / 250) as u8, (i % 250) as u8 + 1);
            // inner = MTU - outer IP(20) - outer UDP(8) - GTP-U(8)
            let inner_len = mtu - 36;
            let inner_payload = vec![0u8; inner_len - 28];
            let dg = UdpRepr {
                src_port: 40000,
                dst_port: 443,
            }
            .build_datagram(ue, dn, &inner_payload)
            .expect("fits");
            let inner = Ipv4Repr::new(ue, dn, IpProtocol::Udp, dg.len())
                .build_packet(&dg)
                .expect("fits");
            let gtpu = GtpuRepr::encapsulate(0x1000 + i as u32, &inner).expect("fits");
            let outer_dg = UdpRepr {
                src_port: GTPU_PORT,
                dst_port: GTPU_PORT,
            }
            .build_datagram(gnb, n3, &gtpu)
            .expect("fits");
            Ipv4Repr::new(gnb, n3, IpProtocol::Udp, outer_dg.len())
                .build_packet(&outer_dg)
                .expect("fits")
        })
        .collect();

    for i in 0..pkts {
        let v = upf.push_uplink(i as u64, &packets[i % n_flows]);
        debug_assert!(matches!(v, UpfVerdict::Forward(_)));
    }
    upf.throughput_bps()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::install_session;

    /// The per-module prices must sum to the calibrated anchor.
    #[test]
    fn module_costs_match_calibration() {
        let fixed = calib::upf_cycles(0);
        assert!(
            (cost::FIXED_SUM - fixed).abs() < 1e-9,
            "module sum {} vs calib {}",
            cost::FIXED_SUM,
            fixed
        );
    }

    fn setup() -> (UpfPipeline, Ipv4Addr, Ipv4Addr) {
        let mut table = SessionTable::new();
        let ue = Ipv4Addr::new(10, 45, 0, 1);
        let gnb = Ipv4Addr::new(10, 30, 0, 1);
        install_session(&mut table, 0, 0x100, ue, gnb);
        (
            UpfPipeline::new(Ipv4Addr::new(10, 30, 0, 254), table),
            ue,
            gnb,
        )
    }

    fn uplink_pkt(ue: Ipv4Addr, gnb: Ipv4Addr, n3: Ipv4Addr, teid: u32) -> Vec<u8> {
        let dn = Ipv4Addr::new(8, 8, 8, 8);
        let dg = UdpRepr {
            src_port: 40000,
            dst_port: 443,
        }
        .build_datagram(ue, dn, b"hello-upf")
        .unwrap();
        let inner = Ipv4Repr::new(ue, dn, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        let gtpu = GtpuRepr::encapsulate(teid, &inner).unwrap();
        let outer = UdpRepr {
            src_port: GTPU_PORT,
            dst_port: GTPU_PORT,
        }
        .build_datagram(gnb, n3, &gtpu)
        .unwrap();
        Ipv4Repr::new(gnb, n3, IpProtocol::Udp, outer.len())
            .build_packet(&outer)
            .unwrap()
    }

    #[test]
    fn uplink_decapsulates() {
        let (mut upf, ue, gnb) = setup();
        let pkt = uplink_pkt(ue, gnb, upf.n3_addr, 0x100);
        match upf.push_uplink(0, &pkt) {
            UpfVerdict::Forward(inner) => {
                let ip = Ipv4Packet::new_checked(&inner[..]).unwrap();
                assert_eq!(ip.src(), ue);
                assert_eq!(ip.protocol(), IpProtocol::Udp);
                let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
                assert_eq!(udp.payload(), b"hello-upf");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(upf.stats.pkts_out, 1);
    }

    #[test]
    fn downlink_encapsulates_and_roundtrips() {
        let (mut upf, ue, gnb) = setup();
        let dn = Ipv4Addr::new(8, 8, 8, 8);
        let dg = UdpRepr {
            src_port: 443,
            dst_port: 40000,
        }
        .build_datagram(dn, ue, b"down")
        .unwrap();
        let pkt = Ipv4Repr::new(dn, ue, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        match upf.push_downlink(0, &pkt) {
            UpfVerdict::Forward(outer) => {
                let ip = Ipv4Packet::new_checked(&outer[..]).unwrap();
                assert_eq!(ip.dst(), gnb);
                let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
                assert_eq!(udp.dst_port(), GTPU_PORT);
                let (g, inner) = GtpuRepr::parse(udp.payload()).unwrap();
                assert_eq!(g.teid, 0x100);
                assert_eq!(inner, &pkt[..]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_teid_and_ue_drop() {
        let (mut upf, ue, gnb) = setup();
        let pkt = uplink_pkt(ue, gnb, upf.n3_addr, 0xBAD);
        assert_eq!(upf.push_uplink(0, &pkt), UpfVerdict::NoRule);
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 2,
        }
        .build_datagram(gnb, Ipv4Addr::new(10, 45, 9, 9), b"x")
        .unwrap();
        let pkt = Ipv4Repr::new(gnb, Ipv4Addr::new(10, 45, 9, 9), IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        assert_eq!(upf.push_downlink(0, &pkt), UpfVerdict::NoRule);
        assert_eq!(upf.stats.no_rule, 2);
    }

    #[test]
    fn malformed_counted() {
        let (mut upf, _, _) = setup();
        assert_eq!(upf.push_uplink(0, &[0u8; 10]), UpfVerdict::Malformed);
        // Non-GTP-U UDP also counts as malformed on the N3 side.
        let dg = UdpRepr {
            src_port: 1,
            dst_port: 53,
        }
        .build_datagram(Ipv4Addr::new(1, 1, 1, 1), upf.n3_addr, b"dns")
        .unwrap();
        let pkt = Ipv4Repr::new(
            Ipv4Addr::new(1, 1, 1, 1),
            upf.n3_addr,
            IpProtocol::Udp,
            dg.len(),
        )
        .build_packet(&dg)
        .unwrap();
        assert_eq!(upf.push_uplink(0, &pkt), UpfVerdict::Malformed);
    }

    /// The Fig. 1a anchor, reproduced through the real pipeline.
    #[test]
    fn fig1a_anchor_through_pipeline() {
        let t9000 = upf_throughput_bps(9000, 100, 20_000);
        let t1500 = upf_throughput_bps(1500, 100, 20_000);
        assert!(
            (t9000 / 1e9 - 208.0).abs() < 8.0,
            "9 KB: {} Gbps",
            t9000 / 1e9
        );
        let speedup = t9000 / t1500;
        assert!((speedup - 5.6).abs() < 0.3, "speedup {speedup}");
    }

    #[test]
    fn policer_drops_over_rate() {
        let mut table = SessionTable::new();
        let ue = Ipv4Addr::new(10, 45, 0, 1);
        let gnb = Ipv4Addr::new(10, 30, 0, 1);
        install_session(&mut table, 0, 0x100, ue, gnb);
        // Override the QER with a tight policer.
        table.install_qer(crate::rules::Qer {
            id: 5000,
            mbr_bps: 8_000,
            burst_bytes: 200,
        });
        let mut upf = UpfPipeline::new(Ipv4Addr::new(10, 30, 0, 254), table);
        let pkt = uplink_pkt(ue, gnb, upf.n3_addr, 0x100);
        // The packet (~100 B) passes once on the initial burst, then gets
        // policed at time 0.
        assert!(matches!(upf.push_uplink(0, &pkt), UpfVerdict::Forward(_)));
        assert!(matches!(upf.push_uplink(0, &pkt), UpfVerdict::Forward(_)));
        assert_eq!(upf.push_uplink(0, &pkt), UpfVerdict::Policed);
        assert!(upf.stats.policed >= 1);
    }
}
