//! The UPF as a simulator node: splice it between the access (N3) and
//! data (N6) networks and run real encapsulated traffic through it.
//!
//! Port 0 is N3 (GTP-U towards gNodeBs), port 1 is N6 (plain IP towards
//! the data network). The node also models the single-core datapath
//! budget: packets are admitted to a [`px_sim::CpuServer`] priced by the
//! pipeline's cycle counters, so offered load beyond the core's capacity
//! is dropped exactly as Fig. 1a's saturation measurements imply.

use crate::pipeline::{UpfPipeline, UpfVerdict};
use crate::rules::SessionTable;
use px_sim::node::{Ctx, Node, PortId};
use px_sim::{calib, CpuServer, Nanos};
use px_wire::PacketBuf;
use std::any::Any;
use std::net::Ipv4Addr;

/// N3 (access/GTP-U) port.
pub const N3_PORT: PortId = PortId(0);
/// N6 (data network) port.
pub const N6_PORT: PortId = PortId(1);

/// The UPF node.
pub struct UpfNode {
    /// The datapath.
    pub pipeline: UpfPipeline,
    cpu: CpuServer,
    /// Packets dropped because the core was saturated.
    pub overload_drops: u64,
}

impl UpfNode {
    /// Creates a UPF node with the given session rules.
    pub fn new(n3_addr: Ipv4Addr, table: SessionTable) -> Self {
        UpfNode {
            pipeline: UpfPipeline::new(n3_addr, table),
            cpu: CpuServer::new(calib::FREQ_HZ, Nanos::from_millis(1)),
            overload_drops: 0,
        }
    }
}

impl Node for UpfNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: PacketBuf) {
        let bytes = pkt.as_slice();
        let cycles_before = self.pipeline.stats.cycles;
        let (verdict, out_port) = match port {
            N3_PORT => (self.pipeline.push_uplink(ctx.now.0, bytes), N6_PORT),
            _ => (self.pipeline.push_downlink(ctx.now.0, bytes), N3_PORT),
        };
        let spent = self.pipeline.stats.cycles - cycles_before;
        // Admit the work to the core; a saturated core drops at the ring.
        if self.cpu.admit(ctx.now, spent).is_none() {
            self.overload_drops += 1;
            return;
        }
        if let UpfVerdict::Forward(out) = verdict {
            ctx.send(out_port, PacketBuf::from_payload(&out));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::install_session;
    use px_sim::link::LinkConfig;
    use px_sim::network::Network;
    use px_sim::node::NodeId;
    use px_wire::gtpu::{GtpuRepr, GTPU_PORT};
    use px_wire::ipv4::Ipv4Repr;
    use px_wire::{IpProtocol, UdpRepr};

    const GNB: Ipv4Addr = Ipv4Addr::new(10, 30, 0, 1);
    const N3: Ipv4Addr = Ipv4Addr::new(10, 30, 0, 254);
    const UE: Ipv4Addr = Ipv4Addr::new(10, 45, 0, 1);
    const DN: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    struct Injector {
        pkts: Vec<Vec<u8>>,
    }
    impl Node for Injector {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for p in self.pkts.drain(..) {
                ctx.send(PortId(0), PacketBuf::from_payload(&p));
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: PacketBuf) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    #[derive(Default)]
    struct Collector {
        pkts: Vec<Vec<u8>>,
    }
    impl Node for Collector {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: PacketBuf) {
            self.pkts.push(pkt.as_slice().to_vec());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn uplink_pkt(payload: &[u8]) -> Vec<u8> {
        let dg = UdpRepr {
            src_port: 40000,
            dst_port: 443,
        }
        .build_datagram(UE, DN, payload)
        .unwrap();
        let inner = Ipv4Repr::new(UE, DN, IpProtocol::Udp, dg.len())
            .build_packet(&dg)
            .unwrap();
        let gtpu = GtpuRepr::encapsulate(0x100, &inner).unwrap();
        let outer = UdpRepr {
            src_port: GTPU_PORT,
            dst_port: GTPU_PORT,
        }
        .build_datagram(GNB, N3, &gtpu)
        .unwrap();
        Ipv4Repr::new(GNB, N3, IpProtocol::Udp, outer.len())
            .build_packet(&outer)
            .unwrap()
    }

    fn build() -> (Network, NodeId, NodeId) {
        let mut table = SessionTable::new();
        install_session(&mut table, 0, 0x100, UE, GNB);
        let mut net = Network::new(5);
        let inj = net.add_node(Injector {
            pkts: (0..20).map(|i| uplink_pkt(&vec![i as u8; 400])).collect(),
        });
        let upf = net.add_node(UpfNode::new(N3, table));
        let dn = net.add_node(Collector::default());
        let cfg = LinkConfig::new(10_000_000_000, Nanos::from_micros(50), 9000);
        net.connect((inj, PortId(0)), (upf, N3_PORT), cfg);
        net.connect((upf, N6_PORT), (dn, PortId(0)), cfg);
        net.run_until(Nanos::from_millis(10));
        (net, upf, dn)
    }

    #[test]
    fn uplink_traffic_is_decapsulated_end_to_end() {
        let (net, upf, dn) = build();
        let got = &net.node_ref::<Collector>(dn).pkts;
        assert_eq!(got.len(), 20);
        for p in got {
            let ip = px_wire::ipv4::Ipv4Packet::new_checked(&p[..]).unwrap();
            assert_eq!(ip.src(), UE, "inner packet forwarded");
            assert_eq!(ip.dst(), DN);
        }
        let node = net.node_ref::<UpfNode>(upf);
        assert_eq!(node.pipeline.stats.pkts_out, 20);
        assert_eq!(node.overload_drops, 0);
        assert!(node.pipeline.stats.cycles > 0.0);
    }
}
