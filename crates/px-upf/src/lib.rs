//! # px-upf — a 5G user-plane function substrate
//!
//! The paper demonstrates middlebox benefits of large MTUs on the OMEC
//! UPF (Fig. 1a): a BESS/DPDK datapath that, per packet, parses headers,
//! matches packet-detection rules, applies forwarding-action rules
//! (GTP-U encap/decap), meters QoS, and counts usage — never touching
//! the payload. That header-only cost profile is why "UPF throughput
//! scales almost linearly with MTU size".
//!
//! This crate rebuilds that datapath:
//!
//! * [`rules`] — PDR/FAR/QER tables and the session model (3GPP TS
//!   29.244 shapes, simplified to what the datapath reads per packet);
//! * [`pipeline`] — a BESS-like module chain processing *real packets*
//!   (real GTP-U headers via [`px_wire::gtpu`]), with per-module cycle
//!   prices whose sum is pinned to the calibrated Fig. 1a anchor;
//! * [`throughput`](pipeline::upf_throughput_bps) — the single-core
//!   saturation throughput used to regenerate Fig. 1a.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod node;
pub mod pipeline;
pub mod rules;

pub use node::UpfNode;
pub use pipeline::{upf_throughput_bps, UpfPipeline};
pub use rules::{Direction, Far, FarAction, Pdr, Qer, SessionTable};
