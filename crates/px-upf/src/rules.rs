//! PDR/FAR/QER rule tables — the 3GPP TS 29.244 objects the UPF datapath
//! consults for every packet, reduced to the fields the fast path reads.
//!
//! * A **PDR** (packet detection rule) classifies a packet to a session:
//!   uplink packets match on the GTP-U TEID, downlink packets on the UE
//!   IP address. Highest precedence wins.
//! * A **FAR** (forwarding action rule) says what to do: decapsulate and
//!   route to the data network (uplink), or encapsulate towards the
//!   gNodeB tunnel (downlink).
//! * A **QER** (QoS enforcement rule) meters the flow against its
//!   bitrate; we implement a token bucket.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Traffic direction through the UPF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// UE → data network (arrives GTP-U encapsulated on N3).
    Uplink,
    /// Data network → UE (arrives plain on N6).
    Downlink,
}

/// A packet detection rule.
#[derive(Debug, Clone, Copy)]
pub struct Pdr {
    /// Rule id.
    pub id: u32,
    /// Precedence (lower wins, per TS 29.244).
    pub precedence: u32,
    /// Uplink match: the local TEID, if this is an uplink PDR.
    pub teid: Option<u32>,
    /// Downlink match: the UE address, if this is a downlink PDR.
    pub ue_addr: Option<Ipv4Addr>,
    /// The FAR this PDR points at.
    pub far_id: u32,
    /// The QER applied.
    pub qer_id: u32,
}

/// What a FAR does to a matched packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FarAction {
    /// Strip the GTP-U header and forward the inner packet (uplink).
    Decapsulate,
    /// Wrap the packet in GTP-U towards `(peer, teid)` (downlink).
    Encapsulate {
        /// gNodeB address.
        peer: Ipv4Addr,
        /// Remote tunnel id.
        teid: u32,
    },
    /// Drop (e.g. session paused).
    Drop,
}

/// A forwarding action rule.
#[derive(Debug, Clone, Copy)]
pub struct Far {
    /// Rule id.
    pub id: u32,
    /// The action.
    pub action: FarAction,
}

/// A QoS enforcement rule: a token-bucket policer.
#[derive(Debug, Clone, Copy)]
pub struct Qer {
    /// Rule id.
    pub id: u32,
    /// Maximum bitrate in bits/sec (`u64::MAX` = unmetered).
    pub mbr_bps: u64,
    /// Bucket depth in bytes.
    pub burst_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct BucketState {
    tokens: f64,
    last_ns: u64,
}

/// The UPF's installed rules, indexed for the fast path.
#[derive(Debug, Default)]
pub struct SessionTable {
    uplink: HashMap<u32, Pdr>,        // teid -> pdr
    downlink: HashMap<Ipv4Addr, Pdr>, // ue addr -> pdr
    fars: HashMap<u32, Far>,
    qers: HashMap<u32, Qer>,
    buckets: HashMap<u32, BucketState>,
}

impl SessionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs one session's rules (one uplink + one downlink PDR is the
    /// common shape).
    pub fn install_pdr(&mut self, pdr: Pdr) {
        match (pdr.teid, pdr.ue_addr) {
            (Some(teid), _) => {
                // Keep the highest-precedence (lowest value) rule.
                let replace = self
                    .uplink
                    .get(&teid)
                    .map(|old| pdr.precedence < old.precedence)
                    .unwrap_or(true);
                if replace {
                    self.uplink.insert(teid, pdr);
                }
            }
            (None, Some(addr)) => {
                let replace = self
                    .downlink
                    .get(&addr)
                    .map(|old| pdr.precedence < old.precedence)
                    .unwrap_or(true);
                if replace {
                    self.downlink.insert(addr, pdr);
                }
            }
            (None, None) => {}
        }
    }

    /// Installs a FAR.
    pub fn install_far(&mut self, far: Far) {
        self.fars.insert(far.id, far);
    }

    /// Installs a QER.
    pub fn install_qer(&mut self, qer: Qer) {
        self.qers.insert(qer.id, qer);
        self.buckets.insert(
            qer.id,
            BucketState {
                tokens: qer.burst_bytes as f64,
                last_ns: 0,
            },
        );
    }

    /// Uplink classification by TEID.
    pub fn match_uplink(&self, teid: u32) -> Option<&Pdr> {
        self.uplink.get(&teid)
    }

    /// Downlink classification by UE address.
    pub fn match_downlink(&self, ue: Ipv4Addr) -> Option<&Pdr> {
        self.downlink.get(&ue)
    }

    /// FAR lookup.
    pub fn far(&self, id: u32) -> Option<&Far> {
        self.fars.get(&id)
    }

    /// Meters `bytes` against QER `id` at time `now_ns`; returns whether
    /// the packet conforms (false = police/drop).
    pub fn meter(&mut self, id: u32, now_ns: u64, bytes: usize) -> bool {
        let Some(qer) = self.qers.get(&id) else {
            return true; // no QER installed: pass
        };
        if qer.mbr_bps == u64::MAX {
            return true;
        }
        let bucket = self.buckets.get_mut(&id).expect("installed together");
        let dt = now_ns.saturating_sub(bucket.last_ns) as f64 / 1e9;
        bucket.last_ns = now_ns;
        bucket.tokens = (bucket.tokens + dt * qer.mbr_bps as f64 / 8.0).min(qer.burst_bytes as f64);
        if bucket.tokens >= bytes as f64 {
            bucket.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Number of installed sessions (uplink PDRs).
    pub fn sessions(&self) -> usize {
        self.uplink.len()
    }
}

/// Installs a standard session: uplink TEID `teid`, UE `ue`, gNodeB
/// `gnb`, unmetered.
pub fn install_session(table: &mut SessionTable, idx: u32, teid: u32, ue: Ipv4Addr, gnb: Ipv4Addr) {
    let far_ul = 1000 + idx * 2;
    let far_dl = far_ul + 1;
    let qer = 5000 + idx;
    table.install_far(Far {
        id: far_ul,
        action: FarAction::Decapsulate,
    });
    table.install_far(Far {
        id: far_dl,
        action: FarAction::Encapsulate { peer: gnb, teid },
    });
    table.install_qer(Qer {
        id: qer,
        mbr_bps: u64::MAX,
        burst_bytes: 1 << 20,
    });
    table.install_pdr(Pdr {
        id: idx * 2,
        precedence: 100,
        teid: Some(teid),
        ue_addr: None,
        far_id: far_ul,
        qer_id: qer,
    });
    table.install_pdr(Pdr {
        id: idx * 2 + 1,
        precedence: 100,
        teid: None,
        ue_addr: Some(ue),
        far_id: far_dl,
        qer_id: qer,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_install_and_match() {
        let mut t = SessionTable::new();
        let ue = Ipv4Addr::new(10, 45, 0, 1);
        let gnb = Ipv4Addr::new(10, 30, 0, 1);
        install_session(&mut t, 0, 0x100, ue, gnb);
        assert_eq!(t.sessions(), 1);
        let up = t.match_uplink(0x100).expect("uplink PDR");
        assert_eq!(t.far(up.far_id).unwrap().action, FarAction::Decapsulate);
        let down = t.match_downlink(ue).expect("downlink PDR");
        match t.far(down.far_id).unwrap().action {
            FarAction::Encapsulate { peer, teid } => {
                assert_eq!(peer, gnb);
                assert_eq!(teid, 0x100);
            }
            other => panic!("{other:?}"),
        }
        assert!(t.match_uplink(0x999).is_none());
    }

    #[test]
    fn precedence_keeps_strongest_rule() {
        let mut t = SessionTable::new();
        t.install_pdr(Pdr {
            id: 1,
            precedence: 200,
            teid: Some(7),
            ue_addr: None,
            far_id: 1,
            qer_id: 1,
        });
        t.install_pdr(Pdr {
            id: 2,
            precedence: 50,
            teid: Some(7),
            ue_addr: None,
            far_id: 2,
            qer_id: 1,
        });
        t.install_pdr(Pdr {
            id: 3,
            precedence: 300,
            teid: Some(7),
            ue_addr: None,
            far_id: 3,
            qer_id: 1,
        });
        assert_eq!(t.match_uplink(7).unwrap().far_id, 2);
    }

    #[test]
    fn token_bucket_meters() {
        let mut t = SessionTable::new();
        t.install_qer(Qer {
            id: 1,
            mbr_bps: 8_000_000,
            burst_bytes: 10_000,
        }); // 1 MB/s
            // Burst passes up to the bucket depth.
        assert!(t.meter(1, 0, 10_000));
        assert!(!t.meter(1, 0, 1000), "bucket drained");
        // After 1 ms, 1000 bytes of tokens accrued.
        assert!(t.meter(1, 1_000_000, 1000));
        assert!(!t.meter(1, 1_000_000, 1));
    }

    #[test]
    fn missing_qer_passes() {
        let mut t = SessionTable::new();
        assert!(t.meter(42, 0, 1_000_000));
    }
}
