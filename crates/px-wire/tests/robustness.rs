//! Parser robustness: every wire-format parser in the crate must be
//! total — arbitrary input bytes may be rejected but never panic, and
//! accepted inputs must be internally consistent.

use proptest::prelude::*;
use px_wire::caravan::split_bundle;
use px_wire::ethernet::EthernetFrame;
use px_wire::fpmtud::{parse_probe, parse_report};
use px_wire::frag::Reassembler;
use px_wire::gtpu::GtpuRepr;
use px_wire::icmpv4::Icmpv4Message;
use px_wire::ipv4::{Ipv4Packet, Ipv4Repr};
use px_wire::tcp::{parse_options, TcpRepr, TcpSegment};
use px_wire::udp::UdpDatagram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No parser panics on arbitrary bytes.
    #[test]
    fn parsers_are_total(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = EthernetFrame::new_checked(&data[..]);
        if let Ok(ip) = Ipv4Packet::new_checked(&data[..]) {
            // An accepted IPv4 view exposes consistent accessors.
            prop_assert!(ip.header_len() >= 20);
            prop_assert!(ip.total_len() <= data.len());
            let _ = ip.payload();
            let _ = Ipv4Repr::parse(&ip);
        }
        if let Ok(tcp) = TcpSegment::new_checked(&data[..]) {
            prop_assert!(tcp.header_len() >= 20);
            let _ = tcp.payload();
            let _ = TcpRepr::parse(&tcp);
        }
        if let Ok(udp) = UdpDatagram::new_checked(&data[..]) {
            prop_assert!(udp.length() >= 8);
            let _ = udp.payload();
        }
        let _ = parse_options(&data);
        let _ = Icmpv4Message::parse(&data);
        let _ = GtpuRepr::parse(&data);
        let _ = split_bundle(&data);
        let _ = parse_probe(&data);
        let _ = parse_report(&data);
    }

    /// The reassembler never panics and never fabricates completions from
    /// garbage.
    #[test]
    fn reassembler_is_total(
        packets in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128),
            0..16
        )
    ) {
        let mut r = Reassembler::new();
        for p in &packets {
            let _ = r.push(p, 0);
        }
        let _ = r.expire(u64::MAX, 1);
    }

    /// Coalesce/split helpers tolerate arbitrary inputs.
    #[test]
    fn nic_ops_are_total(
        a in proptest::collection::vec(any::<u8>(), 0..256),
        b in proptest::collection::vec(any::<u8>(), 0..256),
        mtu in 1usize..3000,
    ) {
        let _ = px_sim::nic::try_coalesce(&a, &b, 9000);
        let _ = px_sim::nic::tso_split(&a, mtu);
        let _ = px_sim::nic::flow_key_of(&a);
        let _ = px_wire::frag::fragment(&a, mtu);
    }
}
