//! Panic-free byte-slice access primitives for the datapath.
//!
//! The hot-path modules of this crate and `px-core` are forbidden (by
//! `px-analyze` rule R1) from using direct range slicing — `b[a..c]`
//! panics on a malformed length field, and PXGW sits on the forwarding
//! path of every flow entering a b-network. These helpers express the
//! same fixed-offset header reads and writes through `slice::get`, so a
//! short buffer degrades to a well-defined value (`0`, the empty slice,
//! or a `false` return) instead of unwinding the datapath.
//!
//! All helpers are branch-cheap: on validated buffers (the normal case —
//! every parser checks lengths once in `new_checked`) the bounds test is
//! perfectly predicted and the codegen matches the panicking form minus
//! the panic landing pad.

/// Reads a big-endian `u16` at `off`, or 0 if out of bounds.
#[inline]
pub fn be16(b: &[u8], off: usize) -> u16 {
    match b.get(off..off.wrapping_add(2)) {
        Some(s) => u16::from_be_bytes([s[0], s[1]]),
        None => 0,
    }
}

/// Reads a big-endian `u32` at `off`, or 0 if out of bounds.
#[inline]
pub fn be32(b: &[u8], off: usize) -> u32 {
    match b.get(off..off.wrapping_add(4)) {
        Some(s) => u32::from_be_bytes([s[0], s[1], s[2], s[3]]),
        None => 0,
    }
}

/// Reads a little-endian `u64` at `off`, or 0 if out of bounds.
#[inline]
pub fn le64(b: &[u8], off: usize) -> u64 {
    match b.get(off..off.wrapping_add(8)) {
        Some(s) => u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]),
        None => 0,
    }
}

/// Writes a big-endian `u16` at `off`. Returns whether it fit.
#[inline]
pub fn put_be16(b: &mut [u8], off: usize, v: u16) -> bool {
    put(b, off, &v.to_be_bytes())
}

/// Writes a big-endian `u32` at `off`. Returns whether it fit.
#[inline]
pub fn put_be32(b: &mut [u8], off: usize, v: u32) -> bool {
    put(b, off, &v.to_be_bytes())
}

/// Copies `src` into `b` at `off`. Returns whether it fit; on a bounds
/// miss nothing is written.
#[inline]
pub fn put(b: &mut [u8], off: usize, src: &[u8]) -> bool {
    match off
        .checked_add(src.len())
        .and_then(|end| b.get_mut(off..end))
    {
        Some(dst) => {
            // px-analyze: allow(R7, reason = "bounds-checked fixed-width header-field writer (MACs, lengths, checksums); R7 targets payload copies and headers are rewritten in place by design")
            dst.copy_from_slice(src);
            true
        }
        None => false,
    }
}

/// The subslice `b[start..end]`, or the empty slice if the range is
/// inverted or out of bounds.
#[inline]
pub fn range(b: &[u8], start: usize, end: usize) -> &[u8] {
    b.get(start..end).unwrap_or(&[])
}

/// The subslice `b[start..]`, or the empty slice if out of bounds.
#[inline]
pub fn range_from(b: &[u8], start: usize) -> &[u8] {
    b.get(start..).unwrap_or(&[])
}

/// The subslice `b[..end]`, or the empty slice if out of bounds.
#[inline]
pub fn range_to(b: &[u8], end: usize) -> &[u8] {
    b.get(..end).unwrap_or(&[])
}

/// The mutable subslice `b[start..end]`, or the empty slice.
#[inline]
pub fn range_mut(b: &mut [u8], start: usize, end: usize) -> &mut [u8] {
    b.get_mut(start..end).unwrap_or(&mut [])
}

/// The mutable subslice `b[start..]`, or the empty slice.
#[inline]
pub fn range_from_mut(b: &mut [u8], start: usize) -> &mut [u8] {
    b.get_mut(start..).unwrap_or(&mut [])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_and_out_of_bounds() {
        let b = [0x12u8, 0x34, 0x56, 0x78, 0x9A];
        assert_eq!(be16(&b, 0), 0x1234);
        assert_eq!(be16(&b, 3), 0x789A);
        assert_eq!(be16(&b, 4), 0, "straddles the end");
        assert_eq!(be16(&b, usize::MAX), 0, "offset overflow");
        assert_eq!(be32(&b, 1), 0x3456789A);
        assert_eq!(be32(&b, 2), 0);
        assert_eq!(le64(&[1, 0, 0, 0, 0, 0, 0, 0], 0), 1);
        assert_eq!(le64(&b, 0), 0, "too short for 8 bytes");
    }

    #[test]
    fn writes_in_and_out_of_bounds() {
        let mut b = [0u8; 4];
        assert!(put_be16(&mut b, 2, 0xBEEF));
        assert_eq!(b, [0, 0, 0xBE, 0xEF]);
        assert!(!put_be16(&mut b, 3, 0xFFFF), "would straddle the end");
        assert_eq!(b, [0, 0, 0xBE, 0xEF], "nothing written on a miss");
        assert!(!put(&mut b, usize::MAX, &[1]), "offset overflow");
        assert!(put_be32(&mut b, 0, 0x01020304));
        assert_eq!(b, [1, 2, 3, 4]);
    }

    #[test]
    fn ranges_degrade_to_empty() {
        let b = [1u8, 2, 3];
        assert_eq!(range(&b, 1, 3), &[2, 3]);
        assert_eq!(range(&b, 2, 1), &[] as &[u8], "inverted");
        assert_eq!(range(&b, 1, 9), &[] as &[u8], "past the end");
        assert_eq!(range_from(&b, 3), &[] as &[u8]);
        assert_eq!(range_from(&b, 4), &[] as &[u8]);
        assert_eq!(range_to(&b, 2), &[1, 2]);
        assert_eq!(range_to(&b, 9), &[] as &[u8]);
        let mut m = [1u8, 2, 3];
        range_mut(&mut m, 0, 2).fill(9);
        assert_eq!(m, [9, 9, 3]);
        assert_eq!(range_from_mut(&mut m, 9), &mut [] as &mut [u8]);
    }
}
