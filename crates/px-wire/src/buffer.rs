//! A packet buffer with headroom, so encapsulation (prepending an outer
//! header) and decapsulation (stripping one) never copy the payload.
//!
//! This mirrors what every serious datapath does (`mbuf` in DPDK, `skb` in
//! Linux): the payload sits at a configurable offset inside a larger
//! allocation, and headers are pushed in front of it or pulled off it by
//! moving the start cursor.

use crate::bytes;
use crate::error::{Error, Result};

/// Default headroom reserved in front of the payload.
///
/// Enough for Ethernet + outer IPv4 + outer UDP + GTP-U — the deepest
/// encapsulation stack any PacketExpress component builds.
pub const DEFAULT_HEADROOM: usize = 64;

/// An owned packet buffer with headroom.
///
/// ```
/// use px_wire::PacketBuf;
/// let mut pkt = PacketBuf::from_payload(b"hello");
/// pkt.push_front(&[0xAA, 0xBB]);             // encapsulate
/// assert_eq!(pkt.as_slice(), &[0xAA, 0xBB, b'h', b'e', b'l', b'l', b'o']);
/// let hdr = pkt.pull_front(2).unwrap();      // decapsulate
/// assert_eq!(hdr, vec![0xAA, 0xBB]);
/// assert_eq!(pkt.as_slice(), b"hello");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketBuf {
    data: Vec<u8>,
    /// Offset of the first live byte in `data`.
    head: usize,
}

impl PacketBuf {
    /// Creates an empty buffer with the given headroom reserved.
    pub fn with_headroom(headroom: usize) -> Self {
        PacketBuf {
            data: vec![0; headroom],
            head: headroom,
        }
    }

    /// Creates a buffer holding a copy of `payload`, with
    /// [`DEFAULT_HEADROOM`] reserved in front of it.
    pub fn from_payload(payload: &[u8]) -> Self {
        let mut data = Vec::with_capacity(DEFAULT_HEADROOM + payload.len());
        data.resize(DEFAULT_HEADROOM, 0);
        data.extend_from_slice(payload);
        PacketBuf {
            data,
            head: DEFAULT_HEADROOM,
        }
    }

    /// Creates a zero-filled buffer of `len` live bytes with
    /// [`DEFAULT_HEADROOM`] in front, for in-place header construction.
    pub fn zeroed(len: usize) -> Self {
        PacketBuf {
            data: vec![0; DEFAULT_HEADROOM + len],
            head: DEFAULT_HEADROOM,
        }
    }

    /// Creates an empty buffer with `headroom` reserved and the backing
    /// allocation sized for `capacity` total bytes (headroom + payload),
    /// so a pool can hand out buffers that never reallocate on append.
    pub fn with_capacity(headroom: usize, capacity: usize) -> Self {
        let mut data = Vec::with_capacity(capacity.max(headroom).max(1));
        data.resize(headroom, 0);
        PacketBuf {
            data,
            head: headroom,
        }
    }

    /// Wraps an existing `Vec` as the live bytes with zero headroom and
    /// zero copying (unlike `From<Vec<u8>>`, which copies to make room).
    pub fn adopt(data: Vec<u8>) -> Self {
        PacketBuf { data, head: 0 }
    }

    /// Total bytes the backing allocation can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Resets the buffer to empty with `headroom` reserved, keeping the
    /// backing allocation. This is the pool-recycle operation.
    pub fn reset(&mut self, headroom: usize) {
        self.data.truncate(0);
        self.data.resize(headroom, 0);
        self.head = headroom;
    }

    /// A stable identifier for the backing allocation while the capacity
    /// is nonzero; used by the pool's debug double-free tracking.
    #[doc(hidden)]
    pub fn base_addr(&self) -> usize {
        self.data.as_ptr() as usize
    }

    /// Number of live bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether the buffer holds no live bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining headroom in front of the live bytes.
    pub fn headroom(&self) -> usize {
        self.head
    }

    /// The live bytes.
    pub fn as_slice(&self) -> &[u8] {
        bytes::range_from(&self.data, self.head)
    }

    /// The live bytes, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        bytes::range_from_mut(&mut self.data, self.head)
    }

    /// Prepends `header` in front of the live bytes.
    ///
    /// Uses headroom when available; falls back to a copy (re-allocating
    /// fresh headroom) when not, so it cannot fail and is infallible.
    pub fn push_front(&mut self, header: &[u8]) {
        if header.len() <= self.head {
            let start = self.head - header.len();
            bytes::put(&mut self.data, start, header);
            self.head = start;
        } else {
            // Slow path: rebuild with fresh headroom.
            // px-analyze: allow(R3, reason = "headroom-miss fallback: steady-state encapsulation writes into reserved headroom (gated by tests/hotpath_alloc.rs); a miss rebuilds the buffer instead of corrupting it")
            let mut data = Vec::with_capacity(DEFAULT_HEADROOM + header.len() + self.len());
            data.resize(DEFAULT_HEADROOM, 0);
            data.extend_from_slice(header);
            data.extend_from_slice(self.as_slice());
            self.data = data;
            self.head = DEFAULT_HEADROOM;
        }
    }

    /// Reserves `len` zeroed bytes in front of the live bytes and returns
    /// the buffer ready for in-place header writing via `as_mut_slice`.
    /// Infallible for the same reason as [`PacketBuf::push_front`].
    pub fn push_front_zeroed(&mut self, len: usize) {
        if len <= self.head {
            let start = self.head - len;
            bytes::range_mut(&mut self.data, start, self.head).fill(0);
            self.head = start;
        } else {
            // px-analyze: allow(R3, reason = "headroom-miss fallback: a scratch header longer than the reserved headroom is rebuilt off the fast path, mirroring push_front above")
            let zeros = vec![0u8; len];
            self.push_front(&zeros);
        }
    }

    /// Removes and returns the first `len` live bytes (decapsulation).
    pub fn pull_front(&mut self, len: usize) -> Result<Vec<u8>> {
        if len > self.len() {
            return Err(Error::Truncated);
        }
        let out = bytes::range(&self.data, self.head, self.head + len).to_vec();
        self.head += len;
        Ok(out)
    }

    /// Drops the first `len` live bytes without copying them out.
    pub fn advance(&mut self, len: usize) -> Result<()> {
        if len > self.len() {
            return Err(Error::Truncated);
        }
        self.head += len;
        Ok(())
    }

    /// Appends bytes at the tail.
    pub fn extend_from_slice(&mut self, tail: &[u8]) {
        self.data.extend_from_slice(tail);
    }

    /// Truncates the live bytes to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.data.truncate(self.head + len);
        }
    }

    /// Consumes the buffer and returns the live bytes as a `Vec<u8>`.
    pub fn into_vec(mut self) -> Vec<u8> {
        self.data.drain(..self.head);
        self.data
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(payload: Vec<u8>) -> Self {
        PacketBuf::from_payload(&payload)
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsMut<[u8]> for PacketBuf {
    fn as_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_payload_roundtrip() {
        let p = PacketBuf::from_payload(b"abc");
        assert_eq!(p.as_slice(), b"abc");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.headroom(), DEFAULT_HEADROOM);
    }

    #[test]
    fn push_pull_symmetry() {
        let mut p = PacketBuf::from_payload(b"payload");
        p.push_front(b"hdr");
        assert_eq!(p.len(), 10);
        assert_eq!(p.pull_front(3).unwrap(), b"hdr".to_vec());
        assert_eq!(p.as_slice(), b"payload");
    }

    #[test]
    fn push_front_exhausts_headroom_then_reallocates() {
        let mut p = PacketBuf::with_headroom(4);
        p.extend_from_slice(b"x");
        p.push_front(&[1, 2, 3, 4]); // fits exactly
        assert_eq!(p.headroom(), 0);
        p.push_front(&[9]); // must reallocate
        assert_eq!(p.as_slice(), &[9, 1, 2, 3, 4, b'x']);
        assert_eq!(p.headroom(), DEFAULT_HEADROOM);
    }

    #[test]
    fn pull_beyond_len_fails() {
        let mut p = PacketBuf::from_payload(b"ab");
        assert_eq!(p.pull_front(3).unwrap_err(), Error::Truncated);
        assert_eq!(p.as_slice(), b"ab"); // untouched on error
    }

    #[test]
    fn advance_and_truncate() {
        let mut p = PacketBuf::from_payload(b"abcdef");
        p.advance(2).unwrap();
        assert_eq!(p.as_slice(), b"cdef");
        p.truncate(2);
        assert_eq!(p.as_slice(), b"cd");
        p.truncate(10); // no-op
        assert_eq!(p.as_slice(), b"cd");
    }

    #[test]
    fn zeroed_and_into_vec() {
        let mut p = PacketBuf::zeroed(4);
        p.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(p.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn push_front_zeroed_clears_stale_bytes() {
        let mut p = PacketBuf::from_payload(b"xy");
        p.push_front(&[0xFF; 8]);
        p.pull_front(8).unwrap();
        p.push_front_zeroed(8);
        assert_eq!(&p.as_slice()[..8], &[0u8; 8]);
    }
}
