//! # px-wire — wire formats for PacketExpress
//!
//! This crate implements every on-the-wire format the PacketExpress system
//! touches, in the style of `smoltcp`: a typed *view* over a byte slice
//! (`Ipv4Packet<&[u8]>`, `TcpSegment<&mut [u8]>`, …) plus a plain-Rust
//! *repr* struct (`Ipv4Repr`, `TcpRepr`, …) that can parse from and emit
//! into such a view. Views validate on construction (`new_checked`), reprs
//! are always internally consistent.
//!
//! Formats implemented:
//!
//! * Ethernet II ([`ethernet`])
//! * IPv4 with options-free headers, checksums, and full
//!   fragmentation/reassembly support ([`ipv4`], [`frag`])
//! * TCP with the option kinds PXGW needs to rewrite (MSS, window scale,
//!   SACK-permitted, timestamps) ([`tcp`])
//! * UDP ([`udp`])
//! * ICMPv4 echo and destination-unreachable/fragmentation-needed
//!   ([`icmpv4`])
//! * GTP-U, the 5G user-plane encapsulation ([`gtpu`])
//! * PX-caravan, the paper's UDP tunnelling format (Fig. 3) ([`caravan`])
//!
//! Supporting pieces: a packet buffer with headroom for cheap
//! encapsulation ([`buffer`]), Internet checksum helpers including
//! incremental update ([`checksum`]), and 5-tuple flow keys with a
//! Toeplitz RSS hash ([`flow`]).

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod batchparse;
pub mod buffer;
pub mod bytes;
pub mod caravan;
pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod fpmtud;
pub mod frag;
pub mod gtpu;
pub mod icmpv4;
pub mod ipv4;
pub mod pool;
pub mod tcp;
pub mod udp;

pub use buffer::PacketBuf;
pub use error::{Error, Result};
pub use ethernet::{EtherType, EthernetFrame, EthernetRepr, MacAddr};
pub use flow::{FlowKey, IpProtocol, RssHasher};
pub use ipv4::{Ipv4Packet, Ipv4Repr};
pub use pool::{BufPool, PacketSink, SgPacket, SgRc, SgSource, VecSink};
pub use tcp::{TcpFlags, TcpOption, TcpRepr, TcpSegment};
pub use udp::{UdpDatagram, UdpRepr};

/// The legacy Internet MTU that the paper sets out to displace (bytes).
pub const LEGACY_MTU: usize = 1500;

/// The jumbo "internal MTU" used throughout the paper's evaluation (bytes).
pub const JUMBO_MTU: usize = 9000;

/// Minimum IPv4 header length (no options), in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// Minimum TCP header length (no options), in bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// UDP header length, in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// Ethernet II header length, in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;
