//! Flow identification: IP protocol numbers, 5-tuple flow keys, and the
//! Toeplitz hash used by real NICs for receive-side scaling (RSS).
//!
//! PXGW is a *flow-aware* gateway (paper §3): merging requires per-flow
//! state, and RSS distributes flows across gateway cores so that all
//! packets of one flow land on the same core and merging needs no
//! cross-core synchronisation.

use std::net::Ipv4Addr;

/// IP transport protocol numbers this crate cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number, preserved verbatim.
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

/// A transport 5-tuple identifying one direction of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: IpProtocol,
}

impl FlowKey {
    /// Builds a TCP flow key.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IpProtocol::Tcp,
        }
    }

    /// Builds a UDP flow key.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: IpProtocol::Udp,
        }
    }

    /// The same flow seen from the opposite direction.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// A direction-independent key: both directions of a connection map to
    /// the same value (used for connection-level state such as MSS
    /// rewriting, which must see both SYN and SYN-ACK).
    pub fn canonical(&self) -> FlowKey {
        let fwd = (self.src_ip, self.src_port);
        let rev = (self.dst_ip, self.dst_port);
        if fwd <= rev {
            *self
        } else {
            self.reversed()
        }
    }
}

/// The default Microsoft RSS key, used by virtually every NIC vendor's
/// driver as the out-of-box Toeplitz secret.
pub const MICROSOFT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A symmetric RSS key (all bytes identical pairs) so that both directions
/// of a flow hash to the same queue — what PXGW programs into its NICs so
/// uplink and downlink of one connection meet on one core.
pub const SYMMETRIC_RSS_KEY: [u8; 40] = [0x6d; 40];

/// Toeplitz hasher over the standard IPv4 4-tuple input.
#[derive(Debug, Clone)]
pub struct RssHasher {
    key: [u8; 40],
}

impl RssHasher {
    /// Creates a hasher with the given 40-byte secret key.
    pub fn new(key: [u8; 40]) -> Self {
        RssHasher { key }
    }

    /// Creates a hasher with the Microsoft default key.
    pub fn microsoft() -> Self {
        RssHasher::new(MICROSOFT_RSS_KEY)
    }

    /// Creates a hasher with a symmetric key (fwd and rev directions of a
    /// flow produce equal hashes).
    pub fn symmetric() -> Self {
        RssHasher::new(SYMMETRIC_RSS_KEY)
    }

    /// Computes the Toeplitz hash of the IPv4 src/dst/ports tuple, exactly
    /// as the NDIS specification defines it.
    pub fn hash(&self, key: &FlowKey) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&key.src_ip.octets());
        input[4..8].copy_from_slice(&key.dst_ip.octets());
        input[8..10].copy_from_slice(&key.src_port.to_be_bytes());
        input[10..12].copy_from_slice(&key.dst_port.to_be_bytes());
        self.hash_bytes(&input)
    }

    /// Toeplitz hash over arbitrary input bytes.
    pub fn hash_bytes(&self, input: &[u8]) -> u32 {
        debug_assert!(input.len() + 4 <= self.key.len());
        let mut result: u32 = 0;
        // The sliding 32-bit window over the key, starting at bit 0.
        let mut window = crate::bytes::be32(&self.key, 0);
        for (i, &byte) in input.iter().enumerate() {
            let next_key_byte = self.key[i + 4];
            for bit in 0..8 {
                if byte & (0x80 >> bit) != 0 {
                    result ^= window;
                }
                // Shift the window left by one bit, pulling in the next key bit.
                let next_bit = (next_key_byte >> (7 - bit)) & 1;
                window = (window << 1) | u32::from(next_bit);
            }
        }
        result
    }

    /// Maps a flow to one of `n_queues` RX queues, as the NIC indirection
    /// table does (low bits of the hash).
    pub fn queue_for(&self, key: &FlowKey, n_queues: usize) -> usize {
        debug_assert!(n_queues > 0);
        (self.hash(key) as usize) % n_queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_conversion_roundtrip() {
        for v in [1u8, 6, 17, 47, 132] {
            assert_eq!(u8::from(IpProtocol::from(v)), v);
        }
    }

    /// Verification vectors from the Microsoft RSS specification
    /// ("Verifying the RSS Hash Calculation", Windows driver docs).
    #[test]
    fn toeplitz_ndis_vectors() {
        let h = RssHasher::microsoft();
        // 66.9.149.187:2794 -> 161.142.100.80:1766  => 0x51ccc178
        let k1 = FlowKey::tcp(
            Ipv4Addr::new(66, 9, 149, 187),
            2794,
            Ipv4Addr::new(161, 142, 100, 80),
            1766,
        );
        assert_eq!(h.hash(&k1), 0x51ccc178);
        // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
        let k2 = FlowKey::tcp(
            Ipv4Addr::new(199, 92, 111, 2),
            14230,
            Ipv4Addr::new(65, 69, 140, 83),
            4739,
        );
        assert_eq!(h.hash(&k2), 0xc626b0ea);
    }

    #[test]
    fn symmetric_key_is_direction_independent() {
        let h = RssHasher::symmetric();
        let k = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        assert_eq!(h.hash(&k), h.hash(&k.reversed()));
    }

    #[test]
    fn microsoft_key_is_not_symmetric() {
        let h = RssHasher::microsoft();
        let k = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        assert_ne!(h.hash(&k), h.hash(&k.reversed()));
    }

    #[test]
    fn canonical_is_direction_independent() {
        let k = FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 9),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            53,
        );
        assert_eq!(k.canonical(), k.reversed().canonical());
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn queue_distribution_covers_all_queues() {
        let h = RssHasher::microsoft();
        let mut seen = [false; 8];
        for i in 0..200u16 {
            let k = FlowKey::tcp(
                Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                5000 + i,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            seen[h.queue_for(&k, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 queues should receive flows");
    }
}
