//! Branchless whole-batch packet parsing for the engine hot loop.
//!
//! The merge path historically parsed every packet twice: once for
//! flow-key extraction and once in the merge engine's classifier — both
//! walking the same IPv4/TCP headers. This module folds the two walks
//! into a single pass, [`parse_packet`], and runs it over a whole RX
//! batch up front ([`parse_batch_with`]) so the engine's per-packet loop
//! consumes a compact, already-validated [`ParsedMeta`] array instead of
//! re-touching cold header bytes.
//!
//! Batching buys two things:
//!
//! * **Software prefetch**: while packet *k* is parsed, the header cache
//!   lines of packet *k + [`PREFETCH_AHEAD`]* are requested
//!   (`_mm_prefetch`, a pure hint — no-op off x86). By the time the
//!   cursor reaches a packet its headers are already in L1.
//! * **Branch predictability**: the parse loop is one tight loop over
//!   homogeneous work, not a parse interleaved with merge-table updates,
//!   emission, and steering branches. The classification result is
//!   stored branchlessly as data ([`Verdict`]) and consumed later.
//!
//! Bit-compatibility is load-bearing: [`parse_packet`] must agree
//! exactly with `px_sim::nic::flow_key_of` on the key and with
//! `MergeEngine`'s single-packet classifier on the verdict — the
//! `digest_pin` gate and the property suite hold it to that.

use crate::bytes;
use crate::checksum;
use crate::flow::{FlowKey, IpProtocol};
use crate::ipv4::Ipv4Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;

/// Recommended RX batch size: matches the engine's channel batch.
pub const BATCH_PKTS: usize = 32;

/// How many packets ahead of the parse cursor the prefetcher runs.
/// Far enough to cover DRAM latency at ~25 ns/packet parse cost, near
/// enough that the lines are not evicted before use.
pub const PREFETCH_AHEAD: usize = 4;

/// Compact facts about one mergeable TCP data segment, captured during
/// the single validation pass so the merge engine never re-parses or
/// re-scans the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegFacts {
    /// IPv4 header length in bytes (20..=60).
    pub ip_hlen: u8,
    /// TCP header length in bytes (20..=60).
    pub tcp_hlen: u8,
    /// IPv4 total length (headers + payload).
    pub total_len: u16,
    /// TCP sequence number of the first payload byte.
    pub seq: u32,
    /// Whether the segment carries PSH.
    pub psh: bool,
    /// Ones-complement partial sum of the TCP payload, captured from the
    /// same scan that verified the transport checksum.
    pub payload_sum: u16,
}

impl SegFacts {
    /// TCP payload bytes carried by the segment.
    pub fn payload_len(&self) -> usize {
        usize::from(self.total_len) - usize::from(self.ip_hlen) - usize::from(self.tcp_hlen)
    }
}

/// The merge-relevant classification of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Not a mergeable data segment: forwarded as passthrough.
    NotMergeable {
        /// `false` when the packet failed IPv4 or TCP checksum
        /// verification — counted, and forwarded with its broken
        /// checksum intact so the receiver discards it.
        checksum_ok: bool,
    },
    /// An in-order-eligible TCP data segment with verified checksums.
    Mergeable(SegFacts),
}

/// Everything the engine hot loop needs to know about one packet:
/// its flow key (for steering and table lookup) and its merge verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedMeta {
    /// 5-tuple flow key, when the packet parses as TCP or UDP over
    /// IPv4. `None` means "unkeyable" — forwarded verbatim.
    pub key: Option<FlowKey>,
    /// Merge classification (always `NotMergeable` for non-TCP).
    pub verdict: Verdict,
}

const NOT_MERGEABLE: Verdict = Verdict::NotMergeable { checksum_ok: true };

/// Parses and classifies one packet in a single header walk.
///
/// The key computation matches `px_sim::nic::flow_key_of` exactly
/// (including its indifference to IP fragmentation for TCP — the
/// *verdict* rejects fragments, the key does not). The verdict matches
/// the merge engine's classifier check-for-check, in the same order,
/// so `checksum_ok` accounting is bit-identical.
pub fn parse_packet(pkt: &[u8]) -> ParsedMeta {
    let Ok(ip) = Ipv4Packet::new_checked(pkt) else {
        return ParsedMeta {
            key: None,
            verdict: NOT_MERGEABLE,
        };
    };
    match ip.protocol() {
        IpProtocol::Tcp => {
            let Ok(tcp) = TcpSegment::new_checked(ip.payload()) else {
                return ParsedMeta {
                    key: None,
                    verdict: NOT_MERGEABLE,
                };
            };
            let key = Some(FlowKey::tcp(
                ip.src(),
                tcp.src_port(),
                ip.dst(),
                tcp.dst_port(),
            ));
            ParsedMeta {
                key,
                verdict: classify_tcp(&ip, &tcp),
            }
        }
        IpProtocol::Udp => {
            let key = UdpDatagram::new_checked(ip.payload())
                .ok()
                .map(|udp| FlowKey::udp(ip.src(), udp.src_port(), ip.dst(), udp.dst_port()));
            ParsedMeta {
                key,
                verdict: NOT_MERGEABLE,
            }
        }
        _ => ParsedMeta {
            key: None,
            verdict: NOT_MERGEABLE,
        },
    }
}

/// The merge classifier's checks, verbatim, over an already-parsed
/// TCP-over-IPv4 view. Checksum verification is load-bearing (merging
/// would launder corruption behind a recomputed checksum); the payload's
/// partial sum is captured from the verification scan for reuse at
/// emission.
fn classify_tcp(ip: &Ipv4Packet<&[u8]>, tcp: &TcpSegment<&[u8]>) -> Verdict {
    if ip.is_fragment() {
        return NOT_MERGEABLE;
    }
    let f = tcp.flags();
    let shape_ok = f.ack && !f.syn && !f.fin && !f.rst && !f.urg && !tcp.payload().is_empty();
    if !shape_ok {
        return NOT_MERGEABLE;
    }
    if !ip.verify_checksum() {
        return Verdict::NotMergeable { checksum_ok: false };
    }
    let seg = ip.payload();
    let tcp_hlen = tcp.header_len();
    let header_sum = checksum::ones_complement_sum(bytes::range_to(seg, tcp_hlen));
    let payload_sum = checksum::ones_complement_sum(bytes::range_from(seg, tcp_hlen));
    let pseudo =
        checksum::pseudo_header_sum(ip.src(), ip.dst(), IpProtocol::Tcp.into(), seg.len() as u16);
    if checksum::combine(pseudo, checksum::combine(header_sum, payload_sum)) != 0xFFFF {
        return Verdict::NotMergeable { checksum_ok: false };
    }
    Verdict::Mergeable(SegFacts {
        ip_hlen: ip.header_len() as u8,
        tcp_hlen: tcp_hlen as u8,
        total_len: ip.total_len() as u16,
        seq: tcp.seq().0,
        psh: f.psh,
        payload_sum,
    })
}

/// Parses a whole batch into `out` (cleared first), prefetching packet
/// *k + [`PREFETCH_AHEAD`]*'s headers while packet *k* is parsed.
///
/// Generic over the batch item so the engine can pass `(FlowKey,
/// Vec<u8>)` pairs without restructuring; `payload` projects the packet
/// bytes out of an item.
pub fn parse_batch_with<T>(items: &[T], payload: impl Fn(&T) -> &[u8], out: &mut Vec<ParsedMeta>) {
    out.clear();
    out.reserve(items.len());
    for (k, item) in items.iter().enumerate() {
        if let Some(ahead) = items.get(k + PREFETCH_AHEAD) {
            prefetch_headers(payload(ahead));
        }
        out.push(parse_packet(payload(item)));
    }
}

/// Requests the first two cache lines of `pkt` (IPv4 + TCP headers fit
/// in 128 bytes even with maximal options) into L1. Pure hint: no-op
/// off x86-64, never faults.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline]
fn prefetch_headers(pkt: &[u8]) {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    let p = pkt.as_ptr();
    // SAFETY: `_mm_prefetch` is a performance hint with no memory-safety
    // preconditions (it cannot fault); the pointer at +64 stays within
    // the slice because it is only issued when `len > 64`.
    unsafe {
        _mm_prefetch::<_MM_HINT_T0>(p.cast());
        if pkt.len() > 64 {
            _mm_prefetch::<_MM_HINT_T0>(p.add(64).cast());
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn prefetch_headers(_pkt: &[u8]) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Repr;
    use crate::tcp::{SeqNum, TcpFlags, TcpRepr};
    use crate::udp::UdpRepr;
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);

    fn tcp_pkt(port: u16, seq: u32, payload_len: usize, flags: TcpFlags) -> Vec<u8> {
        let payload = vec![0x5Au8; payload_len];
        let repr = TcpRepr {
            src_port: port,
            dst_port: 80,
            seq: SeqNum(seq),
            ack: SeqNum(1),
            flags,
            window: 5000,
            options: vec![],
        };
        let seg = repr.build_segment(SRC, DST, &payload);
        Ipv4Repr::new(SRC, DST, IpProtocol::Tcp, seg.len())
            .build_packet(&seg)
            .unwrap()
    }

    #[test]
    fn data_segment_is_mergeable_with_exact_facts() {
        let pkt = tcp_pkt(5000, 7777, 1000, TcpFlags::ACK);
        let meta = parse_packet(&pkt);
        assert_eq!(meta.key, Some(FlowKey::tcp(SRC, 5000, DST, 80)));
        let Verdict::Mergeable(facts) = meta.verdict else {
            panic!("data segment must be mergeable: {:?}", meta.verdict);
        };
        assert_eq!(facts.ip_hlen, 20);
        assert_eq!(facts.tcp_hlen, 20);
        assert_eq!(usize::from(facts.total_len), pkt.len());
        assert_eq!(facts.seq, 7777);
        assert!(!facts.psh);
        let ip = Ipv4Packet::new_checked(&pkt[..]).unwrap();
        let expected = checksum::ones_complement_sum(bytes::range_from(ip.payload(), 20));
        assert_eq!(facts.payload_sum, expected);
    }

    #[test]
    fn pure_ack_keeps_its_key_but_is_not_mergeable() {
        let pkt = tcp_pkt(5000, 1, 0, TcpFlags::ACK);
        let meta = parse_packet(&pkt);
        assert_eq!(meta.key, Some(FlowKey::tcp(SRC, 5000, DST, 80)));
        assert_eq!(meta.verdict, Verdict::NotMergeable { checksum_ok: true });
    }

    #[test]
    fn corrupted_payload_is_flagged_bad_checksum() {
        let mut pkt = tcp_pkt(5000, 1, 100, TcpFlags::ACK);
        let last = pkt.len() - 1;
        pkt[last] ^= 0xFF;
        let meta = parse_packet(&pkt);
        assert!(meta.key.is_some(), "key survives payload corruption");
        assert_eq!(meta.verdict, Verdict::NotMergeable { checksum_ok: false });
    }

    #[test]
    fn udp_gets_a_key_and_garbage_gets_none() {
        let udp = UdpRepr {
            src_port: 9000,
            dst_port: 53,
        }
        .build_datagram(SRC, DST, b"query")
        .unwrap();
        let pkt = Ipv4Repr::new(SRC, DST, IpProtocol::Udp, udp.len())
            .build_packet(&udp)
            .unwrap();
        let meta = parse_packet(&pkt);
        assert_eq!(meta.key, Some(FlowKey::udp(SRC, 9000, DST, 53)));
        assert_eq!(meta.verdict, Verdict::NotMergeable { checksum_ok: true });

        let garbage = parse_packet(&[0u8; 7]);
        assert_eq!(garbage.key, None);
        assert_eq!(garbage.verdict, Verdict::NotMergeable { checksum_ok: true });
    }

    #[test]
    fn batch_parse_matches_per_packet_parse() {
        // More than PREFETCH_AHEAD packets so the prefetcher both fires
        // and runs off the end of the batch.
        let pkts: Vec<Vec<u8>> = (0..(PREFETCH_AHEAD + 9))
            .map(|i| match i % 3 {
                0 => tcp_pkt(5000 + i as u16, i as u32 * 100, 100, TcpFlags::ACK),
                1 => tcp_pkt(6000 + i as u16, 1, 0, TcpFlags::ACK),
                _ => vec![0u8; 3],
            })
            .collect();
        let mut out = Vec::new();
        parse_batch_with(&pkts, |p| p.as_slice(), &mut out);
        assert_eq!(out.len(), pkts.len());
        for (pkt, meta) in pkts.iter().zip(&out) {
            assert_eq!(*meta, parse_packet(pkt));
        }
        // Reuse clears previous contents.
        parse_batch_with(&pkts[..2], |p| p.as_slice(), &mut out);
        assert_eq!(out.len(), 2);
    }
}
