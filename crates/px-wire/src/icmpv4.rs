//! ICMPv4 messages (RFC 792): echo request/reply and the
//! destination-unreachable family — in particular *fragmentation needed*
//! (type 3, code 4) with the next-hop MTU field from RFC 1191, which
//! classic PMTUD depends on and whose suppression ("ICMP blackholes") is
//! exactly what motivates F-PMTUD.

use crate::checksum;
use crate::error::{Error, Result};

/// Minimum ICMP header length.
pub const HEADER_LEN: usize = 8;

/// A decoded ICMPv4 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Icmpv4Message {
    /// Echo request (type 8): identifier, sequence, payload.
    EchoRequest {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Echo reply (type 0): identifier, sequence, payload.
    EchoReply {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Echo payload.
        payload: Vec<u8>,
    },
    /// Destination unreachable — fragmentation needed and DF set
    /// (type 3, code 4) with the RFC 1191 next-hop MTU, plus the leading
    /// bytes of the offending packet (IP header + 8).
    FragNeeded {
        /// MTU of the next hop that could not forward the packet.
        next_hop_mtu: u16,
        /// Original IP header + first 8 payload bytes of the dropped packet.
        original: Vec<u8>,
    },
    /// Destination unreachable with another code.
    Unreachable {
        /// The unreachable code (0 = net, 1 = host, 3 = port, …).
        code: u8,
        /// Original IP header + first 8 payload bytes.
        original: Vec<u8>,
    },
    /// Time exceeded (type 11), as emitted when TTL hits zero.
    TimeExceeded {
        /// Code (0 = TTL exceeded in transit, 1 = reassembly timeout).
        code: u8,
        /// Original IP header + first 8 payload bytes.
        original: Vec<u8>,
    },
}

impl Icmpv4Message {
    /// Parses an ICMP message from the IP payload, verifying the checksum.
    pub fn parse(data: &[u8]) -> Result<Self> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if checksum::ones_complement_sum(data) != 0xFFFF {
            return Err(Error::Checksum);
        }
        let ty = data[0];
        let code = data[1];
        match (ty, code) {
            (8, 0) | (0, 0) => {
                let ident = u16::from_be_bytes([data[4], data[5]]);
                let seq = u16::from_be_bytes([data[6], data[7]]);
                let payload = data[8..].to_vec();
                if ty == 8 {
                    Ok(Icmpv4Message::EchoRequest {
                        ident,
                        seq,
                        payload,
                    })
                } else {
                    Ok(Icmpv4Message::EchoReply {
                        ident,
                        seq,
                        payload,
                    })
                }
            }
            (3, 4) => Ok(Icmpv4Message::FragNeeded {
                next_hop_mtu: u16::from_be_bytes([data[6], data[7]]),
                original: data[8..].to_vec(),
            }),
            (3, c) => Ok(Icmpv4Message::Unreachable {
                code: c,
                original: data[8..].to_vec(),
            }),
            (11, c) => Ok(Icmpv4Message::TimeExceeded {
                code: c,
                original: data[8..].to_vec(),
            }),
            _ => Err(Error::Unsupported),
        }
    }

    /// Serializes the message (with checksum) as an IP payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; HEADER_LEN];
        match self {
            Icmpv4Message::EchoRequest {
                ident,
                seq,
                payload,
            }
            | Icmpv4Message::EchoReply {
                ident,
                seq,
                payload,
            } => {
                out[0] = if matches!(self, Icmpv4Message::EchoRequest { .. }) {
                    8
                } else {
                    0
                };
                out[4..6].copy_from_slice(&ident.to_be_bytes());
                out[6..8].copy_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(payload);
            }
            Icmpv4Message::FragNeeded {
                next_hop_mtu,
                original,
            } => {
                out[0] = 3;
                out[1] = 4;
                out[6..8].copy_from_slice(&next_hop_mtu.to_be_bytes());
                out.extend_from_slice(original);
            }
            Icmpv4Message::Unreachable { code, original } => {
                out[0] = 3;
                out[1] = *code;
                out.extend_from_slice(original);
            }
            Icmpv4Message::TimeExceeded { code, original } => {
                out[0] = 11;
                out[1] = *code;
                out.extend_from_slice(original);
            }
        }
        let ck = checksum::checksum(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Builds the "original datagram" excerpt RFC 792 requires: the full
    /// IP header plus the first 8 bytes of its payload.
    pub fn excerpt_of(ip_packet: &[u8]) -> Vec<u8> {
        let hlen = if !ip_packet.is_empty() {
            usize::from(ip_packet[0] & 0x0F) * 4
        } else {
            0
        };
        let take = (hlen + 8).min(ip_packet.len());
        ip_packet[..take].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let msg = Icmpv4Message::EchoRequest {
            ident: 0x4242,
            seq: 7,
            payload: b"abcdefgh".to_vec(),
        };
        let bytes = msg.to_bytes();
        assert_eq!(Icmpv4Message::parse(&bytes).unwrap(), msg);
    }

    #[test]
    fn frag_needed_roundtrip_with_mtu() {
        let msg = Icmpv4Message::FragNeeded {
            next_hop_mtu: 1492,
            original: vec![0x45, 0, 0, 40],
        };
        let bytes = msg.to_bytes();
        match Icmpv4Message::parse(&bytes).unwrap() {
            Icmpv4Message::FragNeeded {
                next_hop_mtu,
                original,
            } => {
                assert_eq!(next_hop_mtu, 1492);
                assert_eq!(original, vec![0x45, 0, 0, 40]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn checksum_enforced() {
        let mut bytes = Icmpv4Message::EchoReply {
            ident: 1,
            seq: 2,
            payload: vec![],
        }
        .to_bytes();
        bytes[4] ^= 0xFF;
        assert_eq!(Icmpv4Message::parse(&bytes).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn unknown_type_unsupported() {
        let mut bytes = vec![99u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum::checksum(&bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(
            Icmpv4Message::parse(&bytes).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn excerpt_is_header_plus_8() {
        let mut ip = vec![0x45u8; 20];
        ip.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let ex = Icmpv4Message::excerpt_of(&ip);
        assert_eq!(ex.len(), 28);
        assert_eq!(&ex[20..], &[1, 2, 3, 4, 5, 6, 7, 8]);
        // Short packets are taken whole.
        assert_eq!(Icmpv4Message::excerpt_of(&[0x45, 1, 2]).len(), 3);
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let msg = Icmpv4Message::TimeExceeded {
            code: 0,
            original: vec![0x45; 28],
        };
        assert_eq!(Icmpv4Message::parse(&msg.to_bytes()).unwrap(), msg);
    }
}
