//! TCP segments (RFC 793) with the options PXGW manipulates.
//!
//! PXGW's two core operations live on top of this module:
//!
//! * **MSS rewriting** (paper §4.1): during the handshake the gateway
//!   rewrites the MSS option in SYN/SYN-ACK segments so the b-network
//!   endpoint learns a jumbo MSS even though the legacy peer advertised a
//!   1460-byte one.
//! * **Merge/split** (LRO/TSO-like): both preserve the byte stream, which
//!   requires exact sequence-number arithmetic — provided by [`SeqNum`],
//!   a wrapping ⟨mod 2³²⟩ sequence type.

use crate::bytes;
use crate::checksum;
use crate::error::{Error, Result};
use crate::flow::IpProtocol;
use std::net::Ipv4Addr;

/// Length of an options-free TCP header.
pub const HEADER_LEN: usize = 20;

/// Maximum TCP header length (data offset is 4 bits of 32-bit words).
pub const MAX_HEADER_LEN: usize = 60;

/// A 32-bit TCP sequence number with wrapping comparison (RFC 1982-style
/// serial-number arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// Sequence-space addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, n: usize) -> SeqNum {
        SeqNum(self.0.wrapping_add(n as u32))
    }

    /// Signed distance from `other` to `self` (positive if `self` is
    /// after `other` in sequence space).
    pub fn diff(self, other: SeqNum) -> i64 {
        i64::from(self.0.wrapping_sub(other.0) as i32)
    }

    /// Whether `self` is strictly after `other` in sequence space.
    pub fn after(self, other: SeqNum) -> bool {
        self.diff(other) > 0
    }

    /// Whether `self` is at-or-after `other`.
    pub fn at_or_after(self, other: SeqNum) -> bool {
        self.diff(other) >= 0
    }
}

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN: sender is done sending.
    pub fin: bool,
    /// SYN: synchronise sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: the acknowledgment field is significant.
    pub ack: bool,
    /// URG: the urgent pointer is significant.
    pub urg: bool,
}

impl TcpFlags {
    /// Flags for a plain data/ack segment.
    pub const ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: false,
        rst: false,
        psh: false,
        ack: true,
        urg: false,
    };
    /// Flags for an initial SYN.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
    };
    /// Flags for a SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: true,
        urg: false,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
            | (self.urg as u8) << 5
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
        }
    }
}

/// TCP options PXGW understands. Unknown options are carried opaquely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Maximum segment size (kind 2), SYN-only.
    Mss(u16),
    /// Window scale shift (kind 3), SYN-only.
    WindowScale(u8),
    /// SACK permitted (kind 4), SYN-only.
    SackPermitted,
    /// Timestamps (kind 8): TSval, TSecr.
    Timestamps(u32, u32),
    /// SACK blocks (kind 5): up to four (start, end) wire-sequence pairs
    /// of data received above the cumulative ACK (RFC 2018).
    Sack(Vec<(SeqNum, SeqNum)>),
    /// Any other option: (kind, payload bytes after kind+len).
    Unknown(u8, Vec<u8>),
}

impl TcpOption {
    /// Encoded length of this option in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps(..) => 10,
            TcpOption::Sack(blocks) => 2 + 8 * blocks.len(),
            TcpOption::Unknown(_, data) => 2 + data.len(),
        }
    }
}

/// Parses a TCP options block (the bytes between the fixed header and the
/// payload), tolerating NOP padding and stopping at EOL.
pub fn parse_options(mut block: &[u8]) -> Result<Vec<TcpOption>> {
    let mut opts = Vec::new();
    while !block.is_empty() {
        match block[0] {
            0 => break, // EOL
            1 => {
                block = bytes::range_from(block, 1); // NOP
                continue;
            }
            kind => {
                if block.len() < 2 {
                    return Err(Error::Malformed);
                }
                let len = usize::from(block[1]);
                if len < 2 || len > block.len() {
                    return Err(Error::Malformed);
                }
                let body = bytes::range(block, 2, len);
                let opt = match (kind, body.len()) {
                    (2, 2) => TcpOption::Mss(bytes::be16(body, 0)),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (5, n) if n % 8 == 0 && n <= 32 => TcpOption::Sack(
                        body.chunks_exact(8)
                            .map(|c| (SeqNum(bytes::be32(c, 0)), SeqNum(bytes::be32(c, 4))))
                            .collect(),
                    ),
                    (8, 8) => TcpOption::Timestamps(bytes::be32(body, 0), bytes::be32(body, 4)),
                    _ => TcpOption::Unknown(kind, body.to_vec()),
                };
                opts.push(opt);
                block = bytes::range_from(block, len);
            }
        }
    }
    Ok(opts)
}

/// The shape of one parsed option — [`parse_options`]' discriminant
/// without the payload, for allocation-free layout comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OptionClass {
    Mss,
    WindowScale,
    SackPermitted,
    Sack,
    Timestamps,
    Unknown,
}

/// Advances `block` past NOPs to the next option and classifies it.
/// `Ok(None)` on EOL or end of block; `Err` on the same malformed shapes
/// [`parse_options`] rejects.
fn next_option_class(block: &mut &[u8]) -> Result<Option<OptionClass>> {
    while !block.is_empty() {
        match block[0] {
            0 => return Ok(None), // EOL ends the walk, as in parse_options
            1 => *block = bytes::range_from(block, 1),
            kind => {
                if block.len() < 2 {
                    return Err(Error::Malformed);
                }
                let len = usize::from(block[1]);
                if len < 2 || len > block.len() {
                    return Err(Error::Malformed);
                }
                let class = match (kind, len - 2) {
                    (2, 2) => OptionClass::Mss,
                    (3, 1) => OptionClass::WindowScale,
                    (4, 0) => OptionClass::SackPermitted,
                    (5, n) if n % 8 == 0 && n <= 32 => OptionClass::Sack,
                    (8, 8) => OptionClass::Timestamps,
                    _ => OptionClass::Unknown,
                };
                *block = bytes::range_from(block, len);
                return Ok(Some(class));
            }
        }
    }
    Ok(None)
}

/// Whether two option blocks have the same *layout* — the same sequence
/// of option-kind discriminants, exactly as comparing
/// `parse_options(a)`/`parse_options(b)` results with
/// `mem::discriminant` would decide, but without allocating. Either
/// block being malformed makes the pair incompatible (the allocating
/// path fails to parse and refuses to coalesce).
pub fn options_layout_compatible(a: &[u8], b: &[u8]) -> bool {
    let (mut a, mut b) = (a, b);
    loop {
        match (next_option_class(&mut a), next_option_class(&mut b)) {
            (Ok(Some(x)), Ok(Some(y))) if x == y => {}
            (Ok(None), Ok(None)) => return true,
            _ => return false,
        }
    }
}

/// Encodes options, NOP-padding to a multiple of 4 bytes. Returns the
/// padded block.
pub fn emit_options(opts: &[TcpOption]) -> Vec<u8> {
    let mut out = Vec::new();
    for opt in opts {
        match opt {
            TcpOption::Mss(v) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&v.to_be_bytes());
            }
            TcpOption::WindowScale(s) => out.extend_from_slice(&[3, 3, *s]),
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::Timestamps(val, ecr) => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&val.to_be_bytes());
                out.extend_from_slice(&ecr.to_be_bytes());
            }
            TcpOption::Sack(blocks) => {
                debug_assert!(blocks.len() <= 4);
                out.push(5);
                out.push((2 + 8 * blocks.len()) as u8);
                for (s, e) in blocks {
                    out.extend_from_slice(&s.0.to_be_bytes());
                    out.extend_from_slice(&e.0.to_be_bytes());
                }
            }
            TcpOption::Unknown(kind, data) => {
                out.push(*kind);
                out.push((data.len() + 2) as u8);
                out.extend_from_slice(data);
            }
        }
    }
    while out.len() % 4 != 0 {
        out.push(1); // NOP padding
    }
    out
}

/// A typed view over a TCP segment (header + payload, no IP header).
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    /// Wraps a buffer, validating the data offset against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let seg = TcpSegment { buffer };
        let b = seg.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let hl = seg.header_len();
        if !(HEADER_LEN..=MAX_HEADER_LEN).contains(&hl) || b.len() < hl {
            return Err(Error::Malformed);
        }
        Ok(seg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> SeqNum {
        SeqNum(bytes::be32(self.buffer.as_ref(), 4))
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> SeqNum {
        SeqNum(bytes::be32(self.buffer.as_ref(), 8))
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_byte(self.buffer.as_ref()[13])
    }

    /// Receive window (unscaled).
    pub fn window(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 14)
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        bytes::be16(self.buffer.as_ref(), 16)
    }

    /// The raw options block.
    pub fn options(&self) -> &[u8] {
        bytes::range(self.buffer.as_ref(), HEADER_LEN, self.header_len())
    }

    /// The payload after the header.
    pub fn payload(&self) -> &[u8] {
        bytes::range_from(self.buffer.as_ref(), self.header_len())
    }

    /// Verifies the transport checksum given the IP pseudo-header inputs.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = self.buffer.as_ref();
        let pseudo = checksum::pseudo_header_sum(src, dst, IpProtocol::Tcp.into(), b.len() as u16);
        checksum::combine(pseudo, checksum::ones_complement_sum(b)) == 0xFFFF
    }

    /// Releases the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        bytes::put_be16(self.buffer.as_mut(), 0, p);
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        bytes::put_be16(self.buffer.as_mut(), 2, p);
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, s: SeqNum) {
        bytes::put_be32(self.buffer.as_mut(), 4, s.0);
    }

    /// Sets the acknowledgment number.
    pub fn set_ack(&mut self, s: SeqNum) {
        bytes::put_be32(self.buffer.as_mut(), 8, s.0);
    }

    /// Sets the header length in bytes (multiple of 4).
    pub fn set_header_len(&mut self, len: usize) {
        debug_assert!(len.is_multiple_of(4) && (HEADER_LEN..=MAX_HEADER_LEN).contains(&len));
        let b = self.buffer.as_mut();
        b[12] = ((len / 4) as u8) << 4;
    }

    /// Sets the flags byte.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.buffer.as_mut()[13] = f.to_byte();
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, w: u16) {
        bytes::put_be16(self.buffer.as_mut(), 14, w);
    }

    /// Zeroes, computes, and writes the transport checksum.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let b = self.buffer.as_mut();
        bytes::put_be16(b, 16, 0);
        let ck = checksum::transport_checksum(src, dst, IpProtocol::Tcp.into(), b);
        bytes::put_be16(b, 16, ck);
    }

    /// The payload, mutably.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        bytes::range_from_mut(self.buffer.as_mut(), start)
    }
}

/// A parsed, plain-Rust TCP header (options decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: SeqNum,
    /// Acknowledgment number.
    pub ack: SeqNum,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Decoded options.
    pub options: Vec<TcpOption>,
}

impl TcpRepr {
    /// Parses a segment view into a repr.
    pub fn parse<T: AsRef<[u8]>>(seg: &TcpSegment<T>) -> Result<Self> {
        Ok(TcpRepr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq(),
            ack: seg.ack(),
            flags: seg.flags(),
            window: seg.window(),
            options: parse_options(seg.options())?,
        })
    }

    /// The MSS option value, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Header length this repr will occupy on the wire.
    pub fn header_len(&self) -> usize {
        let optlen: usize = self.options.iter().map(TcpOption::wire_len).sum();
        HEADER_LEN + optlen.div_ceil(4) * 4
    }

    /// Builds a complete segment (header + options + payload) with a valid
    /// checksum, as a fresh byte vector.
    pub fn build_segment(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let opts = emit_options(&self.options);
        let hlen = HEADER_LEN + opts.len();
        let mut buf = vec![0u8; hlen + payload.len()];
        bytes::put(&mut buf, HEADER_LEN, &opts);
        bytes::put(&mut buf, hlen, payload);
        let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
        seg.set_src_port(self.src_port);
        seg.set_dst_port(self.dst_port);
        seg.set_seq(self.seq);
        seg.set_ack(self.ack);
        seg.set_header_len(hlen);
        seg.set_flags(self.flags);
        seg.set_window(self.window);
        seg.fill_checksum(src, dst);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn syn_repr() -> TcpRepr {
        TcpRepr {
            src_port: 40000,
            dst_port: 80,
            seq: SeqNum(1000),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 65535,
            options: vec![
                TcpOption::Mss(8960),
                TcpOption::SackPermitted,
                TcpOption::WindowScale(7),
                TcpOption::Timestamps(111, 0),
            ],
        }
    }

    #[test]
    fn build_parse_roundtrip_with_options() {
        let repr = syn_repr();
        let buf = repr.build_segment(SRC, DST, b"");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(seg.verify_checksum(SRC, DST));
        let parsed = TcpRepr::parse(&seg).unwrap();
        assert_eq!(parsed.mss(), Some(8960));
        assert_eq!(parsed.options, repr.options);
        assert_eq!(parsed.seq, SeqNum(1000));
        assert!(parsed.flags.syn && !parsed.flags.ack);
    }

    #[test]
    fn payload_checksum_roundtrip() {
        let mut repr = syn_repr();
        repr.flags = TcpFlags::ACK;
        repr.options = vec![TcpOption::Timestamps(5, 6)];
        let buf = repr.build_segment(SRC, DST, b"GET / HTTP/1.1\r\n");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(seg.verify_checksum(SRC, DST));
        assert_eq!(seg.payload(), b"GET / HTTP/1.1\r\n");
        // Flip a payload byte: checksum must fail.
        let mut bad = buf.clone();
        let n = bad.len() - 1;
        bad[n] ^= 0x01;
        let seg = TcpSegment::new_checked(&bad[..]).unwrap();
        assert!(!seg.verify_checksum(SRC, DST));
    }

    #[test]
    fn seqnum_wrapping_arithmetic() {
        let a = SeqNum(u32::MAX - 1);
        let b = a.add(4);
        assert_eq!(b, SeqNum(2));
        assert_eq!(b.diff(a), 4);
        assert_eq!(a.diff(b), -4);
        assert!(b.after(a));
        assert!(!a.after(b));
        assert!(b.at_or_after(b));
    }

    #[test]
    fn options_nop_and_eol_tolerated() {
        // NOP NOP MSS(1460) EOL trailing-junk
        let block = [1u8, 1, 2, 4, 0x05, 0xb4, 0, 0xde, 0xad];
        let opts = parse_options(&block).unwrap();
        assert_eq!(opts, vec![TcpOption::Mss(1460)]);
    }

    #[test]
    fn malformed_options_rejected() {
        assert_eq!(parse_options(&[2]).unwrap_err(), Error::Malformed); // truncated kind+len
        assert_eq!(parse_options(&[2, 1]).unwrap_err(), Error::Malformed); // len < 2
        assert_eq!(parse_options(&[2, 10, 0]).unwrap_err(), Error::Malformed); // len > block
    }

    #[test]
    fn sack_option_roundtrip() {
        let opts = vec![TcpOption::Sack(vec![
            (SeqNum(1000), SeqNum(2000)),
            (SeqNum(9000), SeqNum(9500)),
        ])];
        let block = emit_options(&opts);
        assert_eq!(block.len() % 4, 0);
        assert_eq!(parse_options(&block).unwrap(), opts);
    }

    #[test]
    fn sack_with_bad_length_falls_back_to_unknown() {
        // kind 5, len 2+5 (not a multiple of 8): parse as Unknown.
        let block = [5u8, 7, 1, 2, 3, 4, 5, 1];
        let opts = parse_options(&block).unwrap();
        assert!(matches!(opts[0], TcpOption::Unknown(5, _)));
    }

    #[test]
    fn unknown_options_roundtrip() {
        let opts = vec![TcpOption::Unknown(254, vec![0xAA, 0xBB, 0xCC])];
        let block = emit_options(&opts);
        assert_eq!(block.len() % 4, 0);
        assert_eq!(parse_options(&block).unwrap(), opts);
    }

    #[test]
    fn header_len_includes_padded_options() {
        let repr = syn_repr();
        // MSS(4) + SACKP(2) + WS(3) + TS(10) = 19 -> padded 20.
        assert_eq!(repr.header_len(), HEADER_LEN + 20);
        let buf = repr.build_segment(SRC, DST, b"x");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.header_len(), repr.header_len());
        assert_eq!(seg.payload(), b"x");
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = syn_repr().build_segment(SRC, DST, b"");
        buf[12] = 0x30; // data offset 12 bytes < 20
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    /// The allocating reference: discriminant sequences from
    /// `parse_options`, or `None` when parsing fails.
    fn layout_via_parse(block: &[u8]) -> Option<Vec<std::mem::Discriminant<TcpOption>>> {
        parse_options(block)
            .ok()
            .map(|opts| opts.iter().map(std::mem::discriminant).collect())
    }

    #[test]
    fn layout_compat_matches_parse_options_discriminants() {
        let vectors: &[&[u8]] = &[
            &[],
            &[1, 1, 1, 1],                          // all NOPs
            &[2, 4, 0x05, 0xb4],                    // MSS
            &[2, 4, 0x23, 0x28],                    // MSS, other value
            &[3, 3, 7, 1],                          // WS + NOP pad
            &[1, 4, 2],                             // NOP + SackPermitted
            &[8, 10, 0, 0, 0, 1, 0, 0, 0, 2, 1, 1], // timestamps + pad
            &[5, 10, 0, 0, 0, 1, 0, 0, 0, 2],       // one SACK block
            &[99, 4, 0xAA, 0xBB],                   // unknown kind
            &[77, 6, 1, 2, 3, 4],                   // different unknown
            &[0, 2, 4],                             // EOL stops the walk
            &[2, 4, 0x05],                          // truncated: malformed
            &[2, 1],                                // len < 2: malformed
        ];
        for a in vectors {
            for b in vectors {
                let reference = match (layout_via_parse(a), layout_via_parse(b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => false,
                };
                assert_eq!(
                    options_layout_compatible(a, b),
                    reference,
                    "layout compat diverged from parse_options on {a:?} vs {b:?}"
                );
            }
        }
    }
}
