//! GTP-U (GPRS Tunnelling Protocol, user plane — 3GPP TS 29.281).
//!
//! The 5G UPF of Fig. 1a encapsulates/decapsulates user traffic in GTP-U
//! over UDP port 2152. We implement the mandatory 8-byte header (version 1,
//! PT=1, no optional fields) plus the G-PDU message type, which is all the
//! OMEC UPF datapath touches per packet.

use crate::error::{Error, Result};

/// GTP-U well-known UDP port.
pub const GTPU_PORT: u16 = 2152;

/// Mandatory GTP-U header length (no optional fields).
pub const HEADER_LEN: usize = 8;

/// Message type for a G-PDU (encapsulated user packet).
pub const MSG_GPDU: u8 = 255;

/// Message type for an echo request (path management).
pub const MSG_ECHO_REQUEST: u8 = 1;

/// A parsed GTP-U header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtpuRepr {
    /// Message type ([`MSG_GPDU`] for user traffic).
    pub msg_type: u8,
    /// Tunnel endpoint identifier.
    pub teid: u32,
    /// Payload length (the length field; excludes the mandatory header).
    pub payload_len: usize,
}

impl GtpuRepr {
    /// A G-PDU header for the given tunnel and payload size.
    pub fn gpdu(teid: u32, payload_len: usize) -> Self {
        GtpuRepr {
            msg_type: MSG_GPDU,
            teid,
            payload_len,
        }
    }

    /// Parses a GTP-U header from the front of a UDP payload, returning
    /// the repr and the encapsulated payload slice.
    pub fn parse(data: &[u8]) -> Result<(Self, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let flags = data[0];
        let version = flags >> 5;
        let pt = (flags >> 4) & 1;
        if version != 1 || pt != 1 {
            return Err(Error::Unsupported);
        }
        if flags & 0b0000_0111 != 0 {
            // E/S/PN optional fields present: not supported by this UPF.
            return Err(Error::Unsupported);
        }
        let msg_type = data[1];
        let len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if HEADER_LEN + len > data.len() {
            return Err(Error::Malformed);
        }
        let teid = crate::bytes::be32(data, 4);
        Ok((
            GtpuRepr {
                msg_type,
                teid,
                payload_len: len,
            },
            &data[HEADER_LEN..HEADER_LEN + len],
        ))
    }

    /// Serializes the header (8 bytes).
    pub fn to_bytes(&self) -> Result<[u8; HEADER_LEN]> {
        if self.payload_len > usize::from(u16::MAX) {
            return Err(Error::FieldRange);
        }
        let mut out = [0u8; HEADER_LEN];
        out[0] = 0b0011_0000; // version 1, PT=1, no optional fields
        out[1] = self.msg_type;
        out[2..4].copy_from_slice(&(self.payload_len as u16).to_be_bytes());
        out[4..8].copy_from_slice(&self.teid.to_be_bytes());
        Ok(out)
    }

    /// Encapsulates `payload` behind a G-PDU header.
    pub fn encapsulate(teid: u32, payload: &[u8]) -> Result<Vec<u8>> {
        let hdr = GtpuRepr::gpdu(teid, payload.len()).to_bytes()?;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&hdr);
        out.extend_from_slice(payload);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encap_parse_roundtrip() {
        let inner = b"an entire user ip packet";
        let wire = GtpuRepr::encapsulate(0xDEAD_BEEF, inner).unwrap();
        let (repr, payload) = GtpuRepr::parse(&wire).unwrap();
        assert_eq!(repr.teid, 0xDEAD_BEEF);
        assert_eq!(repr.msg_type, MSG_GPDU);
        assert_eq!(payload, inner);
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = GtpuRepr::encapsulate(1, b"x").unwrap();
        wire[0] = 0b0101_0000; // version 2
        assert_eq!(GtpuRepr::parse(&wire).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn optional_fields_rejected() {
        let mut wire = GtpuRepr::encapsulate(1, b"x").unwrap();
        wire[0] |= 0b0000_0010; // S flag
        assert_eq!(GtpuRepr::parse(&wire).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn length_validation() {
        let mut wire = GtpuRepr::encapsulate(1, b"abc").unwrap();
        wire[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(GtpuRepr::parse(&wire).unwrap_err(), Error::Malformed);
        assert_eq!(GtpuRepr::parse(&wire[..4]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn trailing_bytes_ignored() {
        let mut wire = GtpuRepr::encapsulate(7, b"inner").unwrap();
        wire.extend_from_slice(&[0xFF; 3]);
        let (_, payload) = GtpuRepr::parse(&wire).unwrap();
        assert_eq!(payload, b"inner");
    }
}
